"""Truncated-MHR submodular engine (paper Section 4.1, Eq. 2).

``mhr_tau(S | N) = (1/m) sum_{u in N} min{hr(u, S), tau}`` is monotone and
submodular for any cap ``tau`` (Lemma 4.3), and reaches ``tau`` iff every
direction reaches ``tau`` (Lemma 4.4).  BiGreedy maximizes it greedily,
which requires many marginal-gain evaluations; this engine keeps the whole
computation vectorized:

* a precomputed ratio matrix ``R[j, i] = <u_j, p_i> / top_j`` over the
  ground set (``top_j`` is the best score over the database),
* per-direction running bests for the current selection,
* one numpy expression per greedy step for all candidate gains.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points
from .ratios import scores

__all__ = ["TruncatedEngine", "TruncatedState"]


class TruncatedState:
    """Mutable per-selection state: the best ratio seen per direction.

    ``best`` is the untruncated per-direction happiness ratio of the current
    selection; ``capped`` is ``min(best, tau)`` maintained incrementally so
    gain evaluations touch only the ratio matrix.
    """

    __slots__ = ("best", "capped", "tau", "selected")

    def __init__(self, m: int, tau: float) -> None:
        if not 0.0 < tau <= 1.0:
            raise ValueError(f"tau must lie in (0, 1], got {tau}")
        self.best = np.zeros(m)
        self.capped = np.zeros(m)
        self.tau = float(tau)
        self.selected: list[int] = []

    def copy(self) -> "TruncatedState":
        clone = TruncatedState.__new__(TruncatedState)
        clone.best = self.best.copy()
        clone.capped = self.capped.copy()
        clone.tau = self.tau
        clone.selected = list(self.selected)
        return clone


class TruncatedEngine:
    """Evaluator of ``mhr_tau(. | N)`` over a fixed ground set and net.

    Args:
        points: ground set the algorithm selects from, shape ``(n, d)``.
            Must contain every utility maximizer of the database (i.e. be a
            superset of the database skyline) unless ``database`` is given.
        net: the delta-net directions, shape ``(m, d)``.
        database: optional full database used for the denominators
            ``top_j``; defaults to ``points`` itself.
        dtype: storage dtype of the ratio matrix.  float32 (the default)
            halves memory traffic in the greedy hot loop; ratios live in
            ``[0, 1]`` so the ~1e-7 rounding is far below the 4-decimal
            resolution the experiments report.
    """

    def __init__(self, points, net, *, database=None, dtype=np.float32) -> None:
        pts = as_points(points)
        net_arr = np.asarray(net, dtype=np.float64)
        if net_arr.ndim != 2 or net_arr.shape[1] != pts.shape[1]:
            raise ValueError("net must be (m, d) matching the points")
        raw = scores(pts, net_arr)
        top_source = raw if database is None else scores(as_points(database), net_arr)
        top = top_source.max(axis=1)
        if (top <= 0).any():
            raise ValueError("every net direction must score positively on the data")
        self.ratios = (raw / top[:, None]).astype(dtype)
        self.net = net_arr  # kept so cached engines can hand the net back
        self.m = net_arr.shape[0]
        self.n = pts.shape[0]
        self._capped_tau: float | None = None
        self._capped: np.ndarray | None = None
        self._margins_buf: np.ndarray | None = None
        self._cast_buf: np.ndarray | None = None

    @classmethod
    def from_ratios(cls, ratios, net) -> "TruncatedEngine":
        """Rebuild an engine from a persisted ratio matrix (snapshot load).

        The ratio matrix is the engine's only data-derived state, so an
        engine restored from the exact bytes a previous engine computed
        evaluates every gain bit-identically to the original — without
        re-touching the points it was built from.
        """
        ratios_arr = np.asarray(ratios)
        net_arr = np.asarray(net, dtype=np.float64)
        if net_arr.ndim != 2 or ratios_arr.ndim != 2:
            raise ValueError("ratios and net must be 2-D arrays")
        if ratios_arr.shape[0] != net_arr.shape[0]:
            raise ValueError(
                f"ratio matrix has {ratios_arr.shape[0]} directions, "
                f"net has {net_arr.shape[0]}"
            )
        engine = cls.__new__(cls)
        engine.ratios = ratios_arr
        engine.net = net_arr
        engine.m = net_arr.shape[0]
        engine.n = ratios_arr.shape[1]
        engine._capped_tau = None
        engine._capped = None
        engine._margins_buf = None
        engine._cast_buf = None
        return engine

    def _capped_matrix(self, tau: float) -> np.ndarray:
        """``min(ratios, tau)``, cached for the last cap used.

        BiGreedy evaluates thousands of gain vectors per cap; capping the
        whole matrix once per cap keeps each gain call down to elementwise
        subtract / relu / mean passes.
        """
        if self._capped_tau != tau:
            self._capped = np.minimum(self.ratios, self.ratios.dtype.type(tau))
            self._capped_tau = tau
        return self._capped

    def _state_capped_cast(self, state: "TruncatedState") -> np.ndarray:
        """``state.capped`` in the ratio dtype, through a reused buffer.

        The greedy loop subtracts the per-direction state vector from the
        capped matrix thousands of times; casting float64 -> float32 into
        a persistent buffer (``np.copyto`` rounds exactly like
        ``astype``) replaces a fresh allocation per gain evaluation.
        """
        if state.capped.dtype == self.ratios.dtype:
            return state.capped
        if self._cast_buf is None or self._cast_buf.shape != state.capped.shape:
            self._cast_buf = np.empty(state.capped.shape, dtype=self.ratios.dtype)
        np.copyto(self._cast_buf, state.capped)
        return self._cast_buf

    # ------------------------------------------------------------------ #

    def new_state(self, tau: float) -> TruncatedState:
        """Fresh empty-selection state for cap ``tau``."""
        return TruncatedState(self.m, tau)

    def value(self, state: TruncatedState) -> float:
        """Current ``mhr_tau(S | N)``."""
        return float(state.capped.mean())

    def min_ratio(self, state: TruncatedState) -> float:
        """Untruncated ``mhr(S | N)`` of the current selection (0 if empty)."""
        if not state.selected:
            return 0.0
        return float(state.best.min())

    def gains(self, state: TruncatedState, candidates) -> np.ndarray:
        """Marginal gains ``mhr_tau(S + p) - mhr_tau(S)`` for candidates.

        One vectorized pass: ``mean_j max(min(R[j, i], tau) - capped_j, 0)``.
        When the candidate set covers most of the ground set the gather is
        skipped in favor of a full-matrix pass (greedy's common case).
        """
        cand = np.asarray(candidates, dtype=np.int64)
        if cand.size == 0:
            return np.zeros(0)
        capped = self._capped_matrix(state.tau)
        if cand.size >= self.n // 2:
            margins = capped - state.capped[:, None]
            np.maximum(margins, 0.0, out=margins)
            return margins.mean(axis=0)[cand]
        margins = capped[:, cand] - state.capped[:, None]
        np.maximum(margins, 0.0, out=margins)
        return margins.mean(axis=0)

    def gains_masked(self, state: TruncatedState, mask: np.ndarray) -> np.ndarray:
        """Full-length gain vector with non-candidates forced to ``-1``.

        The fast path for greedy loops: no index gather, one elementwise
        pass over the capped matrix (into a reused buffer), and ``argmax``
        directly yields the ground-set index.
        """
        if mask.shape != (self.n,):
            raise ValueError("mask must be a boolean vector over the ground set")
        capped = self._capped_matrix(state.tau)
        if self._margins_buf is None or self._margins_buf.shape != capped.shape:
            self._margins_buf = np.empty_like(capped)
        margins = self._margins_buf
        np.subtract(
            capped, self._state_capped_cast(state)[:, None], out=margins
        )
        np.maximum(margins, 0.0, out=margins)
        # float32 storage, float64 accumulation: the mean is the
        # exactness-preserving step — summing in float32 would drift.
        gains = margins.mean(axis=0, dtype=np.float64)
        gains[~mask] = -1.0
        return gains

    def gain_of(self, state: TruncatedState, index: int) -> float:
        """Marginal gain of a single point."""
        return float(self.gains(state, np.array([index]))[0])

    def gains_batch(self, state: TruncatedState, indices: np.ndarray) -> np.ndarray:
        """Exact gains for a small index batch (one column gather).

        Used by the batch-lazy greedy: submodularity makes previously
        computed gains upper bounds, so only the current top candidates
        need refreshing.
        """
        capped = self._capped_matrix(state.tau)
        margins = capped[:, indices] - self._state_capped_cast(state)[:, None]
        np.maximum(margins, 0.0, out=margins)
        return margins.mean(axis=0, dtype=np.float64)

    def add(self, state: TruncatedState, index: int) -> None:
        """Add ground-set point ``index`` to the selection (in place)."""
        if not 0 <= index < self.n:
            raise IndexError(f"point index {index} out of range")
        column = self.ratios[:, index]
        np.maximum(state.best, column, out=state.best)
        np.minimum(state.best, state.tau, out=state.capped)
        state.selected.append(int(index))

    def value_of_selection(self, selection, tau: float) -> float:
        """``mhr_tau`` of an arbitrary index set (non-incremental)."""
        sel = np.asarray(selection, dtype=np.int64)
        if sel.size == 0:
            return 0.0
        best = self.ratios[:, sel].max(axis=1).astype(np.float64)
        return float(np.minimum(best, tau).mean())

    def min_ratio_of_selection(self, selection) -> float:
        """``mhr(S | N)`` of an arbitrary index set (non-incremental)."""
        sel = np.asarray(selection, dtype=np.int64)
        if sel.size == 0:
            return 0.0
        return float(self.ratios[:, sel].max(axis=1).min())
