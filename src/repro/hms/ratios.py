"""Happiness-ratio primitives (paper Section 2).

``hr(u, S, D) = max_{p in S} <u, p> / max_{p in D} <u, p>`` measures how
satisfied a user with utility ``u`` is with the subset ``S``;
``mhr(S, D) = min_u hr(u, S, D)`` is the worst case over all nonnegative
linear utilities.  This module provides the direct (finite-set) evaluations;
exact continuous minimization lives in :mod:`repro.hms.exact`.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points

__all__ = ["scores", "top_scores", "happiness_ratio", "happiness_ratios", "mhr_on_net"]


def scores(points, directions) -> np.ndarray:
    """Utility matrix ``U[j, i] = <u_j, p_i>`` of shape ``(m, n)``."""
    pts = as_points(points)
    dirs = np.asarray(directions, dtype=np.float64)
    if dirs.ndim == 1:
        dirs = dirs[None, :]
    if dirs.shape[1] != pts.shape[1]:
        raise ValueError(
            f"direction dimension {dirs.shape[1]} != point dimension {pts.shape[1]}"
        )
    if (dirs < 0).any():
        raise ValueError("utility vectors must be nonnegative")
    return dirs @ pts.T


def top_scores(points, directions) -> np.ndarray:
    """Best achievable score per direction: ``max_i <u_j, p_i>``."""
    return scores(points, directions).max(axis=1)


def happiness_ratio(u, S, D) -> float:
    """``hr(u, S, D)`` for a single direction.

    Directions with zero best score over ``D`` (possible only for the zero
    vector, which is excluded from the utility space) raise ``ValueError``.
    """
    u_arr = np.asarray(u, dtype=np.float64)
    best_d = float(scores(D, u_arr).max())
    if best_d <= 0.0:
        raise ValueError("direction has zero utility over the database")
    best_s = float(scores(S, u_arr).max())
    return best_s / best_d


def happiness_ratios(S, D, directions) -> np.ndarray:
    """``hr(u_j, S, D)`` for every direction ``u_j`` (vectorized)."""
    top_d = top_scores(D, directions)
    if (top_d <= 0).any():
        raise ValueError("some direction has zero utility over the database")
    top_s = top_scores(S, directions)
    return top_s / top_d


def mhr_on_net(S, D, directions) -> float:
    """``mhr(S | N) = min_{u in N} hr(u, S, D)`` (Lemma 4.1's estimator).

    Always an *upper* bound on the true ``mhr(S, D)``; the gap is at most
    ``2 delta d / (1 + delta d)`` when ``directions`` is a delta-net.
    """
    return float(happiness_ratios(S, D, directions).min())
