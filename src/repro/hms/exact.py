"""Exact minimum-happiness-ratio computation.

Two exact engines, cross-validated against each other in the test suite:

* ``d = 2``: sweep the critical directions — the union of the breakpoints
  of the upper envelopes of ``S`` and ``D``.  Between consecutive
  breakpoints both envelopes are linear, and a ratio of linear functions is
  monotone, so the minimum of ``hr`` is attained at a breakpoint.
* ``d >= 3`` (works for any d): the LP decomposition of
  :mod:`repro.geometry.lp`.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points
from ..geometry.envelope import upper_envelope
from ..geometry.lp import max_regret_ratio_lp

__all__ = [
    "mhr_exact",
    "mhr_exact_2d",
    "mhr_exact_2d_with_env",
    "critical_lambdas_2d",
]


def critical_lambdas_2d(S, D) -> np.ndarray:
    """Candidate minimizing directions for 2-D exact MHR.

    The envelope breakpoints of both ``S`` and ``D`` (0 and 1 included).
    """
    env_s = upper_envelope(S)
    env_d = upper_envelope(D)
    lams = np.concatenate([env_s.vertices(), env_d.vertices()])
    return np.unique(np.clip(lams, 0.0, 1.0))


def mhr_exact_2d_with_env(S, env_d) -> float:
    """Exact 2-D MHR against a precomputed database envelope.

    Saves rebuilding the (large) database envelope when many subsets are
    scored against the same database, e.g. inside F-Greedy's sweep.
    """
    S_arr = as_points(S, name="S")
    env_s = upper_envelope(S_arr)
    lams = np.unique(
        np.clip(np.concatenate([env_s.vertices(), env_d.vertices()]), 0.0, 1.0)
    )
    top_s = np.asarray(env_s.value(lams))
    top_d = np.asarray(env_d.value(lams))
    if (top_d <= 0).any():
        raise ValueError("database scores must be positive on [0, 1]")
    return float(np.min(top_s / top_d))


def mhr_exact_2d(S, D) -> float:
    """Exact ``mhr(S, D)`` in two dimensions via the critical-lambda sweep."""
    S_arr = as_points(S, name="S")
    D_arr = as_points(D, name="D")
    if S_arr.shape[1] != 2 or D_arr.shape[1] != 2:
        raise ValueError("mhr_exact_2d requires 2-D points")
    env_s = upper_envelope(S_arr)
    env_d = upper_envelope(D_arr)
    lams = np.unique(
        np.clip(np.concatenate([env_s.vertices(), env_d.vertices()]), 0.0, 1.0)
    )
    top_s = env_s.value(lams)
    top_d = env_d.value(lams)
    if (top_d <= 0).any():
        raise ValueError("database scores must be positive on [0, 1]")
    return float(np.min(top_s / top_d))


def mhr_exact(S, D, *, candidates=None) -> float:
    """Exact ``mhr(S, D)`` for any dimension.

    Args:
        S: selected points ``(k, d)``; an empty selection has MHR 0.
        D: database points ``(n, d)``.
        candidates: optional maxima-candidate indices into ``D`` forwarded
            to the LP engine (ignored in 2-D where the sweep is exact and
            faster).
    """
    D_arr = as_points(D, name="D")
    S_arr = np.asarray(S, dtype=np.float64)
    if S_arr.ndim != 2 or S_arr.shape[1] != D_arr.shape[1]:
        raise ValueError("S must be 2-D with the same dimension as D")
    if S_arr.shape[0] == 0:
        return 0.0
    if D_arr.shape[1] == 1:
        return float(S_arr[:, 0].max() / D_arr[:, 0].max())
    if D_arr.shape[1] == 2:
        return mhr_exact_2d(S_arr, D_arr)
    result = max_regret_ratio_lp(S_arr, D_arr, candidates=candidates)
    return 1.0 - result.value
