"""Happiness-ratio objective: direct, exact, and truncated evaluators."""

from .evaluation import MhrEvaluation, MhrEvaluator, evaluate_mhr
from .exact import (
    critical_lambdas_2d,
    mhr_exact,
    mhr_exact_2d,
    mhr_exact_2d_with_env,
)
from .ratios import (
    happiness_ratio,
    happiness_ratios,
    mhr_on_net,
    scores,
    top_scores,
)
from .truncated import TruncatedEngine, TruncatedState

__all__ = [
    "MhrEvaluation",
    "MhrEvaluator",
    "TruncatedEngine",
    "TruncatedState",
    "critical_lambdas_2d",
    "evaluate_mhr",
    "happiness_ratio",
    "happiness_ratios",
    "mhr_exact",
    "mhr_exact_2d",
    "mhr_exact_2d_with_env",
    "mhr_on_net",
    "scores",
    "top_scores",
]
