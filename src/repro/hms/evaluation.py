"""Solution-quality evaluation protocol for the experiment harness.

The harness reports the minimum happiness ratio of every solution.  Exact
evaluation solves one LP per maxima candidate, which is affordable on the
real datasets (hundreds of candidates) but not on large high-dimensional
anti-correlated skylines where nearly every point is a candidate.  The
protocol therefore is:

* ``d = 2``: the exact critical-lambda sweep (always).
* ``d >= 3`` with at most ``exact_limit`` candidates: exact LPs.
* otherwise: a *refined net estimate* — a dense direction net gives an
  upper bound and identifies the worst witnesses; exact LPs on the
  best-response points of the worst ``refine`` directions tighten it from
  below.  The result is exact whenever the true worst direction's best
  response is among those witnesses (empirically almost always) and is
  flagged via ``MhrEvaluation.exact`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.deltanet import sample_directions
from ..geometry.hull import maxima_candidates
from ..geometry.lp import max_regret_ratio_lp
from .exact import mhr_exact_2d
from .ratios import scores

__all__ = ["MhrEvaluation", "evaluate_mhr", "MhrEvaluator"]


@dataclass(frozen=True)
class MhrEvaluation:
    """An MHR measurement plus how it was obtained."""

    value: float
    method: str  # "sweep", "lp", or "refined-net"
    exact: bool


class MhrEvaluator:
    """Reusable evaluator: caches the candidate set / net per database.

    The harness scores many solutions against the same database; candidate
    discovery (hull/skyline) and net sampling are done once here.
    """

    def __init__(
        self,
        database: np.ndarray,
        *,
        exact_limit: int = 800,
        net_size: int = 4096,
        refine: int = 128,
        seed: int = 20_22,
        candidates: np.ndarray | None = None,
        net: np.ndarray | None = None,
    ) -> None:
        """``candidates`` / ``net`` pre-seed the lazy caches: ``candidates``
        is an int array of maxima-candidate *point indices* into the
        database (as returned by ``maxima_candidates`` or another
        evaluator's ``.candidates`` — not IntCov's candidate-MHR values,
        which are ratios), ``net`` an ``(m, d)`` direction matrix.  Both
        skip the corresponding discovery/sampling work entirely."""
        self.database = np.asarray(database, dtype=np.float64)
        self.d = self.database.shape[1]
        self.exact_limit = exact_limit
        self.refine = refine
        self._candidates = (
            None if candidates is None else np.asarray(candidates, dtype=np.int64)
        )
        self._net = None if net is None else np.asarray(net, dtype=np.float64)
        self._net_size = net_size
        self._seed = seed

    @property
    def candidates(self) -> np.ndarray:
        if self._candidates is None:
            self._candidates = maxima_candidates(self.database)
        return self._candidates

    @property
    def net(self) -> np.ndarray:
        if self._net is None:
            self._net = sample_directions(self._net_size, self.d, self._seed)
        return self._net

    def evaluate(self, S: np.ndarray) -> MhrEvaluation:
        S = np.asarray(S, dtype=np.float64)
        if self.d == 2:
            return MhrEvaluation(mhr_exact_2d(S, self.database), "sweep", True)
        if self.candidates.shape[0] <= self.exact_limit:
            result = max_regret_ratio_lp(S, self.database, candidates=self.candidates)
            return MhrEvaluation(1.0 - result.value, "lp", True)
        # Refined net: upper bound from the net, tightened by LPs on the
        # best responses of the worst directions.
        top_d = scores(self.database, self.net)
        best_response = np.asarray(top_d.argmax(axis=1))
        top_s = scores(S, self.net).max(axis=1)
        ratios = top_s / top_d.max(axis=1)
        worst = np.argsort(ratios)[: self.refine]
        witnesses = np.unique(best_response[worst])
        result = max_regret_ratio_lp(S, self.database, candidates=witnesses)
        lower = 1.0 - result.value  # LPs only raise the regret -> mhr upper
        upper = float(ratios.min())
        return MhrEvaluation(min(lower, upper), "refined-net", False)


def evaluate_mhr(S, database, **kwargs) -> MhrEvaluation:
    """One-off evaluation (see :class:`MhrEvaluator` for the cached form)."""
    return MhrEvaluator(np.asarray(database, dtype=np.float64), **kwargs).evaluate(
        np.asarray(S, dtype=np.float64)
    )
