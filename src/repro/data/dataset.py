"""The ``Dataset`` container: points + group labels + provenance.

A :class:`Dataset` bundles the numeric matrix (``R^d_+``), the group
partition induced by one or more sensitive attributes, and human-readable
names.  It is the single input type every algorithm in the library consumes.

Datasets are immutable by convention: all transformation methods
(:meth:`normalized`, :meth:`subset`, :meth:`skyline`) return new instances
and ``ids`` always maps rows back to the original database so that solutions
computed on a skyline can be reported against the full data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._validation import as_points, check_group_labels
from ..geometry.dominance import grouped_skyline_indices, skyline_indices
from .groups import group_counts
from .normalize import max_normalize

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A database of ``n`` points in ``R^d_+`` partitioned into ``C`` groups.

    Attributes:
        points: float64 array of shape ``(n, d)``; nonnegative.
        labels: int64 array of shape ``(n,)``; group ids ``0..C-1``, every
            group non-empty.
        name: dataset name used in reports (e.g. ``"Adult"``).
        group_attribute: name of the partitioning attribute(s)
            (e.g. ``"Gender"`` or ``"G+R"``).
        group_names: one display name per group.
        ids: int64 array mapping each row to its row index in the original
            database (identity for freshly constructed datasets).
        meta: free-form provenance (e.g. ``population_group_sizes`` set by
            :meth:`skyline` so constraint builders can reference the
            original database's group proportions, as the paper does).
    """

    points: np.ndarray
    labels: np.ndarray
    name: str = "dataset"
    group_attribute: str = "group"
    group_names: tuple[str, ...] = ()
    ids: np.ndarray = field(default=None)  # type: ignore[assignment]
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        points = as_points(self.points)
        labels = check_group_labels(self.labels, points.shape[0])
        object.__setattr__(self, "points", points)
        object.__setattr__(self, "labels", labels)
        num_groups = int(labels.max()) + 1
        if self.group_names:
            if len(self.group_names) != num_groups:
                raise ValueError(
                    f"expected {num_groups} group names, got {len(self.group_names)}"
                )
            object.__setattr__(self, "group_names", tuple(self.group_names))
        else:
            object.__setattr__(
                self, "group_names", tuple(f"g{c}" for c in range(num_groups))
            )
        if self.ids is None:
            object.__setattr__(
                self, "ids", np.arange(points.shape[0], dtype=np.int64)
            )
        else:
            ids = np.asarray(self.ids, dtype=np.int64)
            if ids.shape != (points.shape[0],):
                raise ValueError("ids must be a 1-D array aligned with points")
            object.__setattr__(self, "ids", ids)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of points."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Number of numeric attributes ``d``."""
        return self.points.shape[1]

    @property
    def num_groups(self) -> int:
        """Number of groups ``C``."""
        return len(self.group_names)

    @property
    def group_sizes(self) -> np.ndarray:
        """Array of per-group sizes ``|D_c|``."""
        return group_counts(self.labels, self.num_groups)

    def group_indices(self, group: int) -> np.ndarray:
        """Row indices belonging to ``group``."""
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range (C={self.num_groups})")
        return np.nonzero(self.labels == group)[0]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.name!r}, n={self.n}, d={self.dim}, "
            f"C={self.num_groups}, by={self.group_attribute!r})"
        )

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def normalized(self) -> "Dataset":
        """Return a copy with every attribute scaled by its column maximum."""
        return replace(self, points=max_normalize(self.points))

    def subset(self, indices) -> "Dataset":
        """Dataset restricted to ``indices`` (groups must stay non-empty)."""
        idx = np.asarray(indices, dtype=np.int64)
        sub_labels = self.labels[idx]
        present = np.unique(sub_labels)
        if present.size == self.num_groups:
            labels, names = sub_labels, self.group_names
        else:
            # Re-index groups compactly, dropping the empty ones.
            remap = {int(old): new for new, old in enumerate(present)}
            labels = np.array([remap[int(v)] for v in sub_labels], dtype=np.int64)
            names = tuple(self.group_names[int(old)] for old in present)
        return Dataset(
            points=self.points[idx],
            labels=labels,
            name=self.name,
            group_attribute=self.group_attribute,
            group_names=names,
            ids=self.ids[idx],
        )

    def skyline(self, *, per_group: bool = True) -> "Dataset":
        """The skyline dataset used as algorithm input.

        With ``per_group=True`` (the paper's setting) the result is the
        union of each group's own skyline, so fairness-constrained
        algorithms can still pick the best representatives of globally
        dominated groups.  ``per_group=False`` gives the classic global
        skyline.
        """
        if per_group:
            idx = grouped_skyline_indices(self.points, self.labels, self.num_groups)
        else:
            idx = skyline_indices(self.points)
        result = self.subset(idx)
        # Record the original group proportions: proportional-representation
        # constraints reference the database, not its skyline.
        population = self.meta.get("population_group_sizes")
        if population is None:
            population = self.group_sizes.tolist()
        result.meta["population_group_sizes"] = list(population)
        return result

    @property
    def population_group_sizes(self) -> np.ndarray:
        """Group sizes of the originating database (falls back to own)."""
        population = self.meta.get("population_group_sizes")
        if population is None:
            return self.group_sizes
        return np.asarray(population, dtype=np.int64)

    def with_groups(self, labels, names=(), attribute="group") -> "Dataset":
        """Same points, different partition (e.g. Gender -> Race)."""
        return Dataset(
            points=self.points,
            labels=labels,
            name=self.name,
            group_attribute=attribute,
            group_names=tuple(names),
            ids=self.ids,
        )
