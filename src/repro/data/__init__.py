"""Data substrate: datasets, generators, normalization and grouping."""

from .dataset import Dataset
from .groups import (
    combine_partitions,
    group_counts,
    labels_from_values,
    quantile_partition,
)
from .lsac import LSAC_APPLICANTS, lsac_example
from .normalize import (
    column_scale,
    invert_preference,
    max_normalize,
    minmax_normalize,
)
from .realworld import (
    DATASET_GROUPS,
    adult,
    compas,
    credit,
    lawschs,
    load_dataset,
)
from .synthetic import (
    anticorrelated,
    anticorrelated_dataset,
    correlated,
    independent,
    synthetic_dataset,
)

__all__ = [
    "Dataset",
    "DATASET_GROUPS",
    "LSAC_APPLICANTS",
    "adult",
    "anticorrelated",
    "anticorrelated_dataset",
    "column_scale",
    "combine_partitions",
    "compas",
    "correlated",
    "credit",
    "group_counts",
    "independent",
    "invert_preference",
    "labels_from_values",
    "lawschs",
    "load_dataset",
    "lsac_example",
    "max_normalize",
    "minmax_normalize",
    "quantile_partition",
    "synthetic_dataset",
]
