"""Offline simulacra of the paper's four real-world datasets.

The originals (Lawschs/LSAC, Adult, Compas, Credit) are downloads the
reproduction environment cannot fetch.  Following the substitution rule in
DESIGN.md, each is replaced by a seeded generator matching the properties
the FairHMS experiments actually exercise:

* the published row count ``n`` and dimensionality ``d`` (Table 2),
* the group structure: attribute names, group counts ``C`` and realistic
  group imbalance (majority/minority skew),
* a per-group *quality shift* so that unconstrained HMS solutions
  over-represent advantaged groups (the phenomenon behind Figure 3),
* attribute correlation tuned so the per-group skyline sizes land in the
  same order of magnitude as Table 2 (tens for Lawschs, hundreds for the
  multi-dimensional datasets).

Every generator returns the *raw* (pre-normalization) dataset; call
``.normalized()`` (division by column maxima, the paper's convention) before
running algorithms.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .dataset import Dataset
from .groups import combine_partitions

__all__ = [
    "lawschs",
    "adult",
    "compas",
    "credit",
    "load_dataset",
    "DATASET_GROUPS",
]


def _assign_groups(rng, n: int, proportions) -> np.ndarray:
    """Sample group labels with fixed expected proportions."""
    proportions = np.asarray(proportions, dtype=np.float64)
    proportions = proportions / proportions.sum()
    return rng.choice(len(proportions), size=n, p=proportions).astype(np.int64)


def _latent_scores(rng, n: int, d: int, *, correlation: float) -> np.ndarray:
    """Latent-factor attribute matrix in [0, 1] with tunable correlation.

    One latent quality factor per individual drives all attributes with
    weight ``correlation``; the rest is independent noise.  Higher
    correlation produces smaller skylines.
    """
    latent = rng.beta(4.0, 2.5, size=n)
    noise = rng.beta(2.0, 2.0, size=(n, d))
    return correlation * latent[:, None] + (1.0 - correlation) * noise


def _apply_group_shift(points, labels, shifts) -> np.ndarray:
    """Scale each group's attributes by ``1 - shift`` (a quality handicap).

    Positive shifts reproduce the real-world pattern that some groups score
    systematically lower on the recorded numeric attributes, which is what
    makes unconstrained HMS under-represent them.
    """
    points = points.copy()
    for group, shift in enumerate(shifts):
        if shift:
            points[labels == group] *= 1.0 - shift
    return points


# --------------------------------------------------------------------- #
# Lawschs (LSAC): 2d, n = 65,494, gender (2) / race (5)
# --------------------------------------------------------------------- #

_LAWSCHS_GENDER = ("Female", "Male")
_LAWSCHS_GENDER_P = (0.44, 0.56)
_LAWSCHS_RACE = ("White", "Black", "Hispanic", "Asian", "Other")
_LAWSCHS_RACE_P = (0.84, 0.06, 0.05, 0.04, 0.01)


def lawschs(seed: int = 7, *, n: int = 65_494, group_attribute: str = "Gender") -> Dataset:
    """Simulated LSAC law-school dataset: LSAT and GPA, strongly correlated.

    LSAT spans 120-180 and GPA 0-4; both are driven by one aptitude factor
    (correlation ~0.6 in the real data) so that 2-D skylines stay tiny
    (Table 2: 19 for gender, 42 for race).
    """
    rng = ensure_rng(seed)
    gender = _assign_groups(rng, n, _LAWSCHS_GENDER_P)
    race = _assign_groups(rng, n, _LAWSCHS_RACE_P)
    aptitude = rng.beta(5.0, 3.0, size=n)
    # Convex combinations of bounded variables: no clipping, so the top of
    # the range is never saturated (saturation would collapse a group's
    # skyline to a single "perfect" tuple).
    lsat_noise = rng.beta(2.0, 2.0, size=n)
    gpa_noise = rng.beta(2.0, 2.0, size=n)
    lsat = 120.0 + 60.0 * (0.85 * aptitude + 0.15 * lsat_noise)
    gpa = 4.0 * (0.80 * aptitude + 0.20 * gpa_noise)
    points = np.column_stack([lsat, gpa])
    # Group-level score gaps (documented in the LSAC literature).
    points = _apply_group_shift(points, gender, (0.015, 0.0))
    points = _apply_group_shift(points, race, (0.0, 0.06, 0.045, 0.02, 0.03))
    return _with_partition(
        points, "Lawschs", group_attribute,
        {"Gender": (gender, _LAWSCHS_GENDER), "Race": (race, _LAWSCHS_RACE)},
    )


# --------------------------------------------------------------------- #
# Adult: 5d, n = 32,561, gender (2) / race (5) / G+R (10)
# --------------------------------------------------------------------- #

_ADULT_GENDER = ("Female", "Male")
_ADULT_GENDER_P = (0.33, 0.67)
_ADULT_RACE = ("White", "Black", "Asian-Pac", "Amer-Indian", "Other")
_ADULT_RACE_P = (0.854, 0.096, 0.031, 0.010, 0.009)


def adult(seed: int = 11, *, n: int = 32_561, group_attribute: str = "Gender") -> Dataset:
    """Simulated Adult census dataset (5 numeric attributes).

    Attributes mimic the originals: education years (discrete-ish),
    zero-inflated heavy-tailed capital gain/loss, weekly hours, and the
    census weight.  Moderate correlation keeps per-group skylines in the
    low hundreds (Table 2: 130 / 206 / 339).
    """
    rng = ensure_rng(seed)
    gender = _assign_groups(rng, n, _ADULT_GENDER_P)
    race = _assign_groups(rng, n, _ADULT_RACE_P)
    base = _latent_scores(rng, n, 5, correlation=0.55)
    education = np.rint(1.0 + 15.0 * base[:, 0])
    gain_mask = rng.random(n) < 0.085
    capital_gain = np.where(
        gain_mask, rng.lognormal(8.0, 1.1, size=n) * (0.5 + base[:, 1]), 0.0
    )
    loss_mask = rng.random(n) < 0.047
    capital_loss = np.where(
        loss_mask, rng.lognormal(7.3, 0.5, size=n) * (0.5 + base[:, 2]), 0.0
    )
    hours = np.clip(rng.normal(40.0, 12.0, size=n) * (0.6 + 0.8 * base[:, 3]), 1, 99)
    weight = 1.2e4 + 1.4e6 * base[:, 4] ** 2
    points = np.column_stack([education, capital_gain, capital_loss, hours, weight])
    points = _apply_group_shift(points, gender, (0.12, 0.0))
    points = _apply_group_shift(points, race, (0.0, 0.10, 0.03, 0.12, 0.08))
    parts = {"Gender": (gender, _ADULT_GENDER), "Race": (race, _ADULT_RACE)}
    if group_attribute == "G+R":
        labels, names = combine_partitions(
            gender, race, names=(_ADULT_GENDER, _ADULT_RACE)
        )
        parts["G+R"] = (labels, names)
    return _with_partition(points, "Adult", group_attribute, parts)


# --------------------------------------------------------------------- #
# Compas: 9d, n = 4,743, gender (2) / isRecid (2) / G+iR (4)
# --------------------------------------------------------------------- #

_COMPAS_GENDER = ("Male", "Female")
_COMPAS_GENDER_P = (0.81, 0.19)
_COMPAS_RECID = ("NotRecid", "Recid")
_COMPAS_RECID_P = (0.66, 0.34)


def compas(seed: int = 13, *, n: int = 4_743, group_attribute: str = "Gender") -> Dataset:
    """Simulated Compas dataset (9 correlated numeric attributes).

    Nine attributes on a shared risk factor; correlation 0.62 keeps the
    per-group skylines near Table 2's 195-296 despite d = 9.
    """
    rng = ensure_rng(seed)
    gender = _assign_groups(rng, n, _COMPAS_GENDER_P)
    recid = _assign_groups(rng, n, _COMPAS_RECID_P)
    points = _latent_scores(rng, n, 9, correlation=0.62)
    scales = np.array([800.0, 40.0, 10.0, 10.0, 25.0, 12.0, 10.0, 60.0, 5.0])
    points = points * scales
    points = _apply_group_shift(points, gender, (0.0, 0.08))
    points = _apply_group_shift(points, recid, (0.0, 0.08))
    parts = {
        "Gender": (gender, _COMPAS_GENDER),
        "isRecid": (recid, _COMPAS_RECID),
    }
    if group_attribute == "G+iR":
        labels, names = combine_partitions(
            gender, recid, names=(_COMPAS_GENDER, _COMPAS_RECID)
        )
        parts["G+iR"] = (labels, names)
    return _with_partition(points, "Compas", group_attribute, parts)


# --------------------------------------------------------------------- #
# Credit: 7d, n = 1,000, housing (3) / job (4) / working years (5)
# --------------------------------------------------------------------- #

_CREDIT_HOUSING = ("Own", "Rent", "Free")
_CREDIT_HOUSING_P = (0.71, 0.18, 0.11)
_CREDIT_JOB = ("Unskilled", "Skilled", "Management", "Unemployed")
_CREDIT_JOB_P = (0.22, 0.63, 0.13, 0.02)
_CREDIT_WY = ("<1y", "1-4y", "4-7y", ">=7y", "None")
_CREDIT_WY_P = (0.17, 0.34, 0.17, 0.25, 0.07)


def credit(seed: int = 17, *, n: int = 1_000, group_attribute: str = "Job") -> Dataset:
    """Simulated German credit dataset (7 numeric attributes)."""
    rng = ensure_rng(seed)
    housing = _assign_groups(rng, n, _CREDIT_HOUSING_P)
    job = _assign_groups(rng, n, _CREDIT_JOB_P)
    years = _assign_groups(rng, n, _CREDIT_WY_P)
    points = _latent_scores(rng, n, 7, correlation=0.45)
    scales = np.array([75.0, 18_000.0, 4.0, 4.0, 75.0, 4.0, 2.0])
    points = points * scales
    points = _apply_group_shift(points, job, (0.06, 0.0, 0.0, 0.08))
    points = _apply_group_shift(points, housing, (0.0, 0.03, 0.05))
    parts = {
        "Housing": (housing, _CREDIT_HOUSING),
        "Job": (job, _CREDIT_JOB),
        "WY": (years, _CREDIT_WY),
    }
    return _with_partition(points, "Credit", group_attribute, parts)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

def _with_partition(points, name, group_attribute, partitions) -> Dataset:
    """Build a Dataset for the requested partition attribute."""
    if group_attribute not in partitions:
        raise ValueError(
            f"{name} has no group attribute {group_attribute!r}; "
            f"available: {sorted(partitions)}"
        )
    labels, names = partitions[group_attribute]
    return Dataset(
        points=points,
        labels=labels,
        name=name,
        group_attribute=group_attribute,
        group_names=tuple(names),
    )


#: Group attributes available per dataset, mirroring the paper's Table 2.
DATASET_GROUPS = {
    "Lawschs": ("Gender", "Race"),
    "Adult": ("Gender", "Race", "G+R"),
    "Compas": ("Gender", "isRecid", "G+iR"),
    "Credit": ("Housing", "Job", "WY"),
}

_LOADERS = {"Lawschs": lawschs, "Adult": adult, "Compas": compas, "Credit": credit}


def load_dataset(name: str, group_attribute: str | None = None, *, seed=None,
                 n: int | None = None) -> Dataset:
    """Load a simulated real-world dataset by name.

    Args:
        name: one of ``Lawschs``, ``Adult``, ``Compas``, ``Credit``.
        group_attribute: partition to use (defaults to the first attribute
            listed in :data:`DATASET_GROUPS`).
        seed: optional seed override (each dataset has a fixed default so
            repeated loads are identical).
        n: optional row-count override for scaled-down experiments.
    """
    if name not in _LOADERS:
        raise ValueError(f"unknown dataset {name!r}; expected one of {sorted(_LOADERS)}")
    if group_attribute is None:
        group_attribute = DATASET_GROUPS[name][0]
    kwargs = {"group_attribute": group_attribute}
    if n is not None:
        kwargs["n"] = n
    loader = _LOADERS[name]
    if seed is None:
        return loader(**kwargs)
    return loader(seed, **kwargs)
