"""Group partitioning utilities (paper Section 2, "Fairness Model").

A database is partitioned into ``C`` disjoint groups by one categorical
attribute, or by the cartesian product of several attributes (e.g. the
"G+R" = gender x race partition of Adult with 10 groups).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_group_labels

__all__ = [
    "labels_from_values",
    "combine_partitions",
    "quantile_partition",
    "group_counts",
]


def labels_from_values(values) -> tuple[np.ndarray, tuple[str, ...]]:
    """Encode arbitrary categorical values as contiguous integer labels.

    Returns ``(labels, names)`` where ``names[c]`` is the original value of
    group ``c``.  Ordering is first-appearance order, which keeps labels
    stable for deterministic inputs.
    """
    values = list(values)
    if not values:
        raise ValueError("cannot build groups from an empty value sequence")
    names: list[str] = []
    index: dict = {}
    labels = np.empty(len(values), dtype=np.int64)
    for i, value in enumerate(values):
        key = value
        if key not in index:
            index[key] = len(names)
            names.append(str(value))
        labels[i] = index[key]
    return labels, tuple(names)


def combine_partitions(*label_arrays, names=None) -> tuple[np.ndarray, tuple[str, ...]]:
    """Combine several partitions into their product partition.

    Mirrors the paper's multi-attribute grouping: ``C = prod_j C_j`` groups,
    one per combination of values.  Only combinations that actually occur
    are kept (empty groups are not allowed by the data model).

    Args:
        *label_arrays: one or more 1-D integer label arrays of equal length.
        names: optional sequence of name tuples, one per partition, used to
            render combined group names like ``"Female|Black"``.
    """
    if not label_arrays:
        raise ValueError("need at least one partition to combine")
    n = len(label_arrays[0])
    arrays = [check_group_labels(a, n) for a in label_arrays]
    keys = list(zip(*[a.tolist() for a in arrays]))
    if names is None:
        rendered = ["|".join(str(v) for v in key) for key in keys]
    else:
        rendered = [
            "|".join(names[j][v] for j, v in enumerate(key)) for key in keys
        ]
    return labels_from_values(rendered)


def quantile_partition(points: np.ndarray, num_groups: int) -> np.ndarray:
    """Partition points into equal-sized groups by attribute sum.

    This is the synthetic grouping scheme of Section 5.1: "we sort the
    points by the sums of their attributes and divide them into C
    equal-sized groups accordingly".
    """
    if num_groups < 1:
        raise ValueError(f"num_groups must be >= 1, got {num_groups}")
    n = points.shape[0]
    if num_groups > n:
        raise ValueError(f"cannot split {n} points into {num_groups} groups")
    order = np.argsort(points.sum(axis=1), kind="stable")
    labels = np.empty(n, dtype=np.int64)
    # Split as evenly as possible: first (n % C) groups get one extra point.
    sizes = np.full(num_groups, n // num_groups, dtype=np.int64)
    sizes[: n % num_groups] += 1
    start = 0
    for c, size in enumerate(sizes):
        labels[order[start : start + size]] = c
        start += size
    return labels


def group_counts(labels: np.ndarray, num_groups: int | None = None) -> np.ndarray:
    """Count members per group (like ``bincount`` with validation)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size == 0:
        return np.zeros(int(num_groups or 0), dtype=np.int64)
    width = int(labels.max()) + 1 if num_groups is None else int(num_groups)
    return np.bincount(labels, minlength=width)
