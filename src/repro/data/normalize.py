"""Attribute normalization used throughout the paper.

The paper assumes every numeric attribute lies in ``[0, 1]`` with larger
values preferred, justified by the scale invariance of happiness ratios
(Section 2).  Reproducing the paper's Example 2.2 numerically shows the
convention used is *division by the column maximum* (not min-max scaling):
with max-scaling the example's reported ratios 0.9846 / 0.9834 / 0.9984
match to four decimals.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points

__all__ = [
    "column_scale",
    "max_normalize",
    "minmax_normalize",
    "invert_preference",
]


def column_scale(points) -> np.ndarray:
    """The per-column divisors :func:`max_normalize` uses (column maxima).

    Exposed separately so distributed pipelines can normalize row shards
    independently: per-shard maxima merged with ``np.maximum`` equal the
    global maxima exactly (max is exact in floating point), and dividing
    each shard by the same scale reproduces ``max_normalize`` of the full
    matrix bit for bit.
    """
    return as_points(points).max(axis=0)


def max_normalize(points, *, scale=None) -> np.ndarray:
    """Scale each attribute by its maximum so each column peaks at 1.

    This is the paper's normalization (verified against Example 2.2).
    Columns that are identically zero are left untouched (they carry no
    preference information and dividing by zero would poison the data).

    ``scale`` substitutes precomputed column maxima (see
    :func:`column_scale`) so a row shard can be normalized exactly as it
    would be inside the full matrix.
    """
    arr = as_points(points).copy()
    col_max = column_scale(arr) if scale is None else np.asarray(
        scale, dtype=np.float64
    )
    if col_max.shape != (arr.shape[1],):
        raise ValueError(
            f"scale must have one entry per column, got shape {col_max.shape}"
        )
    positive = col_max > 0
    arr[:, positive] /= col_max[positive]
    return arr


def minmax_normalize(points, *, eps: float = 0.0) -> np.ndarray:
    """Min-max scale each attribute to ``[eps, 1]``.

    Provided for completeness; some RMS papers use min-max scaling.  A small
    ``eps`` floor avoids all-zero rows, which make every happiness ratio
    degenerate for the axis directions.
    """
    arr = as_points(points).copy()
    col_min = arr.min(axis=0)
    col_range = arr.max(axis=0) - col_min
    flat = col_range <= 0
    col_range[flat] = 1.0
    arr = (arr - col_min) / col_range
    arr[:, flat] = 1.0
    if eps:
        arr = eps + (1.0 - eps) * arr
    return arr


def invert_preference(points, columns) -> np.ndarray:
    """Flip attributes where *smaller* raw values are preferred.

    Several evaluation datasets (e.g. Compas ``count of priority``) prefer
    small values; the RMS convention is to replace ``x`` by ``max - x`` so
    that larger is uniformly better before normalization.
    """
    arr = as_points(points).copy()
    cols = np.atleast_1d(np.asarray(columns, dtype=np.int64))
    for col in cols:
        if not 0 <= col < arr.shape[1]:
            raise ValueError(f"column {col} out of range for d={arr.shape[1]}")
        arr[:, col] = arr[:, col].max() - arr[:, col]
    return arr
