"""The paper's running example: Table 1, eight LSAC applicants.

Used by the documentation, the quickstart example, and the acceptance tests
that pin the library to the paper's Example 2.2 numbers:

* HMS with ``k = 3`` returns ``{a4, a5, a7}`` with MHR 0.9984 — all male,
  the motivating unfairness.
* HMS with ``k = 2`` returns ``{a4, a5}`` with MHR 0.9846.
* FairHMS with ``k = 2`` and one applicant per gender returns
  ``{a5, a8}`` with MHR 0.9834.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .groups import combine_partitions, labels_from_values

__all__ = ["lsac_example", "LSAC_APPLICANTS"]

#: (applicant id, gender, race, LSAT, GPA) — verbatim from Table 1.
LSAC_APPLICANTS = (
    ("a1", "Female", "Black", 164, 3.31),
    ("a2", "Male", "Black", 163, 3.55),
    ("a3", "Female", "White", 165, 3.09),
    ("a4", "Male", "White", 160, 3.83),
    ("a5", "Male", "Hispanic", 170, 2.79),
    ("a6", "Female", "Hispanic", 161, 3.69),
    ("a7", "Male", "Asian", 153, 3.89),
    ("a8", "Female", "Asian", 156, 3.87),
)


def lsac_example(group_attribute: str = "Gender") -> Dataset:
    """Build the Table 1 example as a normalized :class:`Dataset`.

    Args:
        group_attribute: ``"Gender"`` (2 groups), ``"Race"`` (4 groups) or
            ``"G+R"`` (8 groups), matching the paper's remark that the eight
            tuples can be partitioned 2/4/8 ways.
    """
    points = np.array([[row[3], row[4]] for row in LSAC_APPLICANTS], dtype=float)
    genders = [row[1] for row in LSAC_APPLICANTS]
    races = [row[2] for row in LSAC_APPLICANTS]
    if group_attribute == "Gender":
        labels, names = labels_from_values(genders)
    elif group_attribute == "Race":
        labels, names = labels_from_values(races)
    elif group_attribute == "G+R":
        g_labels, g_names = labels_from_values(genders)
        r_labels, r_names = labels_from_values(races)
        labels, names = combine_partitions(g_labels, r_labels, names=(g_names, r_names))
    else:
        raise ValueError(
            f"group_attribute must be 'Gender', 'Race' or 'G+R', got {group_attribute!r}"
        )
    dataset = Dataset(
        points=points,
        labels=labels,
        name="LSAC-Table1",
        group_attribute=group_attribute,
        group_names=names,
    )
    return dataset.normalized()
