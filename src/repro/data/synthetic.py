"""Synthetic workload generators.

``anticorrelated`` reproduces the classic skyline-benchmark generator of
Börzsönyi, Kossmann and Stocker (ICDE 2001) used by the paper: coordinate
sums are normally distributed and points are uniform on the corresponding
simplex slice, which makes almost every point a skyline member.  The paper's
synthetic grouping (Section 5.1) sorts points by attribute sum and cuts them
into ``C`` equal-size groups; :func:`anticorrelated_dataset` bundles both.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from .._validation import check_positive_int
from .dataset import Dataset
from .groups import quantile_partition

__all__ = [
    "anticorrelated",
    "independent",
    "correlated",
    "anticorrelated_dataset",
    "synthetic_dataset",
]


def anticorrelated(
    n: int,
    d: int,
    seed=None,
    *,
    spread_rounds: int | None = None,
    sum_spread: float | None = None,
) -> np.ndarray:
    """Anti-correlated points in ``[0, 1]^d`` (Börzsönyi et al. generator).

    Each point starts with all coordinates equal to a base value
    ``v ~ N(0.5, sum_spread)`` (so its coordinate sum is fixed at ``d v``),
    then repeatedly moves a random amount of mass between random coordinate
    pairs while staying inside the unit cube.  Being good in one attribute
    therefore costs value in the others — the adversarial regime for
    representative-subset problems.

    ``sum_spread`` defaults to ``0.05 / n``: in two dimensions a point is
    dominated only by points whose (higher) sum is within its coordinate
    gap, so the spread must shrink like ``1/n`` for the skyline to stay at
    the 0.9n-n fraction the paper's Table 2 reports at every scale (for
    ``d >= 3`` virtually everything is on the skyline regardless).

    Args:
        spread_rounds: redistribution passes (default ``4 d``); more rounds
            spread mass further from the diagonal.
        sum_spread: standard deviation of the per-point base value.
    """
    n = check_positive_int(n, name="n")
    d = check_positive_int(d, name="d")
    rng = ensure_rng(seed)
    sigma = 0.05 / n if sum_spread is None else float(sum_spread)
    base = rng.normal(0.5, sigma, size=n).clip(0.05, 0.95)
    points = np.tile(base[:, None], (1, d))
    if d == 1:
        return points
    rounds = spread_rounds if spread_rounds is not None else 4 * d
    rows = np.arange(n)
    for _ in range(rounds):
        give = rng.integers(0, d, size=n)
        offset = rng.integers(1, d, size=n)
        take = (give + offset) % d
        room = np.minimum(points[rows, give], 1.0 - points[rows, take])
        delta = rng.random(n) * room
        points[rows, give] -= delta
        points[rows, take] += delta
    return points


def independent(n: int, d: int, seed=None) -> np.ndarray:
    """Independent uniform points in ``[0, 1]^d``."""
    n = check_positive_int(n, name="n")
    d = check_positive_int(d, name="d")
    rng = ensure_rng(seed)
    return rng.random((n, d))


def correlated(n: int, d: int, seed=None, *, strength: float = 0.8) -> np.ndarray:
    """Positively correlated points in ``[0, 1]^d``.

    A per-point latent quality ``z`` drives every attribute with weight
    ``strength``; the remainder is independent noise.  High correlation
    yields the small skylines typical of real decision-support data.
    """
    n = check_positive_int(n, name="n")
    d = check_positive_int(d, name="d")
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    rng = ensure_rng(seed)
    latent = rng.random(n)
    noise = rng.random((n, d))
    return strength * latent[:, None] + (1.0 - strength) * noise


def anticorrelated_dataset(
    n: int, d: int, num_groups: int, seed=None, *, name: str | None = None, **kwargs
) -> Dataset:
    """Anti-correlated dataset with the paper's quantile group partition.

    Extra keyword arguments (``spread_rounds``, ``sum_spread``) are
    forwarded to :func:`anticorrelated`.
    """
    points = anticorrelated(n, d, seed, **kwargs)
    labels = quantile_partition(points, num_groups)
    return Dataset(
        points=points,
        labels=labels,
        name=name or f"AntiCor_{d}D",
        group_attribute=f"sum-quantile({num_groups})",
        group_names=tuple(f"q{c}" for c in range(num_groups)),
    )


_GENERATORS = {
    "anticorrelated": anticorrelated,
    "independent": independent,
    "correlated": correlated,
}


def synthetic_dataset(
    kind: str, n: int, d: int, num_groups: int, seed=None
) -> Dataset:
    """Uniform front-end over the synthetic generators.

    ``kind`` is one of ``"anticorrelated"``, ``"independent"``,
    ``"correlated"``; groups are always the attribute-sum quantile partition
    so fairness constraints bind the same way across kinds.
    """
    try:
        generator = _GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown synthetic kind {kind!r}; expected one of {sorted(_GENERATORS)}"
        ) from None
    points = generator(n, d, seed)
    labels = quantile_partition(points, num_groups)
    return Dataset(
        points=points,
        labels=labels,
        name=f"{kind.capitalize()}_{d}D",
        group_attribute=f"sum-quantile({num_groups})",
        group_names=tuple(f"q{c}" for c in range(num_groups)),
    )
