"""Delta-nets on the nonnegative unit sphere (paper Section 4.1).

A set ``N`` of unit vectors is a *delta-net* of ``S^{d-1}_+`` when every
nonnegative unit vector ``u`` has some ``v in N`` with ``<u, v> >= cos
delta``.  The paper (following Agarwal et al. and Saff & Kuijlaars) samples
``O(delta^{1-d} log(1/delta))`` directions uniformly at random, which yields
a delta-net with probability >= 1/2; repeated trials make the success
probability arbitrarily high.  In the experiments the net size ``m`` is set
directly (``m = 10 k d`` by default), so both entry points are provided.
"""

from __future__ import annotations

import math

import numpy as np

from .._rng import ensure_rng
from .._validation import check_positive_int

__all__ = [
    "sample_directions",
    "grid_directions_2d",
    "delta_net_size",
    "delta_net",
    "net_parameter_for_mhr_error",
    "coverage_angle",
]


def sample_directions(m: int, d: int, seed=None) -> np.ndarray:
    """Sample ``m`` directions uniformly from ``S^{d-1}_+``.

    The absolute value of a spherically symmetric Gaussian is uniform on
    the nonnegative orthant of the sphere.  Zero-norm draws (probability 0)
    are resampled defensively.
    """
    m = check_positive_int(m, name="m")
    d = check_positive_int(d, name="d")
    rng = ensure_rng(seed)
    vectors = np.abs(rng.standard_normal((m, d)))
    norms = np.linalg.norm(vectors, axis=1)
    bad = norms <= 0
    while bad.any():  # pragma: no cover - probability-zero branch
        vectors[bad] = np.abs(rng.standard_normal((int(bad.sum()), d)))
        norms = np.linalg.norm(vectors, axis=1)
        bad = norms <= 0
    return vectors / norms[:, None]


def grid_directions_2d(m: int) -> np.ndarray:
    """``m`` evenly spaced directions on the quarter circle ``S^1_+``.

    The deterministic "uniform grid" construction the paper mentions for
    2-D (Figure 2); with spacing ``pi/2/(m-1)`` it is a ``delta``-net for
    ``delta = pi/4/(m-1)``.
    """
    m = check_positive_int(m, name="m")
    if m == 1:
        angles = np.array([np.pi / 4])
    else:
        angles = np.linspace(0.0, np.pi / 2, m)
    return np.column_stack([np.cos(angles), np.sin(angles)])


def delta_net_size(delta: float, d: int) -> int:
    """The sampling size ``O(delta^{1-d} log(1/delta))`` from the paper.

    Constant factors follow Saff & Kuijlaars' covering argument: we use
    ``ceil(2 (2/delta)^{d-1} ln(1/delta + 1)) + d`` which in 2-D gives a few
    dozen vectors for ``delta ~ 0.1`` — matching the paper's Figure 2 scale.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    d = check_positive_int(d, name="d")
    base = (2.0 / delta) ** (d - 1)
    return int(math.ceil(2.0 * base * math.log(1.0 / delta + 1.0))) + d


def delta_net(delta: float, d: int, seed=None) -> np.ndarray:
    """Sample a (probable) delta-net of ``S^{d-1}_+``."""
    return sample_directions(delta_net_size(delta, d), d, seed)


def net_parameter_for_mhr_error(delta: float, d: int) -> float:
    """Net resolution needed so the MHR estimate errs by at most ``delta``.

    Lemma 4.1 bounds the error of a ``delta'``-net estimate by
    ``2 delta' d / (1 + delta' d)``; solving for error ``<= delta`` gives the
    paper's choice ``delta' = delta / (d (2 - delta))``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    d = check_positive_int(d, name="d")
    return delta / (d * (2.0 - delta))


def coverage_angle(net: np.ndarray, probes: np.ndarray) -> float:
    """Largest angular gap (radians) from any probe to its nearest net vector.

    Used by tests to check the delta-net property empirically:
    ``coverage_angle(net, probes) <= delta`` certifies the net covers the
    probed directions.
    """
    net = np.asarray(net, dtype=np.float64)
    probes = np.asarray(probes, dtype=np.float64)
    if net.ndim != 2 or probes.ndim != 2 or net.shape[1] != probes.shape[1]:
        raise ValueError("net and probes must be 2-D with matching dimension")
    cosines = np.clip(probes @ net.T, -1.0, 1.0).max(axis=1)
    return float(np.arccos(cosines).max())
