"""Exact maximum-regret / minimum-happiness computation via linear programs.

The classic decomposition (Nanongkai et al., VLDB 2010): for a fixed subset
``S`` and a candidate best-response point ``q``,

    LP(q):  maximize x
            s.t.  <u, q> = 1
                  <u, p> + x <= 1     for every p in S
                  u >= 0

For any feasible ``(u, x)`` one has ``x <= rr(u) <= MRR`` (proof in
DESIGN.md), and the maximizing direction together with its true best point
attains equality, so

    mrr(S, D) = max over q in maxima-candidates(D) of LP(q),

and ``mhr = 1 - mrr``.  Candidates can be restricted to skyline points that
are convex-hull vertices without losing exactness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from .._validation import as_points
from .hull import maxima_candidates

__all__ = [
    "RegretResult",
    "max_regret_ratio_lp",
    "solve_regret_lp",
    "worst_direction_lp",
]


@dataclass(frozen=True)
class RegretResult:
    """Outcome of an exact max-regret computation.

    Attributes:
        value: the maximum regret ratio ``mrr(S, D)`` in ``[0, 1]``.
        direction: a unit direction attaining it (l2-normalized), or None
            when ``S`` already covers every direction perfectly.
        witness: index (into ``D``) of the best-response point at that
            direction.
    """

    value: float
    direction: np.ndarray | None
    witness: int | None


def solve_regret_lp(q: np.ndarray, S: np.ndarray) -> tuple[float, np.ndarray | None]:
    """Solve LP(q); returns (x*, u*) or (-inf, None) if infeasible.

    ``x*`` is the largest regret any direction normalized to ``<u, q> = 1``
    can inflict on ``S``; ``u*`` is that direction (unnormalized).
    """
    d = q.shape[0]
    c = np.zeros(d + 1)
    c[-1] = -1.0  # maximize x
    A_ub = np.hstack([S, np.ones((S.shape[0], 1))])
    b_ub = np.ones(S.shape[0])
    A_eq = np.concatenate([q, [0.0]])[None, :]
    b_eq = np.ones(1)
    bounds = [(0.0, None)] * d + [(None, None)]
    result = linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return float("-inf"), None
    return float(-result.fun), result.x[:d]


def max_regret_ratio_lp(S, D, *, candidates=None) -> RegretResult:
    """Exact ``mrr(S, D)`` over all nonnegative linear utilities.

    Args:
        S: the selected subset's points, shape ``(k, d)``.
        D: the database points, shape ``(n, d)``.
        candidates: optional index array into ``D`` restricting the
            best-response candidates (must contain every possible utility
            maximizer; defaults to :func:`maxima_candidates`).
    """
    D_arr = as_points(D, name="D")
    S_arr = np.asarray(S, dtype=np.float64)
    if S_arr.ndim != 2 or S_arr.shape[1] != D_arr.shape[1]:
        raise ValueError("S must be a 2-D array with the same dimension as D")
    if S_arr.shape[0] == 0:
        return RegretResult(value=1.0, direction=None, witness=None)
    if candidates is None:
        candidates = maxima_candidates(D_arr)
    candidates = np.asarray(candidates, dtype=np.int64)
    best_value = 0.0
    best_direction: np.ndarray | None = None
    best_witness: int | None = None
    for q_idx in candidates:
        value, direction = solve_regret_lp(D_arr[q_idx], S_arr)
        if value > best_value:
            best_value = value
            best_direction = direction
            best_witness = int(q_idx)
    if best_direction is not None:
        norm = np.linalg.norm(best_direction)
        if norm > 0:
            best_direction = best_direction / norm
    return RegretResult(
        value=float(min(max(best_value, 0.0), 1.0)),
        direction=best_direction,
        witness=best_witness,
    )


def worst_direction_lp(S, D, *, candidates=None) -> tuple[np.ndarray, float]:
    """Direction with the lowest happiness ratio for ``S`` and that ratio.

    Falls back to the all-ones direction when ``S`` is optimal everywhere
    (mrr = 0), so callers always receive a usable direction.
    """
    result = max_regret_ratio_lp(S, D, candidates=candidates)
    if result.direction is None:
        D_arr = as_points(D, name="D")
        direction = np.ones(D_arr.shape[1]) / np.sqrt(D_arr.shape[1])
        return direction, 1.0 - result.value
    return result.direction, 1.0 - result.value
