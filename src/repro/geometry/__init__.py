"""Geometric substrate: dominance, envelopes, delta-nets, hulls, LPs."""

from .deltanet import (
    coverage_angle,
    delta_net,
    delta_net_size,
    grid_directions_2d,
    net_parameter_for_mhr_error,
    sample_directions,
)
from .dominance import (
    dominated_chunk_mask,
    dominates,
    grouped_skyline_indices,
    is_skyline_point,
    skyline_indices,
    skyline_mask,
)
from .envelope import Envelope, tau_interval, tau_intervals, upper_envelope
from .hull import maxima_candidates
from .lp import RegretResult, max_regret_ratio_lp, worst_direction_lp

__all__ = [
    "Envelope",
    "RegretResult",
    "coverage_angle",
    "delta_net",
    "delta_net_size",
    "dominated_chunk_mask",
    "dominates",
    "grid_directions_2d",
    "grouped_skyline_indices",
    "is_skyline_point",
    "maxima_candidates",
    "max_regret_ratio_lp",
    "net_parameter_for_mhr_error",
    "sample_directions",
    "skyline_indices",
    "skyline_mask",
    "tau_interval",
    "tau_intervals",
    "upper_envelope",
    "worst_direction_lp",
]
