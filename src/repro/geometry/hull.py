"""Convex-hull helpers for exact happiness-ratio computation.

The maximizer of a nonnegative linear utility over a database is always a
point that is both on the skyline and a vertex of the convex hull.
Restricting the exact-MHR linear programs (``repro.geometry.lp``) to these
*maxima candidates* is therefore lossless and often shrinks the candidate
set by orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points
from .dominance import skyline_indices
from .envelope import upper_envelope

__all__ = ["maxima_candidates"]

# Above this many points, qhull in high dimension tends to be slower than
# just running the LPs on the skyline, so we skip it.
_HULL_SIZE_LIMIT = 200_000
# qhull's cost explodes combinatorially with dimension; beyond this the
# skyline is the better candidate set.
_HULL_DIM_LIMIT = 6


def maxima_candidates(points) -> np.ndarray:
    """Indices of points that can maximize some ``u >= 0`` utility.

    Returns a superset of the true maxima set (never misses a maximizer):

    * ``d = 1``: the max points.
    * ``d = 2``: supporting points of the upper score-line envelope, which
      are exactly the maximizers over all ``u = (lam, 1 - lam)``.
    * ``d >= 3``: skyline points that are convex-hull vertices (via scipy's
      qhull); falls back to the full skyline if qhull is unavailable or
      degenerate (e.g. coplanar data).
    """
    arr = as_points(points)
    n, d = arr.shape
    if d == 1:
        return np.nonzero(arr[:, 0] == arr[:, 0].max())[0]
    sky = skyline_indices(arr)
    if d == 2:
        env = upper_envelope(arr)
        return np.unique(env.supporting_points())
    if n * d > _HULL_SIZE_LIMIT or d > _HULL_DIM_LIMIT or sky.size <= d + 1:
        return sky
    try:
        from scipy.spatial import ConvexHull

        hull = ConvexHull(arr[sky], qhull_options="QJ")
        return np.sort(sky[np.unique(hull.vertices)])
    except Exception:
        # Degenerate geometry (flat data) — the skyline is always safe.
        return sky
