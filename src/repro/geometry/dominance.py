"""Pareto dominance and skyline computation.

A point ``p`` dominates ``q`` iff ``p >= q`` coordinate-wise with at least
one strict inequality (larger is better).  The skyline (Pareto front) is the
set of non-dominated points.  The paper precomputes skylines as algorithm
input — per *group*, because fairness constraints can force selecting points
that are dominated globally but not within their group (Table 2 reports the
sum of per-group skyline sizes).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points

__all__ = [
    "dominates",
    "dominated_chunk_mask",
    "grouped_skyline_indices",
    "skyline_mask",
    "skyline_indices",
    "is_skyline_point",
]


def dominates(p, q, *, strict_all: bool = False) -> bool:
    """Return True iff point ``p`` dominates point ``q``.

    Args:
        p, q: 1-D coordinate arrays of equal length.
        strict_all: if True require ``p > q`` in every coordinate (strong
            dominance) instead of the usual weak-plus-one-strict definition.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape or p.ndim != 1:
        raise ValueError("p and q must be 1-D arrays of equal length")
    if strict_all:
        return bool((p > q).all())
    return bool((p >= q).all() and (p > q).any())


def _skyline_mask_2d(arr: np.ndarray) -> np.ndarray:
    """O(n log n) skyline for d = 2: sweep by descending x, track max y.

    A point is dominated iff some point with x' >= x has y' >= y (and is not
    an exact duplicate counted as non-dominating).  Sorting by (-x, -y) and
    keeping the running maximum of y over *strictly larger* x handles ties:
    among equal-x points, only those matching the maximal y survive, unless
    an earlier strictly-larger-x point already reaches that y.
    """
    n = arr.shape[0]
    order = np.lexsort((-arr[:, 1], -arr[:, 0]))
    mask = np.zeros(n, dtype=bool)
    best_y = -np.inf  # max y among points with strictly larger x
    i = 0
    while i < n:
        # Block of points sharing the same x.
        j = i
        x = arr[order[i], 0]
        block_best = -np.inf
        while j < n and arr[order[j], 0] == x:
            block_best = max(block_best, arr[order[j], 1])
            j += 1
        for t in range(i, j):
            y = arr[order[t], 1]
            # Dominated by a strictly-larger-x point reaching >= y, or by a
            # same-x point with strictly larger y.
            if y <= best_y or y < block_best:
                continue
            mask[order[t]] = True
        best_y = max(best_y, block_best)
        i = j
    return mask


def skyline_mask(points) -> np.ndarray:
    """Boolean mask of skyline membership.

    Uses an O(n log n) sweep in 2-D and the SFS (sort-filter-skyline)
    algorithm otherwise: scan points in descending coordinate-sum order —
    a dominator always has a sum >= its victim's — testing each candidate
    against the skyline found so far with one vectorized comparison.
    Duplicate points are all kept (a copy does not dominate its twin).
    """
    arr = as_points(points)
    n, d = arr.shape
    if d == 1:
        return arr[:, 0] == arr[:, 0].max()
    if d == 2:
        return _skyline_mask_2d(arr)
    order = np.argsort(-arr.sum(axis=1), kind="stable")
    mask = np.zeros(n, dtype=bool)
    buffer = np.empty_like(arr)  # filled prefix holds the current skyline
    count = 0
    for idx in order:
        candidate = arr[idx]
        if count:
            sky = buffer[:count]
            geq = (sky >= candidate).all(axis=1)
            if geq.any() and (sky[geq] > candidate).any():
                continue
        mask[idx] = True
        buffer[count] = candidate
        count += 1
    return mask


def skyline_indices(points) -> np.ndarray:
    """Indices of skyline points, in original order."""
    return np.nonzero(skyline_mask(points))[0]


def grouped_skyline_indices(points, labels, num_groups: int) -> np.ndarray:
    """Sorted union of per-group skyline indices (the paper's solver input).

    Groups absent from ``labels`` are skipped, so the function also works
    on row *shards* of a partitioned dataset — the property the sharded
    parallel builder relies on: the per-group skyline of a union is the
    per-group skyline of the union of per-shard per-group skylines.
    """
    arr = as_points(points)
    labs = np.asarray(labels, dtype=np.int64)
    keep: list[np.ndarray] = []
    for c in range(int(num_groups)):
        rows = np.nonzero(labs == c)[0]
        if rows.size:
            keep.append(rows[skyline_indices(arr[rows])])
    if not keep:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(keep))


# Tile area bound (prefix rows x chunk rows) for the blocked dominance
# filter: per-dimension accumulation keeps every temporary 2-D, so a tile
# costs a handful of tile-sized boolean arrays — ~1 MB at this setting.
_MERGE_TILE_CELLS = 1 << 18


def dominated_chunk_mask(
    sorted_points, start: int, stop: int, prefix_lengths
) -> np.ndarray:
    """Dominance filter for rows ``[start, stop)`` of a sum-sorted matrix.

    ``sorted_points`` must be ordered by non-increasing coordinate sum: a
    componentwise dominator always has a coordinate sum >= its victim's
    (monotonicity holds in floating point too, since IEEE addition is
    monotone), so row ``i`` only needs testing against the leading
    ``prefix_lengths[i - start]`` rows — computed by the caller with a
    ``searchsorted`` over the sorted sums, *ties included*.  A row never
    dominates itself (or an exact duplicate), so the prefix may include
    the row under test.

    The filter is fully vectorized: chunk rows x prefix rows are swept in
    bounded tiles, accumulating the ``>=``-all mask one dimension at a
    time (every temporary stays 2-D).  Under ``>=``-all, "some coordinate
    strictly greater" is exactly "not all equal", and such pairs are
    verified sparsely: on skyline-merge inputs almost no pair passes the
    ``>=``-all screen, so the strictness check touches a handful of rows
    instead of paying a second d-pass accumulation.  The result
    reproduces the definitional ``(prefix >= p).all() and
    (prefix[geq] > p).any()`` test bit for bit — including the duplicate
    rule (a copy never dominates its twin).

    Returns a boolean mask over the chunk, True where the row is
    dominated.  Disjoint chunks partition the full filter, which is what
    makes skyline *merging* parallelizable: unlike the sequential SFS
    scan (whose pruning prefix is the skyline found *so far*), every
    chunk's work depends only on the immutable sorted input.
    """
    arr = as_points(sorted_points)
    lengths = np.asarray(prefix_lengths, dtype=np.int64)
    n = stop - start
    if lengths.shape[0] != n:
        raise ValueError("prefix_lengths must cover exactly the chunk rows")
    out = np.zeros(n, dtype=bool)
    if n == 0:
        return out
    d = arr.shape[1]
    max_prefix = int(lengths.max())
    row_tile = int(max(1, min(n, _MERGE_TILE_CELLS // max(max_prefix, 1))))
    for a in range(0, n, row_tile):
        b = min(a + row_tile, n)
        rows = arr[start + a : start + b]  # (B, d)
        lens = lengths[a:b]
        limit = int(lens.max())  # lengths are nondecreasing with the sort
        undecided = out[a:b]
        prefix_tile = max(1, _MERGE_TILE_CELLS // (b - a))
        for p0 in range(0, limit, prefix_tile):
            p1 = min(p0 + prefix_tile, limit)
            prefix = arr[p0:p1]  # (M, d)
            ge_all = np.ones((p1 - p0, b - a), dtype=bool)
            for di in range(d):
                ge_all &= prefix[:, di, None] >= rows[None, :, di]
            # A prefix row counts only below the chunk row's own bound.
            ge_all &= np.arange(p0, p1)[:, None] < lens[None, :]
            if not ge_all.any():
                continue
            pi, ri = np.nonzero(ge_all)
            strict = (prefix[pi] != rows[ri]).any(axis=1)
            undecided[ri[strict]] = True
            if undecided.all():
                break
        out[a:b] = undecided
    return out


def is_skyline_point(points, index: int) -> bool:
    """Return True iff ``points[index]`` is on the skyline of ``points``."""
    arr = as_points(points)
    if not 0 <= index < arr.shape[0]:
        raise IndexError(f"index {index} out of range")
    p = arr[index]
    others = np.delete(arr, index, axis=0)
    if others.size == 0:
        return True
    geq = (others >= p).all(axis=1)
    strict = (others > p).any(axis=1)
    return not bool((geq & strict).any())
