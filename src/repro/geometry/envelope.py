"""Two-dimensional score-line envelopes (paper Section 3.1).

For ``d = 2`` every nonnegative linear utility, rescaled to unit l1-norm,
is ``u = (lam, 1 - lam)`` with ``lam in [0, 1]``.  A point ``p = (x, y)``
then scores ``f_lam(p) = y + (x - y) * lam`` — a line over ``[0, 1]``.  The
*upper envelope* ``env(lam) = max_p f_lam(p)`` is the best achievable score;
it is convex piecewise-linear (a max of lines).

Key consequence used by IntCov: for a threshold ``tau``, the region where a
point's line sits on or above the ``tau``-envelope,

    I_tau(p) = { lam : f_lam(p) >= tau * env(lam) },

is a single (possibly empty) closed interval, because a linear function
minus a convex function is concave.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_points, check_dim

__all__ = [
    "Envelope",
    "upper_envelope",
    "tau_interval",
    "tau_intervals",
    "tau_intervals_bulk",
]

_EPS = 1e-12


@dataclass(frozen=True)
class Envelope:
    """Upper envelope of the score lines of a 2-D point set over ``[0, 1]``.

    Attributes:
        breaks: increasing array ``[0, b_1, ..., 1]`` of piece boundaries.
        lines: ``(num_pieces, 2)`` array of ``(slope, intercept)`` per piece.
        point_index: index (into the defining point set) of the point whose
            line realizes each piece.
    """

    breaks: np.ndarray
    lines: np.ndarray
    point_index: np.ndarray

    @property
    def num_pieces(self) -> int:
        return self.lines.shape[0]

    def value(self, lam) -> np.ndarray:
        """Envelope value at ``lam`` (scalar or array), vectorized."""
        lam_arr = np.atleast_1d(np.asarray(lam, dtype=np.float64))
        if ((lam_arr < -1e-9) | (lam_arr > 1 + 1e-9)).any():
            raise ValueError("lam must lie in [0, 1]")
        lam_arr = np.clip(lam_arr, 0.0, 1.0)
        piece = np.clip(
            np.searchsorted(self.breaks, lam_arr, side="right") - 1,
            0,
            self.num_pieces - 1,
        )
        values = self.lines[piece, 0] * lam_arr + self.lines[piece, 1]
        return values if np.ndim(lam) else float(values[0])

    def vertices(self) -> np.ndarray:
        """All piece boundaries, including 0 and 1."""
        return self.breaks.copy()

    def supporting_points(self) -> np.ndarray:
        """Indices of points that appear on the envelope (deduplicated)."""
        return np.unique(self.point_index)


def _lines_of(points: np.ndarray) -> np.ndarray:
    """(slope, intercept) of each point's score line: f(lam)=y+(x-y)lam."""
    slope = points[:, 0] - points[:, 1]
    intercept = points[:, 1]
    return np.column_stack([slope, intercept])


def upper_envelope(points) -> Envelope:
    """Compute the upper envelope of the score lines of ``points``.

    Classic convex-hull-trick construction: sort lines by slope (keeping
    only the highest intercept per slope), then maintain a stack where the
    intersections of consecutive lines are strictly increasing.  Runs in
    ``O(n log n)``.
    """
    arr = as_points(points)
    check_dim(arr, 2)
    lines = _lines_of(arr)
    order = np.lexsort((-lines[:, 1], lines[:, 0]))
    # Deduplicate (near-)equal slopes, keeping the highest intercept.  The
    # comparison must be by value, not sort position: slopes that are only
    # a few ulps apart sort by rounding noise.
    kept: list[int] = []
    for idx in order:
        if kept and abs(lines[kept[-1], 0] - lines[idx, 0]) <= _EPS:
            if lines[idx, 1] > lines[kept[-1], 1]:
                kept[-1] = int(idx)
            continue
        kept.append(int(idx))

    def crossing(i: int, j: int) -> float:
        """lam where lines i and j intersect (slopes differ)."""
        return (lines[j, 1] - lines[i, 1]) / (lines[i, 0] - lines[j, 0])

    # Maintain the hull stack: with slopes strictly increasing, the line
    # on top becomes useless once the new line overtakes the second-from-top
    # no later than the top does.
    stack: list[int] = []
    for idx in kept:
        while len(stack) >= 2 and crossing(stack[-2], idx) <= crossing(
            stack[-2], stack[-1]
        ) + _EPS:
            stack.pop()
        stack.append(idx)
    cross = [crossing(stack[t], stack[t + 1]) for t in range(len(stack) - 1)]

    # Clip the piecewise structure to [0, 1].
    boundaries = [-np.inf] + cross + [np.inf]
    pieces: list[tuple[float, float, int]] = []  # (start, end, line index)
    for t, line_idx in enumerate(stack):
        start = max(0.0, boundaries[t])
        end = min(1.0, boundaries[t + 1])
        if end > start + _EPS or (not pieces and end >= start):
            pieces.append((start, end, line_idx))
    # Guarantee coverage of [0, 1] even under numerical degeneracy.
    if not pieces:
        best = max(kept, key=lambda i: lines[i, 1])
        pieces = [(0.0, 1.0, best)]
    pieces[0] = (0.0, pieces[0][1], pieces[0][2])
    pieces[-1] = (pieces[-1][0], 1.0, pieces[-1][2])

    breaks = np.array([p[0] for p in pieces] + [1.0])
    piece_lines = np.array([[lines[p[2], 0], lines[p[2], 1]] for p in pieces])
    point_index = np.array([p[2] for p in pieces], dtype=np.int64)
    return Envelope(breaks=breaks, lines=piece_lines, point_index=point_index)


def tau_interval(point, envelope: Envelope, tau: float) -> tuple[float, float] | None:
    """The interval ``I_tau(p)`` where ``p``'s line clears ``tau * env``.

    Returns ``(lo, hi)`` with ``0 <= lo <= hi <= 1`` or ``None`` when the
    point never reaches a happiness ratio of ``tau``.
    """
    p = np.asarray(point, dtype=np.float64)
    if p.shape != (2,):
        raise ValueError("point must be a 2-vector")
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must lie in [0, 1], got {tau}")
    slope = p[0] - p[1]
    intercept = p[1]
    lo: float | None = None
    hi: float | None = None
    for t in range(envelope.num_pieces):
        a, b = envelope.breaks[t], envelope.breaks[t + 1]
        if b < a:
            continue
        # f_p(lam) - tau * env_piece(lam) = alpha * lam + beta
        alpha = slope - tau * envelope.lines[t, 0]
        beta = intercept - tau * envelope.lines[t, 1]
        if abs(alpha) <= _EPS:
            if beta >= -_EPS:
                seg = (a, b)
            else:
                seg = None
        elif alpha > 0:
            start = max(a, -beta / alpha)
            seg = (start, b) if start <= b + _EPS else None
        else:
            end = min(b, -beta / alpha)
            seg = (a, end) if end >= a - _EPS else None
        if seg is None:
            continue
        s0, s1 = max(0.0, seg[0]), min(1.0, seg[1])
        if s1 < s0 - _EPS:
            continue
        if lo is None:
            lo, hi = s0, s1
        else:
            # Concavity: feasible pieces are contiguous.
            hi = max(hi, s1)
    if lo is None:
        return None
    return (float(lo), float(hi))


def tau_intervals_bulk(
    points, envelope: Envelope, tau: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`tau_interval` over a whole point set.

    Returns ``(lo, hi, feasible)`` arrays of length ``n``; rows where
    ``feasible`` is False carry no interval.  Replicates the scalar
    routine's arithmetic exactly — same elementwise IEEE operations per
    (point, piece) — so the endpoints are bit-identical to calling
    :func:`tau_interval` per point, at a fraction of the cost (IntCov
    evaluates intervals for every point at every binary-search step).
    """
    arr = as_points(points)
    check_dim(arr, 2)
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must lie in [0, 1], got {tau}")
    slope = arr[:, 0] - arr[:, 1]
    intercept = arr[:, 1]
    a = envelope.breaks[:-1][None, :]
    b = envelope.breaks[1:][None, :]
    # f_p(lam) - tau * env_piece(lam) = alpha * lam + beta, per (point, piece)
    alpha = slope[:, None] - tau * envelope.lines[:, 0][None, :]
    beta = intercept[:, None] - tau * envelope.lines[:, 1][None, :]
    near_zero = np.abs(alpha) <= _EPS
    with np.errstate(divide="ignore", invalid="ignore"):
        crossing = -beta / alpha
    rising = alpha > 0
    start = np.where(rising & ~near_zero, np.maximum(a, crossing), a)
    end = np.where(~rising & ~near_zero, np.minimum(b, crossing), b)
    feasible = np.where(
        near_zero,
        beta >= -_EPS,
        np.where(rising, start <= b + _EPS, end >= a - _EPS),
    )
    feasible &= (b >= a)
    s0 = np.maximum(0.0, start)
    s1 = np.minimum(1.0, end)
    feasible &= ~(s1 < s0 - _EPS)
    ok = feasible.any(axis=1)
    first = np.argmax(feasible, axis=1)
    lo = s0[np.arange(arr.shape[0]), first]
    hi = np.where(feasible, s1, -np.inf).max(axis=1)
    return lo, hi, ok


def tau_intervals(points, envelope: Envelope, tau: float) -> list:
    """``I_tau(p)`` for every point (list of ``(lo, hi)`` or ``None``)."""
    arr = as_points(points)
    check_dim(arr, 2)
    lo, hi, ok = tau_intervals_bulk(arr, envelope, tau)
    return [
        (float(lo[i]), float(hi[i])) if ok[i] else None
        for i in range(arr.shape[0])
    ]
