"""Fair k-HMS: happiness measured against the ell-th best tuple.

The kRMS/kHMS relaxation (Chester et al., VLDB 2014; Luenam et al. 2021)
replaces the best database score in the happiness denominator with the
``ell``-th best:

    hr_ell(u, S, D) = max_{p in S} <u, p> / ell-th-max_{q in D} <u, q>

so a subset is "happy" if it competes with the ell-th best alternative
rather than the single champion.  ``ell = 1`` is the paper's FairHMS.  The
BiGreedy machinery carries over unchanged: only the per-direction
denominators of the ratio matrix change, and ratios above 1 (beating the
ell-th best) are capped at 1 so the objective stays in ``[0, 1]``.

This module is an extension beyond the reproduced paper (its related-work
section flags kRMS as the natural next variant); it ships with the same
guarantees machinery because the truncated objective is still a capped
monotone submodular function.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..core.bigreedy import bigreedy, default_net_size
from ..core.solution import Solution
from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..geometry.deltanet import sample_directions
from ..hms.ratios import scores
from ..hms.truncated import TruncatedEngine

__all__ = ["kth_best_scores", "khms_ratios", "KHMSEngine", "bigreedy_khms", "mhr_khms_on_net"]


def kth_best_scores(points, directions, ell: int) -> np.ndarray:
    """Per-direction ``ell``-th largest utility over ``points``.

    ``ell`` is clipped to the number of points (the minimum score) so small
    databases degrade gracefully.
    """
    ell = check_positive_int(ell, name="ell")
    utility = scores(points, directions)
    n = utility.shape[1]
    ell = min(ell, n)
    if ell == 1:
        return utility.max(axis=1)
    # partition is O(n) per direction; index n - ell is the ell-th largest.
    return np.partition(utility, n - ell, axis=1)[:, n - ell]


def khms_ratios(points, directions, ell: int, *, database=None) -> np.ndarray:
    """Ratio matrix against the ``ell``-th best, capped at 1."""
    base = points if database is None else database
    denominators = kth_best_scores(base, directions, ell)
    if (denominators <= 0).any():
        raise ValueError(
            "every direction must have a positive ell-th best score; "
            "increase data quality or reduce ell"
        )
    ratios = scores(points, directions) / denominators[:, None]
    return np.minimum(ratios, 1.0)


class KHMSEngine(TruncatedEngine):
    """TruncatedEngine over the ell-th-best happiness ratios."""

    def __init__(self, points, net, ell: int, *, database=None, dtype=np.float32):
        # Initialize the parent with standard ratios, then swap the matrix.
        super().__init__(points, net, database=database, dtype=dtype)
        self.ell = check_positive_int(ell, name="ell")
        self.ratios = khms_ratios(
            points, np.asarray(net, dtype=np.float64), ell, database=database
        ).astype(dtype)
        self._capped_tau = None
        self._capped = None
        self._margins_buf = None


def mhr_khms_on_net(S, D, directions, ell: int) -> float:
    """Minimum ell-th-best happiness ratio of ``S`` over a direction net."""
    denominators = kth_best_scores(D, directions, ell)
    numerators = scores(S, directions).max(axis=1)
    return float(np.minimum(numerators / denominators, 1.0).min())


def bigreedy_khms(
    dataset: Dataset,
    constraint: FairnessConstraint,
    ell: int,
    *,
    epsilon: float = 0.02,
    net_size: int | None = None,
    seed=None,
    **kwargs,
) -> Solution:
    """Fair k-HMS via BiGreedy on the ell-th-best objective.

    Args:
        dataset: per-group skyline input (note: for ``ell > 1`` the
            *database* denominators should come from the full data — pass
            the skyline of the full data as ``dataset`` and accept the mild
            approximation, or construct a :class:`KHMSEngine` with
            ``database=`` explicitly and pass it through ``engine=``).
        constraint: fairness bounds with solution size ``k``.
        ell: happiness is measured against the ell-th best tuple.
    """
    m = net_size or default_net_size(constraint.k, dataset.dim)
    net = sample_directions(m, dataset.dim, seed)
    engine = KHMSEngine(dataset.points, net, ell)
    solution = bigreedy(
        dataset,
        constraint,
        epsilon=epsilon,
        engine=engine,
        algorithm_name=f"BiGreedy-{ell}HMS",
        **kwargs,
    )
    solution.stats["ell"] = int(ell)
    return solution
