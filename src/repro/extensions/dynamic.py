"""Dynamic FairHMS: maintain a fair representative set under updates.

The paper's related work points to fully-dynamic k-regret structures
(Wang et al., ICDE 2021; Zheng et al., TKDE 2022) as the way to keep an
HMS fresh while the database changes.  This extension maintains, per
group, the set of alive tuples and an incrementally updated group skyline:

* insert: a tuple enters its group's skyline iff no current skyline member
  dominates it; it then evicts the members it dominates (sound because the
  group skyline always dominates every non-skyline member transitively);
* delete: removing a non-skyline member is free; removing a skyline member
  marks the group dirty, and its skyline is rebuilt from the alive tuples
  on the next query (deletions can resurrect previously dominated tuples).

``solution()`` re-solves on the current per-group skyline with the chosen
core algorithm, caching the result until the data or the constraint
changes.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_points
from ..core.solve import solve_fairhms
from ..core.solution import Solution
from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..geometry.dominance import skyline_indices

__all__ = ["DynamicFairHMS"]


class _Group:
    """Alive tuples and the maintained skyline of one group.

    The skyline member coordinates are additionally cached as one
    ``(s, d)`` matrix so each insert is a single vectorized dominance
    test against all members instead of a Python loop — the difference
    between O(n * s) scalar work and O(n * s) numpy work when bulk
    loading a live index.
    """

    __slots__ = ("alive", "skyline", "dirty", "_sky_keys", "_sky_pts")

    def __init__(self) -> None:
        self.alive: dict[int, np.ndarray] = {}
        self.skyline: set[int] = set()
        self.dirty = False
        self._sky_keys: list[int] = []
        self._sky_pts: np.ndarray | None = None

    def _sky_matrix(self) -> np.ndarray:
        if self._sky_pts is None:
            self._sky_keys = list(self.skyline)
            self._sky_pts = (
                np.asarray([self.alive[k] for k in self._sky_keys])
                if self._sky_keys
                else np.empty((0, 0))
            )
        return self._sky_pts

    def insert(self, key: int, point: np.ndarray) -> None:
        self.alive[key] = point
        if self.dirty:
            return  # rebuilt wholesale on next query anyway
        pts = self._sky_matrix()
        if pts.shape[0]:
            ge = pts >= point
            gt = pts > point
            if (ge.all(axis=1) & gt.any(axis=1)).any():
                return  # dominated on arrival: never on the skyline
            evict = (point >= pts).all(axis=1) & (point > pts).any(axis=1)
            if evict.any():
                keep = ~evict
                self.skyline.difference_update(
                    k for k, out in zip(self._sky_keys, evict) if out
                )
                self._sky_keys = [
                    k for k, ok in zip(self._sky_keys, keep) if ok
                ]
                pts = pts[keep]
        self.skyline.add(key)
        self._sky_keys.append(key)
        self._sky_pts = (
            point[None, :] if pts.shape[0] == 0 else np.vstack([pts, point])
        )

    def delete(self, key: int) -> None:
        if key not in self.alive:
            raise KeyError(f"tuple {key} is not alive")
        del self.alive[key]
        if key in self.skyline:
            self.skyline.discard(key)
            self.dirty = True  # dominated tuples may resurface
            self._sky_pts = None

    def current_skyline(self) -> list[int]:
        if self.dirty:
            keys = list(self.alive)
            if keys:
                pts = np.asarray([self.alive[k] for k in keys])
                self.skyline = {keys[i] for i in skyline_indices(pts)}
            else:
                self.skyline = set()
            self.dirty = False
            self._sky_pts = None
        return sorted(self.skyline)


class DynamicFairHMS:
    """Fair representative set maintenance under inserts and deletes.

    Args:
        dim: attribute count of the tuples.
        num_groups: number of groups ``C``.
        algorithm: core solver used on queries (``"auto"`` by default).
        seed: forwarded to stochastic solvers.

    Tuples are identified by the integer keys the caller supplies (e.g.
    primary keys); points must already be normalized consistently — the
    maintained skylines are scale-sensitive like everything else here.
    """

    def __init__(self, dim: int, num_groups: int, *, algorithm: str = "auto", seed=7):
        if dim < 1 or num_groups < 1:
            raise ValueError("dim and num_groups must be positive")
        self.dim = dim
        self.num_groups = num_groups
        self.algorithm = algorithm
        self.seed = seed
        self._groups = [_Group() for _ in range(num_groups)]
        self._keys: dict[int, int] = {}  # key -> group
        self._version = 0
        self._cache: tuple[int, int, Solution] | None = None

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def version(self) -> int:
        """Monotone update counter; bumped by every insert and delete.

        The live serving layer compares this against the version it last
        served to decide whether its epoch must advance.
        """
        return self._version

    def advance_version(self, version: int) -> None:
        """Fast-forward the update counter (snapshot restore).

        A reloaded store resumes at the version it was persisted at, so
        version numbers handed to callers (e.g. gateway write futures)
        stay monotone across a spill/reload cycle.  Rewinding is refused
        — the counter orders updates.
        """
        if int(version) < self._version:
            raise ValueError(
                f"cannot rewind version from {self._version} to {int(version)}"
            )
        self._version = int(version)

    def __contains__(self, key: int) -> bool:
        return key in self._keys

    def group_of(self, key: int) -> int:
        """Group of an alive tuple."""
        group = self._keys.get(key)
        if group is None:
            raise KeyError(f"tuple {key} is not alive")
        return group

    def insert(self, key: int, point, group: int) -> None:
        """Insert tuple ``key`` with coordinates ``point`` into ``group``."""
        if key in self._keys:
            raise KeyError(f"tuple {key} already present")
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        arr = as_points(np.asarray(point, dtype=np.float64)[None, :])[0]
        if arr.shape[0] != self.dim:
            raise ValueError(f"point must have {self.dim} attributes")
        self._groups[group].insert(key, arr)
        self._keys[key] = group
        self._version += 1

    def bulk_insert(self, keys, points, groups) -> None:
        """Insert many tuples with one validation pass (bulk loading).

        Equivalent to calling :meth:`insert` per tuple but validates the
        point matrix once; the maintained skylines end up identical.
        """
        pts = as_points(np.asarray(points, dtype=np.float64))
        keys = np.asarray(keys, dtype=np.int64)
        groups = np.asarray(groups, dtype=np.int64)
        if pts.shape[0] != keys.shape[0] or groups.shape[0] != keys.shape[0]:
            raise ValueError("keys, points, and groups must align")
        if pts.shape[1] != self.dim:
            raise ValueError(f"points must have {self.dim} attributes")
        if groups.size and (groups.min() < 0 or groups.max() >= self.num_groups):
            raise ValueError("group out of range")
        # Validate keys upfront so a duplicate leaves the store untouched.
        seen: set[int] = set()
        for key in keys.tolist():
            if key in self._keys or key in seen:
                raise KeyError(f"tuple {key} already present")
            seen.add(key)
        for key, point, group in zip(keys.tolist(), pts, groups.tolist()):
            self._groups[group].insert(key, point)
            self._keys[key] = group
        self._version += keys.shape[0]

    def delete(self, key: int) -> None:
        """Delete tuple ``key``."""
        group = self._keys.pop(key, None)
        if group is None:
            raise KeyError(f"tuple {key} is not alive")
        self._groups[group].delete(key)
        self._version += 1

    def group_sizes(self) -> np.ndarray:
        return np.array(
            [len(g.alive) for g in self._groups], dtype=np.int64
        )

    def items(self):
        """Yield ``(key, point, group)`` per alive tuple, (group, key) order.

        The same deterministic ordering :meth:`alive_dataset` rows use,
        with the *original* group ids (no compaction) — what snapshot
        persistence needs to reconstruct an identical store elsewhere.
        """
        for group, g in enumerate(self._groups):
            for key in sorted(g.alive):
                yield key, g.alive[key], group

    def skyline_keys(self) -> list[int]:
        """Current per-group skyline, as caller keys."""
        keys: list[int] = []
        for g in self._groups:
            keys.extend(g.current_skyline())
        return sorted(keys)

    def _as_dataset(self, keys, labels, points, name: str) -> Dataset:
        """Package (group, key)-ordered rows with compact group remapping."""
        if not points:
            raise ValueError("no tuples alive")
        present = sorted(set(labels))
        remap = {c: i for i, c in enumerate(present)}
        dataset = Dataset(
            points=np.asarray(points),
            labels=np.asarray([remap[c] for c in labels], dtype=np.int64),
            name=name,
            group_attribute="dynamic",
            group_names=tuple(f"g{c}" for c in present),
            ids=np.asarray(keys, dtype=np.int64),
        )
        dataset.meta["population_group_sizes"] = [
            len(self._groups[c].alive) for c in present
        ]
        return dataset

    def skyline_dataset(self) -> Dataset:
        """The current per-group skyline as a solvable Dataset."""
        keys: list[int] = []
        labels: list[int] = []
        points: list[np.ndarray] = []
        for c, g in enumerate(self._groups):
            for key in g.current_skyline():
                keys.append(key)
                labels.append(c)
                points.append(g.alive[key])
        return self._as_dataset(keys, labels, points, "dynamic")

    def alive_dataset(self, name: str = "dynamic-alive") -> Dataset:
        """Every alive tuple as a Dataset, rows ordered by (group, key).

        The ordering matters for reproducibility: the per-group skyline of
        this snapshot (``Dataset.skyline(per_group=True)``) lists the same
        rows in the same order as :meth:`skyline_dataset`, so a batch
        rebuild and the incrementally maintained skyline are bit-identical
        solver inputs.
        """
        keys: list[int] = []
        labels: list[int] = []
        points: list[np.ndarray] = []
        for c, g in enumerate(self._groups):
            for key in sorted(g.alive):
                keys.append(key)
                labels.append(c)
                points.append(g.alive[key])
        return self._as_dataset(keys, labels, points, name)

    def solution(self, constraint: FairnessConstraint) -> Solution:
        """(Re-)solve on the current state; cached until the data changes."""
        cache_key = (self._version, id(constraint))
        if self._cache is not None and self._cache[:2] == cache_key:
            return self._cache[2]
        dataset = self.skyline_dataset()
        kwargs = {} if self.algorithm == "IntCov" else {"seed": self.seed}
        if self.algorithm == "auto" and dataset.dim == 2:
            kwargs = {}
        solution = solve_fairhms(
            dataset, constraint, algorithm=self.algorithm, **kwargs
        )
        self._cache = (self._version, id(constraint), solution)
        return solution
