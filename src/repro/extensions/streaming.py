"""Streaming FairHMS: bounded-memory selection over a tuple stream.

The fairness matroid the paper builds on comes from *streaming* submodular
maximization (El Halabi et al., NeurIPS 2020), which makes a streaming
FairHMS the natural extension.  The difficulty unique to HMS is that the
objective's denominators — the best score per utility direction — are
themselves stream-dependent, so marginal gains computed early are stale.

This implementation therefore streams a *sieve* rather than a solution:

* a fixed direction net is sampled upfront;
* per direction, the running top score over the stream so far is kept;
* an arriving tuple enters its group's bounded buffer if its score is
  within ``(1 - slack)`` of the running top for some direction (it is a
  near-champion somewhere); buffer members that stop satisfying this
  criterion under the updated tops are evicted lazily when space is
  needed, worst-scoring first;
* ``finalize(constraint)`` runs BiGreedy over the buffered tuples with
  denominators from the *final* running tops — exactly the offline
  computation, restricted to the survivors.

Every tuple that would achieve a happiness ratio of ``tau >= 1 - slack``
for some net direction at finalize time is in the buffer (its score beats
``(1 - slack) top_j`` at arrival and tops only grow, so it also beat every
intermediate criterion), hence the sieve is lossless for solutions whose
per-direction champions are near-champions — the regime every HMS
instance of the paper lives in.  Memory is ``O(C * buffer_per_group)``
tuples plus the net.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..core.bigreedy import bigreedy, default_net_size
from ..core.solution import Solution
from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..geometry.deltanet import sample_directions
from ..hms.truncated import TruncatedEngine

__all__ = ["StreamingFairHMS"]


class _Buffered:
    __slots__ = ("key", "point", "scores")

    def __init__(self, key, point, scores):
        self.key = key
        self.point = point
        self.scores = scores


class StreamingFairHMS:
    """One-pass bounded-memory sieve + finalization for FairHMS.

    Args:
        dim: attribute count.
        num_groups: number of groups ``C``.
        buffer_per_group: max tuples kept per group (memory budget).
        net_size: direction-net size (defaults to ``10 * 20 * dim``, i.e.
            the paper's practical size for k up to 20).
        slack: sieve admission slack; larger keeps more marginal tuples.
        seed: net-sampling seed.
    """

    def __init__(
        self,
        dim: int,
        num_groups: int,
        *,
        buffer_per_group: int = 256,
        net_size: int | None = None,
        slack: float = 0.2,
        seed=7,
    ) -> None:
        self.dim = check_positive_int(dim, name="dim")
        self.num_groups = check_positive_int(num_groups, name="num_groups")
        self.buffer_per_group = check_positive_int(
            buffer_per_group, name="buffer_per_group"
        )
        if not 0.0 < slack < 1.0:
            raise ValueError(f"slack must lie in (0, 1), got {slack}")
        self.slack = float(slack)
        m = net_size or default_net_size(20, dim)
        self.net = sample_directions(m, dim, seed)
        self.tops = np.zeros(m)
        self._buffers: list[list[_Buffered]] = [[] for _ in range(num_groups)]
        self._seen = 0
        self._group_seen = np.zeros(num_groups, dtype=np.int64)

    # ------------------------------------------------------------------ #

    @property
    def seen(self) -> int:
        """Tuples observed so far."""
        return self._seen

    def buffered(self) -> int:
        """Tuples currently held in the sieve."""
        return sum(len(b) for b in self._buffers)

    def buffered_keys(self) -> set:
        """Keys of the tuples currently held in the sieve."""
        return {member.key for buffer in self._buffers for member in buffer}

    def buffered_items(self):
        """Yield ``(key, point, group)`` for every buffered tuple.

        Points are the arrays the sieve stores — treat them as read-only.
        Used by the live index to sync its alive set with the sieve after
        a batch of observations.
        """
        for group, buffer in enumerate(self._buffers):
            for member in buffer:
                yield member.key, member.point, group

    def observe(self, key: int, point, group: int) -> bool:
        """Feed one tuple; returns True if it entered the buffer."""
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        arr = np.asarray(point, dtype=np.float64)
        if arr.shape != (self.dim,):
            raise ValueError(f"point must have {self.dim} attributes")
        if (arr < 0).any():
            raise ValueError("points must be nonnegative")
        self._seen += 1
        self._group_seen[group] += 1
        scores = self.net @ arr
        np.maximum(self.tops, scores, out=self.tops)
        # Admission: near-champion for some direction under current tops.
        if not (scores >= (1.0 - self.slack) * self.tops - 1e-12).any():
            return False
        buffer = self._buffers[group]
        buffer.append(_Buffered(int(key), arr, scores))
        if len(buffer) > self.buffer_per_group:
            self._evict(buffer)
        return True

    def observe_many(self, keys, points, groups) -> int:
        """Feed a batch; returns how many entered the buffer."""
        points = np.asarray(points, dtype=np.float64)
        admitted = 0
        for key, point, group in zip(keys, points, groups):
            admitted += bool(self.observe(key, point, int(group)))
        return admitted

    def _evict(self, buffer: list[_Buffered]) -> None:
        """Drop members that stopped being near-champions; then worst-first."""
        threshold = (1.0 - self.slack) * self.tops
        keep = [b for b in buffer if (b.scores >= threshold - 1e-12).any()]
        if len(keep) > self.buffer_per_group:
            # Still over budget: keep the tuples with the best relative
            # standing (max score ratio against the current tops).
            standing = [float((b.scores / np.maximum(self.tops, 1e-300)).max()) for b in keep]
            order = np.argsort(standing)[::-1][: self.buffer_per_group]
            keep = [keep[int(i)] for i in sorted(order)]
        buffer[:] = keep

    # ------------------------------------------------------------------ #

    def buffer_dataset(self) -> Dataset:
        """The sieve survivors as a Dataset (ids = caller keys)."""
        keys: list[int] = []
        labels: list[int] = []
        points: list[np.ndarray] = []
        for c, buffer in enumerate(self._buffers):
            self._evict(buffer)  # apply the final tops before exporting
            for member in buffer:
                keys.append(member.key)
                labels.append(c)
                points.append(member.point)
        if not points:
            raise ValueError("nothing buffered; stream some tuples first")
        present = sorted(set(labels))
        remap = {c: i for i, c in enumerate(present)}
        dataset = Dataset(
            points=np.asarray(points),
            labels=np.asarray([remap[c] for c in labels], dtype=np.int64),
            name="stream-sieve",
            group_attribute="stream",
            group_names=tuple(f"g{c}" for c in present),
            ids=np.asarray(keys, dtype=np.int64),
        )
        dataset.meta["population_group_sizes"] = [
            int(self._group_seen[c]) for c in present
        ]
        return dataset

    def finalize(self, constraint: FairnessConstraint, **kwargs) -> Solution:
        """Run BiGreedy over the sieve with final-stream denominators.

        The happiness denominators come from the running per-direction tops
        of the *whole stream* (every observed tuple contributed to them, in
        or out of the buffer), so the returned MHR estimate is measured
        against the full stream, exactly as the offline algorithm would.
        """
        dataset = self.buffer_dataset()
        engine = TruncatedEngine(dataset.points, self.net)
        stream_top = np.maximum(self.tops, 1e-300)
        engine.ratios = np.asarray(
            (self.net @ dataset.points.T) / stream_top[:, None],
            dtype=engine.ratios.dtype,
        )
        engine._capped_tau = None  # invalidate the per-cap cache
        engine._capped = None
        solution = bigreedy(
            dataset,
            constraint,
            engine=engine,
            algorithm_name="StreamingFairHMS",
            **kwargs,
        )
        solution.stats["stream_seen"] = self._seen
        solution.stats["stream_buffered"] = dataset.n
        return solution
