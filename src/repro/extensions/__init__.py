"""Extensions beyond the reproduced paper.

Three directions the paper's related/future work points at, built on the
same substrate and tested to the same standard:

* :mod:`repro.extensions.streaming` — bounded-memory one-pass FairHMS
  (after El Halabi et al., the source of the fairness matroid);
* :mod:`repro.extensions.dynamic` — insert/delete maintenance of fair
  representative sets (after the fully-dynamic kRMS line of work);
* :mod:`repro.extensions.khms` — fairness-constrained k-HMS, happiness
  against the ell-th best tuple (after Chester et al.'s kRMS).
"""

from .dynamic import DynamicFairHMS
from .khms import (
    KHMSEngine,
    bigreedy_khms,
    khms_ratios,
    kth_best_scores,
    mhr_khms_on_net,
)
from .streaming import StreamingFairHMS

__all__ = [
    "DynamicFairHMS",
    "KHMSEngine",
    "StreamingFairHMS",
    "bigreedy_khms",
    "khms_ratios",
    "kth_best_scores",
    "mhr_khms_on_net",
]
