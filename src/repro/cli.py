"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — reproduce the paper's Example 2.2 and print the result.
* ``solve``       — run FairHMS on a named dataset with chosen parameters.
* ``table2``      — print the dataset-statistics table.
* ``experiments`` — forward to ``repro.experiments.run_all``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_demo(_args) -> int:
    from .experiments.example22 import run_example22

    print("Example 2.2 (Table 1): paper vs this reproduction\n")
    for r in run_example22():
        status = "MATCH" if r.matches else "MISMATCH"
        print(
            f"  {r.name:8s} -> {sorted(r.selected)} mhr={r.mhr:.4f} "
            f"(paper: {sorted(r.expected_selected)} {r.expected_mhr:.4f}) [{status}]"
        )
    return 0


def _cmd_solve(args) -> int:
    from .core.solve import solve_fairhms
    from .data.realworld import DATASET_GROUPS, load_dataset
    from .data.synthetic import anticorrelated_dataset
    from .fairness.constraints import FairnessConstraint

    if args.dataset == "anticor":
        data = anticorrelated_dataset(args.n or 2_000, args.d, args.groups, seed=args.seed)
    else:
        attribute = args.attribute or DATASET_GROUPS[args.dataset][0]
        data = load_dataset(args.dataset, attribute, n=args.n)
    data = data.normalized()
    sky = data.skyline(per_group=True)
    print(f"{data} -> per-group skyline of {sky.n} tuples")

    constraint = FairnessConstraint.proportional(
        args.k, sky.population_group_sizes, alpha=args.alpha
    )
    constraint = FairnessConstraint(
        lower=np.minimum(constraint.lower, sky.group_sizes),
        upper=constraint.upper,
        k=args.k,
    )
    print(f"constraint: {constraint.describe(sky.group_names)}")
    solution = solve_fairhms(
        sky,
        constraint,
        algorithm=args.algorithm,
        **({} if args.algorithm == "IntCov" else {"seed": args.seed}),
    )
    print(f"\nalgorithm: {solution.algorithm}")
    print(f"selected ids: {solution.ids.tolist()}")
    print(f"group counts: {solution.group_counts().tolist()}")
    print(f"exact MHR: {solution.mhr():.4f}   violations: {solution.violations()}")
    return 0


def _cmd_table2(args) -> int:
    from .experiments.table2 import render_table2, run_table2

    print(render_table2(run_table2(scale=args.scale)))
    return 0


def _cmd_experiments(args) -> int:
    from .experiments.run_all import run_all

    report = run_all(fast=args.fast, out=args.out)
    if not args.out:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="reproduce Example 2.2")

    solve = sub.add_parser("solve", help="solve FairHMS on a dataset")
    solve.add_argument(
        "dataset",
        choices=["Lawschs", "Adult", "Compas", "Credit", "anticor"],
    )
    solve.add_argument("--attribute", default=None, help="group attribute")
    solve.add_argument("-k", type=int, default=10, help="solution size")
    solve.add_argument("--alpha", type=float, default=0.1)
    solve.add_argument("--n", type=int, default=None, help="row-count override")
    solve.add_argument("--d", type=int, default=6, help="dimension (anticor)")
    solve.add_argument("--groups", type=int, default=3, help="groups (anticor)")
    solve.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto", "IntCov", "BiGreedy", "BiGreedy+"],
    )
    solve.add_argument("--seed", type=int, default=7)

    table2 = sub.add_parser("table2", help="print dataset statistics")
    table2.add_argument("--scale", type=float, default=0.25)

    experiments = sub.add_parser("experiments", help="run the full harness")
    experiments.add_argument("--fast", action="store_true")
    experiments.add_argument("--out", default=None)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "solve": _cmd_solve,
        "table2": _cmd_table2,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
