"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — reproduce the paper's Example 2.2 and print the result.
* ``solve``       — run FairHMS on a named dataset with chosen parameters.
* ``serve``       — build a ``FairHMSIndex`` and replay a query workload
  against it, reporting the amortized speedup over stateless solves.
* ``live``        — replay a mixed read/write workload against a
  ``LiveFairHMSIndex`` and the rebuild-per-update baseline, verifying
  bit-identical answers and reporting the amortized speedup.
* ``service``     — run a seeded multi-tenant workload through the
  concurrent ``Gateway`` (registry + coalescing + micro-batching) and
  the naive one-query-at-a-time loop, verifying bit-identical answers
  and printing throughput plus the metrics snapshot.
* ``snapshot``    — persist a warm ``FairHMSIndex`` to a versioned
  on-disk snapshot, reload it, and verify the reload answers
  bit-identically to the in-memory index (``--load-only`` skips the
  build and serves straight from an existing snapshot — the
  cross-process warm start; ``--info`` prints the manifest).
* ``server``      — run the asyncio HTTP/JSON front-end over the
  gateway from a TOML/JSON config (or ``--demo`` synthetic tenants):
  ``POST /v1/query``, ``POST /v1/write``, ``GET /v1/metrics``,
  ``GET /v1/datasets``, ``GET /healthz``; 429 load shedding past
  ``max_inflight``; SIGTERM drains gracefully (``--check`` validates
  the config and exits).
* ``cluster``     — run N worker processes behind the consistent-hash
  router from the same config's ``[cluster]`` section: datasets are
  sharded onto workers, frozen reads fan across replicas, live writes
  pin to the owner and WAL before acking, crashed workers respawn and
  replay (``--check`` prints the shard plan and exits; see
  docs/CLUSTER.md).
* ``scenario``    — the config-driven scenario factory: ``list`` the
  named pack, ``describe`` one spec, ``check`` spec files (CI
  validation), ``materialize`` a scenario to disk (datasets + event
  stream + HTTP trace, byte-deterministic), or ``replay`` its event
  stream through a ``LiveFairHMSIndex`` against cold per-epoch solves,
  verifying bit-identical answers (see docs/SCENARIOS.md).
* ``trace``       — fetch ``GET /v1/traces`` from a running server and
  pretty-print the recorded request traces as indented span trees
  (``--slowest`` shows the retained worst offenders instead of the
  recent ring; see docs/OBSERVABILITY.md).
* ``table2``      — print the dataset-statistics table.
* ``experiments`` — forward to ``repro.experiments.run_all``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_demo(_args) -> int:
    from .experiments.example22 import run_example22

    print("Example 2.2 (Table 1): paper vs this reproduction\n")
    for r in run_example22():
        status = "MATCH" if r.matches else "MISMATCH"
        print(
            f"  {r.name:8s} -> {sorted(r.selected)} mhr={r.mhr:.4f} "
            f"(paper: {sorted(r.expected_selected)} {r.expected_mhr:.4f}) [{status}]"
        )
    return 0


def _load_cli_dataset(args):
    """Raw (un-normalized) dataset named on the command line."""
    from .data.realworld import DATASET_GROUPS, load_dataset
    from .data.synthetic import anticorrelated_dataset

    if args.dataset == "anticor":
        return anticorrelated_dataset(
            args.n or 2_000, args.d, args.groups, seed=args.seed
        )
    attribute = args.attribute or DATASET_GROUPS[args.dataset][0]
    return load_dataset(args.dataset, attribute, n=args.n)


def _cmd_solve(args) -> int:
    from .core.solve import solve_fairhms
    from .fairness.constraints import FairnessConstraint

    data = _load_cli_dataset(args).normalized()
    sky = data.skyline(per_group=True)
    print(f"{data} -> per-group skyline of {sky.n} tuples")

    constraint = FairnessConstraint.proportional(
        args.k, sky.population_group_sizes, alpha=args.alpha
    )
    constraint = FairnessConstraint(
        lower=np.minimum(constraint.lower, sky.group_sizes),
        upper=constraint.upper,
        k=args.k,
    )
    print(f"constraint: {constraint.describe(sky.group_names)}")
    solution = solve_fairhms(
        sky,
        constraint,
        algorithm=args.algorithm,
        **({} if args.algorithm == "IntCov" else {"seed": args.seed}),
    )
    print(f"\nalgorithm: {solution.algorithm}")
    print(f"selected ids: {solution.ids.tolist()}")
    print(f"group counts: {solution.group_counts().tolist()}")
    print(f"exact MHR: {solution.mhr():.4f}   violations: {solution.violations()}")
    return 0


def _cmd_plan(args) -> int:
    """Show the planner's dispatch decision for one query, without solving.

    ``--explain`` prints the full decision breakdown (instance stats,
    warm-artifact state, per-candidate predicted costs); ``--json`` emits
    the recorded :class:`~repro.planner.Plan` value itself.
    """
    import json

    from .serving import FairHMSIndex, Query

    data = _load_cli_dataset(args)
    index = FairHMSIndex(data, default_seed=args.seed)
    plan = index.plan_query(
        Query(k=args.k, eps=args.eps, algorithm=args.algorithm, alpha=args.alpha),
        record=False,
    )
    if args.json:
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
    elif args.explain:
        print(plan.explain())
    else:
        print(
            f"{plan.algorithm} (reason={plan.reason}, "
            f"predicted {plan.predicted_cost_s:.6f}s)"
        )
    return 0


def _parse_ks(text: str) -> tuple[int, ...] | None:
    """Parse a comma-separated ``--k`` list; None (with a message) on error."""
    try:
        ks = tuple(int(v) for v in text.split(",") if v.strip())
    except ValueError:
        print(f"error: --k must be comma-separated integers, got {text!r}")
        return None
    if not ks or min(ks) < 1:
        print(f"error: --k needs at least one positive size, got {text!r}")
        return None
    return ks


def _cmd_serve(args) -> int:
    """Index a dataset once, replay a query workload, compare with cold solves.

    The warm pass answers every query through one :class:`FairHMSIndex`;
    the cold pass redoes normalization, skyline extraction, and the full
    solve per query — what a stateless server would do.  Results are
    checked to be identical before the speedup is reported.
    """
    import time

    import numpy as np

    from .core.solve import solve_fairhms
    from .planner import default_planner
    from .serving import FairHMSIndex, Query

    ks = _parse_ks(args.k)
    if ks is None:
        return 2
    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}")
        return 2

    data = _load_cli_dataset(args)
    queries = [
        Query(k=k, eps=args.eps, algorithm=args.algorithm, alpha=args.alpha)
        for _ in range(args.repeat)
        for k in ks
    ]

    t0 = time.perf_counter()
    index = FairHMSIndex(data, default_seed=args.seed)
    build = time.perf_counter() - t0
    print(f"{index!r}  (built in {build:.3f}s)")

    t0 = time.perf_counter()
    warm_solutions = index.query_batch(queries)
    warm = time.perf_counter() - t0
    info = index.cache_info()
    print(
        f"warm: {len(queries)} queries in {warm:.3f}s "
        f"({warm / len(queries):.4f}s/query; engines built: "
        f"{info['engines_cached']}, result-cache hits: {info['result_hits']})"
    )
    for k, solution in zip(ks, warm_solutions[: len(ks)]):
        est = solution.mhr_estimate
        est_text = "n/a" if est is None else f"{est:.4f}"
        print(
            f"  k={k:3d} {solution.algorithm:9s} mhr~{est_text} "
            f"violations={solution.violations()}"
        )

    if args.no_cold:
        return 0

    t0 = time.perf_counter()
    cold_solutions = []
    for q in queries:
        sky = data.normalized().skyline(per_group=True)
        constraint = index.constraint_for(q.k, alpha=q.alpha)
        algorithm = default_planner().resolve(sky, constraint, q.algorithm)
        kwargs = (
            {} if algorithm == "IntCov" else {"epsilon": q.eps, "seed": args.seed}
        )
        cold_solutions.append(
            solve_fairhms(sky, constraint, algorithm=algorithm, **kwargs)
        )
    cold = time.perf_counter() - t0
    print(f"cold: {len(queries)} stateless solves in {cold:.3f}s "
          f"({cold / len(queries):.4f}s/query)")

    identical = all(
        np.array_equal(w.indices, c.indices)
        for w, c in zip(warm_solutions, cold_solutions)
    )
    print(f"results identical to cold solves: {'yes' if identical else 'NO'}")
    print(f"amortized speedup (index build included): {cold / (build + warm):.1f}x")
    return 0


def _cmd_live(args) -> int:
    """Mixed query/update workload: live index vs rebuild-per-update."""
    from .serving.workload import run_mixed_workload

    ks = _parse_ks(args.k)
    if ks is None:
        return 2
    if not 0.0 <= args.write_frac <= 1.0:
        print(f"error: --write-frac must lie in [0, 1], got {args.write_frac}")
        return 2
    if not 0.0 < args.initial_frac < 1.0:
        print(
            f"error: --initial-frac must lie in (0, 1), got {args.initial_frac}"
        )
        return 2

    data = _load_cli_dataset(args)
    print(f"{data}: {args.ops} ops, {args.write_frac:.0%} updates, k in {ks}")
    report = run_mixed_workload(
        data,
        num_ops=args.ops,
        write_frac=args.write_frac,
        ks=ks,
        initial_frac=args.initial_frac,
        seed=args.workload_seed,
        default_seed=args.seed,
        eps=args.eps,
        alpha=args.alpha,
        algorithm=args.algorithm,
        verify=not args.no_verify,
    )
    print(
        f"replayed {report.num_queries} queries + {report.num_updates} "
        f"updates ({report.epochs} serving epochs)"
    )
    print(
        f"live:    build {report.live_build:.3f}s + serve "
        f"{report.live_total:.3f}s"
    )
    print(
        f"rebuild: build {report.rebuild_build:.3f}s + serve "
        f"{report.rebuild_total:.3f}s"
    )
    if not args.no_verify:
        status = "yes" if report.identical else "NO"
        print(f"live answers bit-identical to rebuilds: {status}")
    print(f"amortized speedup (builds included): {report.speedup:.1f}x")
    return 0 if (args.no_verify or report.identical) else 1


def _cmd_service(args) -> int:
    """Multi-tenant gateway workload vs the naive stateless loop."""
    from .service import build_tenant_datasets, run_service_benchmark

    ks = _parse_ks(args.k)
    if ks is None:
        return 2
    if args.tenants < 1:
        print(f"error: --tenants must be >= 1, got {args.tenants}")
        return 2
    if not 0.0 <= args.hot_frac <= 1.0:
        print(f"error: --hot-frac must lie in [0, 1], got {args.hot_frac}")
        return 2

    datasets = build_tenant_datasets(
        args.n or 1_500, tenants=args.tenants, d=args.d, groups=args.groups
    )
    max_bytes = None if args.budget_mb is None else int(args.budget_mb * 2**20)
    print(
        f"{args.tenants} tenants (AntiCor-{args.d}D n={args.n or 1500}), "
        f"{args.requests} requests, k in {ks}, "
        f"budget={'unbounded' if max_bytes is None else f'{args.budget_mb}MiB'}"
    )
    report = run_service_benchmark(
        datasets,
        num_requests=args.requests,
        ks=ks,
        eps=args.eps,
        algorithm=args.algorithm,
        alpha=args.alpha,
        hot_frac=args.hot_frac,
        seed=args.workload_seed,
        default_seed=args.seed,
        batch_window=args.window,
        max_bytes=max_bytes,
        build_workers=args.build_workers,
        naive=not args.no_naive,
    )
    print(
        f"gateway: {report.num_requests} requests in {report.gateway_total:.2f}s "
        f"({report.throughput:.1f} req/s; {report.solves} solves, "
        f"{report.coalesced} coalesced, {report.result_hits} memo hits)"
    )
    if not args.no_naive:
        print(
            f"naive:   {report.naive_total:.2f}s serial -> speedup "
            f"{report.speedup:.1f}x"
        )
        status = "yes" if report.identical else "NO"
        print(f"gateway answers bit-identical to uncoalesced solves: {status}")
    totals = report.metrics["totals"]
    for name, block in sorted(report.metrics["datasets"].items()):
        lat = block["request_latency"]
        p50 = lat.get("p50_s", 0.0)
        p99 = lat.get("p99_s", 0.0)
        print(
            f"  {name}: {block['requests']} req, {block['solves']} solves, "
            f"{block['coalesced']} coalesced, {block['builds']} builds, "
            f"{block['evictions']} evictions, "
            f"p50={p50 * 1e3:.1f}ms p99={p99 * 1e3:.1f}ms"
        )
    print(
        f"totals: {totals.get('solves', 0)} solves for "
        f"{totals.get('requests', 0)} requests, "
        f"{totals.get('fence_violations', 0)} fence violations"
    )
    return 0 if report.identical else 1


def _cmd_snapshot(args) -> int:
    """Save/reload a warm index snapshot and verify bit-identity."""
    import json
    import time

    import numpy as np

    from .serving import FairHMSIndex, Query
    from .service.store import SnapshotError, SnapshotStore

    ks = _parse_ks(args.k)
    if ks is None:
        return 2
    name = args.name or args.dataset
    store = SnapshotStore(args.dir)
    queries = [Query(k=k, eps=args.eps, alpha=args.alpha) for k in ks]

    if args.info:
        try:
            manifest = store.manifest(name)
        except SnapshotError as exc:
            print(f"error: {exc}")
            return 1
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0

    if not args.load_only:
        data = _load_cli_dataset(args)
        t0 = time.perf_counter()
        index = FairHMSIndex(data, default_seed=args.seed)
        built = index.query_batch(queries)
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        store.save_index(name, index)
        t_save = time.perf_counter() - t0
        print(
            f"{index!r}\nbuilt + served {len(queries)} queries in "
            f"{t_build:.3f}s; saved {store.size_bytes(name) / 2**20:.1f} MiB "
            f"snapshot in {t_save:.3f}s -> {store.path_for(name)}"
        )

    try:
        t0 = time.perf_counter()
        loaded = store.load_index(name)
        t_load = time.perf_counter() - t0
    except SnapshotError as exc:
        print(f"error: {exc}")
        return 1
    t0 = time.perf_counter()
    reloaded = loaded.query_batch(queries)
    t_serve = time.perf_counter() - t0
    print(
        f"reloaded in {t_load:.3f}s, served {len(queries)} queries in "
        f"{t_serve:.3f}s (result-cache hits: "
        f"{loaded.cache_info()['result_hits']})"
    )
    if args.load_only:
        for k, solution in zip(ks, reloaded):
            print(f"  k={k:3d} {solution.algorithm:9s} ids={solution.ids.tolist()}")
        return 0

    identical = all(
        np.array_equal(a.ids, b.ids) and a.mhr() == b.mhr()
        for a, b in zip(built, reloaded)
    )
    print(f"reloaded answers bit-identical (ids + mhr): {'yes' if identical else 'NO'}")
    print(
        f"reload speedup over build-and-serve: "
        f"{t_build / (t_load + t_serve):.1f}x"
    )
    return 0 if identical else 1


def _cmd_server(args) -> int:
    """Serve FairHMS over HTTP from a config file (or the demo tenants)."""
    from dataclasses import replace

    from .server import build_registry, demo_config, load_config, serve_forever

    if (args.config is None) == (not args.demo):
        print("error: provide a config file or --demo (exactly one)")
        return 2
    try:
        if args.demo:
            config = demo_config(tenants=args.tenants, n=args.n or 1_500)
        else:
            config = load_config(args.config)
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if overrides:
        config = replace(config, **overrides)

    registry = build_registry(config)
    if args.check:
        spill = config.spill_dir or "(no spill tier)"
        print(
            f"config ok: {len(config.datasets)} dataset(s) on "
            f"{config.host}:{config.port}, max_inflight={config.max_inflight}, "
            f"spill_dir={spill}"
        )
        for name in registry.names():
            info = registry.describe(name)
            kind = "live" if info["live"] else "frozen"
            warm = " (snapshot on disk)" if info["spilled"] else ""
            print(f"  {name}: {kind}{warm}")
        return 0
    serve_forever(config, registry=registry)
    return 0


def _cmd_cluster(args) -> int:
    """Run the worker fleet + router from a config's [cluster] section."""
    from dataclasses import replace

    from .cluster import HashRing, run_cluster, shard_datasets
    from .server import load_config

    try:
        config = load_config(args.config)
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.workers is not None:
        overrides["cluster"] = replace(config.cluster, workers=args.workers)
    if overrides:
        config = replace(config, **overrides)

    if args.check:
        names = [f"w{i}" for i in range(config.cluster.workers)]
        ring = HashRing(names, vnodes=config.cluster.vnodes)
        shards = shard_datasets(config, ring)
        print(
            f"config ok: {config.cluster.workers} worker(s), "
            f"replicas={config.cluster.replicas}, "
            f"router on {config.host}:{config.port}"
        )
        for wname in names:
            kinds = [
                f"{s.name} ({'live' if s.live else 'frozen'})"
                for s in shards[wname].datasets
            ]
            print(f"  {wname}: {', '.join(kinds) or '(no datasets)'}")
        return 0
    run_cluster(config)
    return 0


def _cmd_trace(args) -> int:
    """Fetch and pretty-print request traces from a running server."""
    import http.client
    import json
    import urllib.parse

    from .obs.trace import format_trace

    raw = args.url if "//" in args.url else f"//{args.url}"
    url = urllib.parse.urlsplit(raw)
    host = url.hostname or "127.0.0.1"
    port = url.port or 8080
    limit = max(1, min(100, args.limit))
    try:
        conn = http.client.HTTPConnection(host, port, timeout=args.timeout)
        conn.request("GET", f"/v1/traces?limit={limit}")
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        conn.close()
    except (OSError, ValueError) as exc:
        print(f"error: cannot fetch traces from {host}:{port}: {exc}")
        return 2
    if resp.status != 200:
        print(f"error: GET /v1/traces -> {resp.status}: {payload.get('error')}")
        return 2
    if not payload.get("tracing", False):
        print(f"tracing is disabled on {host}:{port}")
        return 1
    which = "slowest" if args.slowest else "recent"
    entries = payload.get(which, [])
    stats = payload.get("stats", {})
    print(
        f"{host}:{port} — {stats.get('recorded', 0)} trace(s) recorded, "
        f"{stats.get('slow', 0)} slow "
        f"(>= {stats.get('slow_threshold_s', '?')}s), "
        f"{stats.get('buffered', 0)}/{stats.get('capacity', '?')} buffered"
    )
    if not entries:
        print(f"no {which} traces yet")
        return 0
    for entry in entries:
        print()
        print(format_trace(entry))
    return 0


def _scenario_check(paths) -> int:
    """Validate scenario spec files; nonzero exit when any is invalid."""
    from .scenarios import load_scenario

    if not paths:
        print("error: scenario check needs at least one spec file")
        return 2
    failures = 0
    for path in paths:
        try:
            spec = load_scenario(path)
        except (OSError, RuntimeError, ValueError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
            continue
        tenants = spec.all_tenants()
        print(
            f"ok   {path}: {spec.name} [{spec.archetype}] "
            f"{len(tenants)} tenant(s), {spec.total_events} events, "
            f"{spec.workload.requests} trace requests"
        )
    print(f"{len(paths)} spec(s), {failures} failure(s)")
    return 1 if failures else 0


def _cmd_scenario(args) -> int:
    """The scenario factory front-end (see docs/SCENARIOS.md)."""
    import time

    from .scenarios import (
        default_pack_dir,
        materialize,
        replay,
        resolve_scenario,
        shrink_spec,
        write_scenario,
    )

    action = args.action
    targets = list(args.targets)
    if args.check:
        # `repro scenario --check FILES...`: the leading positional is a
        # file, not an action.
        if action not in (None, "check"):
            targets.insert(0, action)
        return _scenario_check(targets)
    if action is None:
        action = "list"
    if action == "check":
        return _scenario_check(targets)

    pack = args.pack or default_pack_dir()
    if action == "list":
        from pathlib import Path

        files = sorted(Path(pack).glob("*.toml")) + sorted(Path(pack).glob("*.json"))
        if not files:
            print(f"no scenarios found in {pack}")
            return 1
        for path in files:
            try:
                spec = resolve_scenario(path)
            except (RuntimeError, ValueError) as exc:
                print(f"  {path.stem:28s} INVALID: {exc}")
                continue
            print(
                f"  {path.stem:28s} [{spec.archetype}] "
                f"{len(spec.all_tenants())} tenant(s), "
                f"{spec.total_events} events — {spec.description or spec.name}"
            )
        return 0

    if not targets:
        print(f"error: scenario {action} needs a scenario name or spec file")
        return 2
    if len(targets) > 1:
        print(f"error: scenario {action} takes exactly one scenario, got {targets}")
        return 2
    try:
        spec = resolve_scenario(targets[0], pack_dir=pack)
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    if args.tiny:
        spec = shrink_spec(spec)

    if action == "describe":
        print(f"{spec.name} [{spec.archetype}] seed={spec.seed}")
        if spec.description:
            print(f"  {spec.description}")
        for tenant in spec.all_tenants():
            print(
                f"  tenant {tenant.name}: n={tenant.n} "
                f"correlation={tenant.correlation:+.2f}"
            )
        for i, phase in enumerate(spec.phases):
            print(
                f"  phase {i}: {phase.ops} ops, write_frac={phase.write_frac}, "
                f"churn={phase.churn}, drift={phase.drift:+.2f}, "
                f"burst={phase.burst}x"
            )
        w = spec.workload
        print(
            f"  workload: {w.requests} requests, ks={list(w.ks)}, "
            f"eps={w.eps}, alpha={w.alpha}, hot_frac={w.hot_frac}"
        )
        return 0

    scenario = materialize(spec)
    if action == "materialize":
        out = write_scenario(scenario, args.out or f"scenario-{spec.name}")
        total = sum(d.n for d in scenario.datasets.values())
        print(
            f"materialized {spec.name}: {len(scenario.datasets)} tenant(s) "
            f"({total} rows), {len(scenario.events)} events, "
            f"{len(scenario.trace)} trace requests -> {out}"
        )
        return 0

    if action == "replay":
        t0 = time.perf_counter()
        report = replay(
            scenario, default_seed=args.seed, verify=not args.no_verify
        )
        elapsed = time.perf_counter() - t0
        for name, r in report.tenants.items():
            print(
                f"  {name}: {r.num_queries} queries + {r.num_updates} updates "
                f"({r.epochs} epochs), live {r.live_build + r.live_total:.2f}s "
                f"vs rebuild {r.rebuild_build + r.rebuild_total:.2f}s"
            )
        print(
            f"replayed {report.num_queries} queries + {report.num_updates} "
            f"updates across {len(report.tenants)} tenant(s) in {elapsed:.2f}s"
        )
        if not args.no_verify:
            status = "yes" if report.identical else "NO"
            print(f"live answers bit-identical to cold per-epoch solves: {status}")
        print(f"amortized speedup over rebuild-per-update: {report.speedup:.1f}x")
        return 0 if (args.no_verify or report.identical) else 1

    print(
        f"error: unknown scenario action {action!r} "
        f"(expected list/describe/check/materialize/replay)"
    )
    return 2


def _cmd_table2(args) -> int:
    from .experiments.table2 import render_table2, run_table2

    print(render_table2(run_table2(scale=args.scale)))
    return 0


def _cmd_experiments(args) -> int:
    from .experiments.run_all import run_all

    report = run_all(fast=args.fast, out=args.out)
    if not args.out:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="reproduce Example 2.2")

    solve = sub.add_parser("solve", help="solve FairHMS on a dataset")
    solve.add_argument(
        "dataset",
        choices=["Lawschs", "Adult", "Compas", "Credit", "anticor"],
    )
    solve.add_argument("--attribute", default=None, help="group attribute")
    solve.add_argument("-k", type=int, default=10, help="solution size")
    solve.add_argument("--alpha", type=float, default=0.1)
    solve.add_argument("--n", type=int, default=None, help="row-count override")
    solve.add_argument("--d", type=int, default=6, help="dimension (anticor)")
    solve.add_argument("--groups", type=int, default=3, help="groups (anticor)")
    solve.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto", "IntCov", "BiGreedy", "BiGreedy+"],
    )
    solve.add_argument("--seed", type=int, default=7)

    plan = sub.add_parser(
        "plan", help="show the planner's dispatch decision for a query"
    )
    plan.add_argument(
        "dataset",
        choices=["Lawschs", "Adult", "Compas", "Credit", "anticor"],
    )
    plan.add_argument("--attribute", default=None, help="group attribute")
    plan.add_argument("-k", type=int, default=10, help="solution size")
    plan.add_argument("--alpha", type=float, default=0.1)
    plan.add_argument("--eps", type=float, default=0.02)
    plan.add_argument("--n", type=int, default=None, help="row-count override")
    plan.add_argument("--d", type=int, default=6, help="dimension (anticor)")
    plan.add_argument("--groups", type=int, default=3, help="groups (anticor)")
    plan.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto", "IntCov", "BiGreedy", "BiGreedy+"],
    )
    plan.add_argument("--seed", type=int, default=7)
    plan.add_argument(
        "--explain",
        action="store_true",
        help="print the full decision breakdown (stats + candidate costs)",
    )
    plan.add_argument(
        "--json", action="store_true", help="emit the Plan record as JSON"
    )

    serve = sub.add_parser(
        "serve", help="index a dataset and replay a query workload against it"
    )
    serve.add_argument(
        "dataset",
        choices=["Lawschs", "Adult", "Compas", "Credit", "anticor"],
    )
    serve.add_argument("--attribute", default=None, help="group attribute")
    serve.add_argument(
        "--k", default="4,8,12", help="comma-separated solution sizes"
    )
    serve.add_argument(
        "--repeat", type=int, default=3, help="times to replay the k sweep"
    )
    serve.add_argument("--alpha", type=float, default=0.1)
    serve.add_argument("--eps", type=float, default=0.02)
    serve.add_argument("--n", type=int, default=None, help="row-count override")
    serve.add_argument("--d", type=int, default=6, help="dimension (anticor)")
    serve.add_argument("--groups", type=int, default=3, help="groups (anticor)")
    serve.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto", "IntCov", "BiGreedy", "BiGreedy+"],
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--no-cold",
        action="store_true",
        help="skip the cold-solve comparison pass",
    )

    live = sub.add_parser(
        "live",
        help="mixed query/update workload: live index vs rebuild-per-update",
    )
    live.add_argument(
        "dataset",
        choices=["Lawschs", "Adult", "Compas", "Credit", "anticor"],
    )
    live.add_argument("--attribute", default=None, help="group attribute")
    live.add_argument("--ops", type=int, default=200, help="operation count")
    live.add_argument(
        "--write-frac",
        type=float,
        default=0.2,
        help="fraction of ops that are updates (default 0.2 = 80/20)",
    )
    live.add_argument(
        "--k", default="4,6,8", help="comma-separated solution sizes"
    )
    live.add_argument(
        "--initial-frac",
        type=float,
        default=0.75,
        help="fraction of tuples loaded before the workload starts",
    )
    live.add_argument("--alpha", type=float, default=0.1)
    live.add_argument("--eps", type=float, default=0.02)
    live.add_argument("--n", type=int, default=None, help="row-count override")
    live.add_argument("--d", type=int, default=2, help="dimension (anticor)")
    live.add_argument("--groups", type=int, default=3, help="groups (anticor)")
    live.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto", "IntCov", "BiGreedy", "BiGreedy+"],
    )
    live.add_argument("--seed", type=int, default=7, help="solver seed")
    live.add_argument(
        "--workload-seed", type=int, default=1, help="op-sequence seed"
    )
    live.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-identity check against the rebuild baseline",
    )

    service = sub.add_parser(
        "service",
        help="multi-tenant gateway workload vs the naive stateless loop",
    )
    service.add_argument(
        "--tenants", type=int, default=3, help="number of hosted datasets"
    )
    service.add_argument(
        "--requests", type=int, default=36, help="workload request count"
    )
    service.add_argument(
        "--k", default="4,6,8", help="comma-separated solution sizes"
    )
    service.add_argument(
        "--hot-frac",
        type=float,
        default=0.7,
        help="fraction of requests drawn from each tenant's hot query set",
    )
    service.add_argument("--alpha", type=float, default=0.1)
    service.add_argument("--eps", type=float, default=0.02)
    service.add_argument("--n", type=int, default=None, help="tenant size")
    service.add_argument("--d", type=int, default=2, help="tenant dimension")
    service.add_argument("--groups", type=int, default=3)
    service.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto", "IntCov", "BiGreedy", "BiGreedy+"],
    )
    service.add_argument(
        "--window",
        type=float,
        default=0.005,
        help="micro-batch window in seconds",
    )
    service.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="registry cache budget in MiB (LRU eviction past it)",
    )
    service.add_argument(
        "--build-workers",
        type=int,
        default=0,
        help="process-pool workers for sharded cold builds (0 = sequential)",
    )
    service.add_argument("--seed", type=int, default=7, help="solver seed")
    service.add_argument(
        "--workload-seed", type=int, default=3, help="request-stream seed"
    )
    service.add_argument(
        "--no-naive",
        action="store_true",
        help="skip the naive serial loop (no speedup / identity check)",
    )

    snapshot = sub.add_parser(
        "snapshot",
        help="persist a warm index to disk, reload it, verify bit-identity",
    )
    snapshot.add_argument(
        "dataset",
        choices=["Lawschs", "Adult", "Compas", "Credit", "anticor"],
    )
    snapshot.add_argument("--attribute", default=None, help="group attribute")
    snapshot.add_argument(
        "--dir", default="snapshots", help="snapshot store directory"
    )
    snapshot.add_argument(
        "--name", default=None, help="snapshot name (default: dataset name)"
    )
    snapshot.add_argument(
        "--k", default="4,6,8", help="comma-separated solution sizes"
    )
    snapshot.add_argument("--alpha", type=float, default=0.1)
    snapshot.add_argument("--eps", type=float, default=0.02)
    snapshot.add_argument("--n", type=int, default=None, help="row-count override")
    snapshot.add_argument("--d", type=int, default=2, help="dimension (anticor)")
    snapshot.add_argument("--groups", type=int, default=3, help="groups (anticor)")
    snapshot.add_argument("--seed", type=int, default=7)
    snapshot.add_argument(
        "--load-only",
        action="store_true",
        help="skip the build: serve from an existing snapshot "
        "(cross-process warm start)",
    )
    snapshot.add_argument(
        "--info",
        action="store_true",
        help="print the snapshot manifest and exit",
    )

    server = sub.add_parser(
        "server",
        help="serve FairHMS over HTTP (asyncio front-end over the gateway)",
    )
    server.add_argument(
        "config",
        nargs="?",
        default=None,
        help="TOML or JSON server config (see docs/SERVER.md)",
    )
    server.add_argument(
        "--demo",
        action="store_true",
        help="skip the config file: serve 3 synthetic AntiCor-2D tenants",
    )
    server.add_argument(
        "--tenants", type=int, default=3, help="tenant count for --demo"
    )
    server.add_argument("--n", type=int, default=None, help="tenant size (--demo)")
    server.add_argument("--host", default=None, help="listen host override")
    server.add_argument("--port", type=int, default=None, help="listen port override")
    server.add_argument(
        "--check",
        action="store_true",
        help="validate the config, print the dataset plan, and exit",
    )

    cluster = sub.add_parser(
        "cluster",
        help="run N FairHMS workers behind the consistent-hash router "
        "(docs/CLUSTER.md)",
    )
    cluster.add_argument(
        "config",
        help="TOML or JSON server config with a [cluster] section",
    )
    cluster.add_argument(
        "--workers", type=int, default=None, help="worker-count override"
    )
    cluster.add_argument("--host", default=None, help="router host override")
    cluster.add_argument(
        "--port", type=int, default=None, help="router port override"
    )
    cluster.add_argument(
        "--check",
        action="store_true",
        help="validate the config, print the shard plan, and exit",
    )

    scenario = sub.add_parser(
        "scenario",
        help="config-driven scenario factory: list/describe/check/"
        "materialize/replay (docs/SCENARIOS.md)",
    )
    scenario.add_argument(
        "action",
        nargs="?",
        default=None,
        help="list | describe | check | materialize | replay (default: list)",
    )
    scenario.add_argument(
        "targets",
        nargs="*",
        default=[],
        help="scenario name (resolved in the pack) or spec file path(s)",
    )
    scenario.add_argument(
        "--check",
        action="store_true",
        help="validate spec files and exit (equivalent to the check action)",
    )
    scenario.add_argument(
        "--pack",
        default=None,
        help="scenario pack directory (default: examples/scenarios)",
    )
    scenario.add_argument(
        "--out", default=None, help="output directory for materialize"
    )
    scenario.add_argument(
        "--tiny",
        action="store_true",
        help="shrink the scenario to CI size (tenants <= 240 rows, "
        "<= 30 ops/phase, <= 24 trace requests)",
    )
    scenario.add_argument("--seed", type=int, default=7, help="solver seed")
    scenario.add_argument(
        "--no-verify",
        action="store_true",
        help="replay without the bit-identity check against cold solves",
    )

    trace = sub.add_parser(
        "trace",
        help="pretty-print request traces from a running server "
        "(GET /v1/traces)",
    )
    trace.add_argument(
        "url",
        nargs="?",
        default="127.0.0.1:8080",
        help="server address, host:port or URL (default: 127.0.0.1:8080)",
    )
    trace.add_argument(
        "--limit", type=int, default=10, help="traces to fetch (1..100)"
    )
    trace.add_argument(
        "--slowest",
        action="store_true",
        help="show the retained slowest traces instead of the recent ring",
    )
    trace.add_argument(
        "--timeout", type=float, default=10.0, help="HTTP timeout seconds"
    )

    table2 = sub.add_parser("table2", help="print dataset statistics")
    table2.add_argument("--scale", type=float, default=0.25)

    experiments = sub.add_parser("experiments", help="run the full harness")
    experiments.add_argument("--fast", action="store_true")
    experiments.add_argument("--out", default=None)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "solve": _cmd_solve,
        "plan": _cmd_plan,
        "serve": _cmd_serve,
        "live": _cmd_live,
        "service": _cmd_service,
        "snapshot": _cmd_snapshot,
        "server": _cmd_server,
        "cluster": _cmd_cluster,
        "scenario": _cmd_scenario,
        "trace": _cmd_trace,
        "table2": _cmd_table2,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
