"""Instance statistics the planner predicts cost from.

One :class:`InstanceStats` captures everything about a FairHMS query
instance that the cost model and the feedback estimators key on: the
solver-input size and shape (``n``, ``dim``, ``groups``), the query
(``k``, the interval-cover DP state count), how much of the per-dataset
artifact cache is already warm (the single biggest cost cliff — a cold
2-D dataset pays the ``O(n^2)`` candidate enumeration, a warm one pays
milliseconds), and the gateway queue depth at planning time.

Stats are plain frozen values: collecting them never mutates the index
or the artifacts, so planning is free to happen on any thread that
already holds the serving lock.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..core.solve import DP_STATE_LIMIT, dp_state_count

__all__ = ["InstanceStats", "instance_stats"]


@dataclass(frozen=True)
class InstanceStats:
    """Everything the cost model may read about one query instance.

    ``dp_states`` is saturated at ``DP_STATE_LIMIT + 1`` (see
    :func:`repro.core.solve.dp_state_count`), so equality of two stats
    objects never depends on an astronomically large exact product.
    """

    dataset: str
    n: int  #: rows in the solver-input dataset (normally the skyline)
    dim: int
    groups: int
    k: int
    dp_states: int
    warm_geometry: bool  #: 2-D envelope + candidate-MHR values cached
    warm_engines: int  #: truncated-MHR engines cached (BiGreedy family)
    queue_depth: int  #: requests waiting on this dataset at plan time

    def to_dict(self) -> dict:
        return asdict(self)


def instance_stats(
    skyline,
    constraint,
    *,
    dataset: str = "",
    artifacts=None,
    queue_depth: int = 0,
) -> InstanceStats:
    """Collect an :class:`InstanceStats` for one query instance.

    Args:
        skyline: the solver-input dataset (what the chosen algorithm
            will actually run over).
        constraint: the (constructed) fairness constraint, carrying
            ``k`` and the group bounds.
        dataset: the serving-layer name of the dataset (estimator key).
        artifacts: optional :class:`~repro.serving.SolverArtifacts`; when
            bound to ``skyline`` its cache state feeds the warm-artifact
            fields (a mismatched or absent cache reads as fully cold).
        queue_depth: requests currently queued on this dataset.
    """
    warm_geometry = False
    warm_engines = 0
    if artifacts is not None and artifacts.matches(skyline):
        # Apply staged invalidation first: an engine a live write dirtied
        # must read as cold, exactly as solve_fairhms would treat it.
        artifacts.flush_invalidations()
        envelope, candidates = artifacts.cached_geometry()
        warm_geometry = envelope is not None and candidates is not None
        warm_engines = len(artifacts.cached_engines())
    return InstanceStats(
        dataset=str(dataset),
        n=int(skyline.n),
        dim=int(skyline.dim),
        groups=int(skyline.num_groups),
        k=int(constraint.k),
        dp_states=min(dp_state_count(constraint), DP_STATE_LIMIT + 1),
        warm_geometry=warm_geometry,
        warm_engines=int(warm_engines),
        queue_depth=int(queue_depth),
    )
