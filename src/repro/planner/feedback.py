"""Observed-cost estimators: the planner's live feedback loop.

The gateway times every actual solver run (the same measurement it
records into ``ServiceMetrics.observe_solve`` and the per-phase solve
histograms) and feeds it here.  The estimator keeps one exponentially
weighted moving average per ``(dataset, algorithm, k-bucket, eps-bucket)``
— coarse enough that repeated traffic converges fast, fine enough that
an expensive configuration never poisons a cheap one's estimate:

* ``k`` is bucketed by powers of two (k=3 and k=4 share a bucket; k=9
  does not), because solve cost moves with the magnitude of ``k``, not
  its exact value;
* ``eps`` (BiGreedy family only) is part of the key, so the eps ladder
  the planner tunes along learns a separate cost per rung.

Determinism contract: estimates are a pure function of the observation
sequence — replaying the same observations in the same order into a
fresh estimator reproduces every estimate bit for bit, which is what
makes a :class:`~repro.planner.plan.Plan` a replayable value.
"""

from __future__ import annotations

import threading

__all__ = ["CostEstimate", "CostEstimator", "k_bucket"]

#: EWMA smoothing weight for new observations; 0.25 converges in a few
#: repeats while riding out one-off scheduling hiccups.
EWMA_ALPHA = 0.25


def k_bucket(k: int) -> int:
    """Power-of-two bucket index for a solution size (1→0, 2→1, 3-4→2...)."""
    return max(0, int(k) - 1).bit_length()


def _eps_key(eps) -> float | None:
    """Stable eps bucket: rounded so float noise never splits a rung."""
    return None if eps is None else round(float(eps), 6)


class CostEstimate:
    """One EWMA cell: smoothed mean seconds plus the observation count."""

    __slots__ = ("mean", "count")

    def __init__(self, mean: float, count: int) -> None:
        self.mean = float(mean)
        self.count = int(count)

    def to_dict(self) -> dict:
        return {"mean_s": round(self.mean, 9), "count": self.count}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostEstimate(mean={self.mean:.6f}, count={self.count})"


class CostEstimator:
    """Thread-safe per-configuration observed-cost EWMAs.

    Args:
        alpha: EWMA weight of each new observation.
        max_cells: bound on distinct configuration cells; past it, new
            keys are dropped (never evicting hot ones mid-flight) — a
            backstop against unbounded client-controlled cardinality.
    """

    def __init__(self, *, alpha: float = EWMA_ALPHA, max_cells: int = 4096) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.max_cells = int(max_cells)
        self._lock = threading.Lock()
        self._cells: dict[tuple, CostEstimate] = {}

    @staticmethod
    def key(dataset: str, algorithm: str, k: int, eps=None) -> tuple:
        return (str(dataset), str(algorithm), k_bucket(k), _eps_key(eps))

    def observe(
        self, dataset: str, algorithm: str, k: int, seconds: float, *, eps=None
    ) -> None:
        """Fold one measured solve into the matching cell's EWMA."""
        seconds = max(0.0, float(seconds))
        cell_key = self.key(dataset, algorithm, k, eps)
        with self._lock:
            cell = self._cells.get(cell_key)
            if cell is None:
                if len(self._cells) >= self.max_cells:
                    return
                self._cells[cell_key] = CostEstimate(seconds, 1)
                return
            cell.mean += self.alpha * (seconds - cell.mean)
            cell.count += 1

    def estimate(
        self, dataset: str, algorithm: str, k: int, *, eps=None
    ) -> CostEstimate | None:
        """The current estimate for a configuration, or ``None`` if unseen."""
        with self._lock:
            cell = self._cells.get(self.key(dataset, algorithm, k, eps))
            if cell is None:
                return None
            return CostEstimate(cell.mean, cell.count)

    def observations(self) -> int:
        """Total observations folded in across every cell."""
        with self._lock:
            return sum(cell.count for cell in self._cells.values())

    def snapshot(self) -> dict:
        """JSON-ready export of every cell (diagnostics / ``/v1/metrics``)."""
        with self._lock:
            cells = {}
            for (dataset, algorithm, bucket, eps), cell in sorted(
                self._cells.items(), key=lambda item: repr(item[0])
            ):
                label = f"{dataset}/{algorithm}/k2^{bucket}"
                if eps is not None:
                    label += f"/eps={eps}"
                cells[label] = cell.to_dict()
            return {"cells": cells, "observations": sum(
                cell["count"] for cell in cells.values()
            )}

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()
