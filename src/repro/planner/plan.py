"""The adaptive query planner: one decision point for solver dispatch.

Every layer that used to call ``resolve_algorithm`` directly now asks a
:class:`Planner` for a :class:`Plan` — a frozen, replayable record of
*which exact configuration runs*: the concrete algorithm, the full
solver parameters, the predicted cost, and the reason the pick was made.
The planner never alters a chosen algorithm's output; answers therefore
stay bit-identical to an explicit call with the plan's algorithm and
parameters, which is the invariant ``benchmarks/bench_planner.py``
verifies on every run.

Two modes (``PlannerConfig.mode``):

* ``"static"`` (the default) — the planner *is* today's dispatch:
  ``"auto"`` resolves through :func:`repro.core.solve.resolve_algorithm`
  (kept as the fallback path), parameters pass through untouched, and a
  cold planner is byte-for-byte equivalent to the pre-planner stack.
* ``"adaptive"`` (opt-in via the ``[planner]`` server config section) —
  observed per-(dataset, algorithm, k-bucket) solve costs fed by the
  gateway steer ``"auto"`` picks toward the measured-cheaper algorithm,
  and ``eps`` is auto-tuned along a bounded ladder toward the ``[slo]``
  latency budget (tightened under queue pressure).  Explicit algorithm
  requests are never overridden, and with no observations the adaptive
  planner reproduces the static rule exactly.

Determinism contract: same :class:`~repro.planner.stats.InstanceStats`
plus the same observation sequence produce a byte-identical
:class:`Plan` — decisions are pure functions of (stats, estimator
state, config), with no wall clock and no randomness.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, fields

from ..core.solve import DP_STATE_LIMIT, resolve_algorithm
from .cost import predict_cost
from .feedback import CostEstimator
from .stats import InstanceStats, instance_stats

__all__ = ["Plan", "Planner", "PlannerConfig", "default_planner"]

_MODES = ("static", "adaptive")

#: Queue depth at which the latency budget is halved: deeper backlogs
#: tighten the per-solve budget so the tail does not compound under load.
_PRESSURE_SCALE = 8.0


def _json_scalar(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)  # e.g. a live Generator seed: recorded, not replayed


@dataclass(frozen=True)
class PlannerConfig:
    """Validated ``[planner]`` settings (server config section).

    Args:
        mode: ``"static"`` or ``"adaptive"`` (see module docstring).
        target_p99_s: per-solve latency budget the adaptive mode tunes
            toward; ``None`` defers to the ``[slo]`` latency target.
        eps_ladder: the only eps values auto-tuning may step through
            (ascending; the requested eps is always the starting rung).
        min_observations: observations a configuration needs before its
            estimate may steer a pick — below it the static rule holds.
    """

    mode: str = "static"
    target_p99_s: float | None = None
    eps_ladder: tuple[float, ...] = (0.02, 0.04, 0.08)
    min_observations: int = 3

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"planner mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.target_p99_s is not None and not self.target_p99_s > 0:
            raise ValueError(
                f"target_p99_s must be positive, got {self.target_p99_s}"
            )
        ladder = tuple(sorted(float(e) for e in self.eps_ladder))
        if not ladder or any(e <= 0 for e in ladder):
            raise ValueError(f"eps_ladder must be positive values: {self.eps_ladder}")
        object.__setattr__(self, "eps_ladder", ladder)
        if int(self.min_observations) < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )
        object.__setattr__(self, "min_observations", int(self.min_observations))

    @classmethod
    def from_dict(cls, raw: dict) -> "PlannerConfig":
        """Parse a ``[planner]`` mapping, rejecting unknown keys."""
        if not isinstance(raw, dict):
            raise ValueError(
                f"[planner] must be a mapping, got {type(raw).__name__}"
            )
        allowed = {f.name for f in fields(cls)}
        unknown = set(raw) - allowed
        if unknown:
            raise ValueError(f"unknown [planner] keys: {sorted(unknown)}")
        return cls(**raw)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "target_p99_s": self.target_p99_s,
            "eps_ladder": list(self.eps_ladder),
            "min_observations": self.min_observations,
        }


@dataclass(frozen=True)
class Plan:
    """One recorded, replayable dispatch decision.

    ``params`` is the *complete* solver keyword set the plan prescribes
    (sorted name/value pairs) — running ``solve_fairhms(skyline,
    constraint, algorithm=plan.algorithm, **plan.solver_kwargs())``
    reproduces the planned answer bit for bit.  ``reason`` says why this
    configuration won: ``"explicit"`` (caller named the algorithm),
    ``"static"`` (the fallback dispatch rule), ``"observed"`` (feedback
    picked a measured-cheaper algorithm), ``"eps_tuned"`` (feedback
    stepped eps along the ladder toward the latency budget).
    """

    dataset: str
    algorithm: str
    params: tuple
    predicted_cost_s: float
    reason: str
    source: str  #: "analytic" | "observed" — where the cost figure came from
    stats: InstanceStats
    candidates: tuple = ()  #: (algorithm, predicted_s, source) per candidate

    def solver_kwargs(self) -> dict:
        """The keyword arguments to run this plan with (a fresh dict)."""
        return dict(self.params)

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "params": {name: _json_scalar(value) for name, value in self.params},
            "predicted_cost_s": round(float(self.predicted_cost_s), 9),
            "reason": self.reason,
            "source": self.source,
            "stats": self.stats.to_dict(),
            "candidates": [
                {"algorithm": a, "predicted_cost_s": round(float(c), 9), "source": s}
                for a, c, s in self.candidates
            ],
        }

    def explain(self) -> str:
        """Human-readable multi-line account of the decision."""
        s = self.stats
        params = (
            " ".join(f"{k}={_json_scalar(v)}" for k, v in self.params) or "(none)"
        )
        lines = [
            f"plan: {self.algorithm} (reason={self.reason}, "
            f"predicted {self.predicted_cost_s:.6f}s, {self.source})",
            f"  instance: dataset={s.dataset or '?'} n={s.n} d={s.dim} "
            f"groups={s.groups} k={s.k} dp_states={s.dp_states}",
            f"  warmth: geometry={s.warm_geometry} engines={s.warm_engines} "
            f"queue_depth={s.queue_depth}",
            f"  params: {params}",
        ]
        for algorithm, cost, source in self.candidates:
            marker = "->" if algorithm == self.algorithm else "  "
            lines.append(f"  {marker} candidate {algorithm}: {cost:.6f}s ({source})")
        return "\n".join(lines)


class Planner:
    """Cost-model dispatch with live latency feedback (see module doc).

    Thread-safe: the estimator and the decision counters carry their own
    locks, and planning itself reads immutable config plus point-in-time
    estimates — callers already holding a serving lock may plan freely.
    """

    def __init__(
        self,
        config: PlannerConfig | None = None,
        *,
        estimator: CostEstimator | None = None,
    ) -> None:
        self.config = config if config is not None else PlannerConfig()
        self.estimator = estimator if estimator is not None else CostEstimator()
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, str], int] = {}
        self._recent: deque = deque(maxlen=32)
        self._queue_depths: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def plan(
        self,
        skyline,
        constraint,
        *,
        algorithm: str = "auto",
        dataset: str = "",
        eps: float = 0.02,
        seed=None,
        options: dict | None = None,
        artifacts=None,
        queue_depth: int | None = None,
        record: bool = True,
    ) -> Plan:
        """Decide the exact configuration for one query instance.

        Mirrors :meth:`FairHMSIndex.query` parameter semantics exactly:
        explicit ``options`` entries (``epsilon``, ``seed``) win over the
        ``eps``/``seed`` arguments, and the BiGreedy family receives
        ``epsilon`` and ``seed`` while the exact IntCov takes neither.

        Raises:
            ValueError: if ``algorithm`` names no registered algorithm.
        """
        options = dict(options) if options else {}
        if queue_depth is None:
            queue_depth = self._queue_depths.get(str(dataset), 0)
        stats = instance_stats(
            skyline,
            constraint,
            dataset=dataset,
            artifacts=artifacts,
            queue_depth=queue_depth,
        )
        # Explicit knobs follow the index's setdefault semantics: an
        # options entry beats the keyword argument.
        eps_requested = float(options.get("epsilon", eps))
        seed_effective = options.get("seed", seed)

        static_choice = resolve_algorithm(skyline, constraint, algorithm)
        chosen, reason, source = static_choice, "static", "analytic"
        if algorithm != "auto":
            reason = "explicit"

        adaptive = self.config.mode == "adaptive" and algorithm == "auto"
        candidates = self._candidates(stats, static_choice)
        estimates = {}
        if adaptive:
            for name in candidates:
                estimates[name] = self.estimator.estimate(
                    stats.dataset,
                    name,
                    stats.k,
                    eps=None if name == "IntCov" else eps_requested,
                )
            ready = {
                name: est
                for name, est in estimates.items()
                if est is not None and est.count >= self.config.min_observations
            }
            if len(ready) == len(candidates) and len(candidates) > 1:
                best = min(candidates, key=lambda name: (ready[name].mean, name))
                if best != static_choice:
                    chosen, reason, source = best, "observed", "observed"

        eps_used = eps_requested
        # An explicit options["epsilon"] is a caller contract, never tuned.
        if adaptive and chosen != "IntCov" and "epsilon" not in options:
            tuned = self._tune_eps(stats, chosen, eps_requested)
            if tuned != eps_requested:
                eps_used, reason, source = tuned, "eps_tuned", "observed"

        # Exactly the index's historical setdefault semantics: explicit
        # options pass through untouched, defaults fill the gaps.
        params = dict(options)
        if chosen != "IntCov":
            params.setdefault("epsilon", float(eps_used))
            params.setdefault("seed", seed_effective)
        plan_params = tuple(sorted(params.items(), key=lambda item: item[0]))

        chosen_est = self.estimator.estimate(
            stats.dataset,
            chosen,
            stats.k,
            eps=None if chosen == "IntCov" else eps_used,
        )
        if chosen_est is not None and chosen_est.count >= 1:
            predicted, source = chosen_est.mean, "observed"
        else:
            predicted = predict_cost(stats, chosen, eps=eps_used)

        candidate_rows = []
        for name in candidates:
            est = estimates.get(name)
            if est is not None:
                candidate_rows.append((name, est.mean, "observed"))
            else:
                candidate_rows.append(
                    (
                        name,
                        predict_cost(
                            stats,
                            name,
                            eps=eps_used if name != "IntCov" else eps_requested,
                        ),
                        "analytic",
                    )
                )

        plan = Plan(
            dataset=stats.dataset,
            algorithm=chosen,
            params=plan_params,
            predicted_cost_s=float(predicted),
            reason=reason,
            source=source,
            stats=stats,
            candidates=tuple(candidate_rows),
        )
        if record:
            self._record(plan)
        return plan

    def resolve(
        self,
        skyline,
        constraint,
        algorithm: str = "auto",
        *,
        dataset: str = "",
        eps: float = 0.02,
        record: bool = False,
    ) -> str:
        """The concrete algorithm name a query would run under.

        The planner-backed replacement for scattered ``resolve_algorithm``
        call sites: same signature shape, same error behavior, but the
        decision flows through :meth:`plan` so dispatch policy lives in
        exactly one place.
        """
        return self.plan(
            skyline,
            constraint,
            algorithm=algorithm,
            dataset=dataset,
            eps=eps,
            record=record,
        ).algorithm

    def _candidates(self, stats: InstanceStats, static_choice: str) -> tuple:
        if stats.dim == 2 and stats.dp_states <= DP_STATE_LIMIT:
            return ("IntCov", "BiGreedy+")
        return (static_choice,)

    def _tune_eps(self, stats: InstanceStats, algorithm: str, eps: float) -> float:
        """Walk eps up the ladder while observed cost exceeds the budget.

        Stateless per plan: the walk restarts from the requested eps each
        time, stepping coarser only while the current rung has a mature,
        over-budget estimate.  The first rung without data is *probed*
        (chosen so it can accumulate observations); a rung within budget
        ends the walk.  Queue pressure tightens the budget, so a deep
        backlog steps coarser sooner.
        """
        target = self.config.target_p99_s
        if target is None:
            return eps
        budget = target / (1.0 + stats.queue_depth / _PRESSURE_SCALE)
        current = float(eps)
        while True:
            est = self.estimator.estimate(
                stats.dataset, algorithm, stats.k, eps=current
            )
            if (
                est is None
                or est.count < self.config.min_observations
                or est.mean <= budget
            ):
                return current
            coarser = [e for e in self.config.eps_ladder if e > current]
            if not coarser:
                return current
            current = coarser[0]

    # ------------------------------------------------------------------ #
    # feedback + accounting
    # ------------------------------------------------------------------ #

    def observe(
        self, dataset: str, algorithm: str, k: int, seconds: float, *, eps=None
    ) -> None:
        """Feed one measured solve (the gateway's ``observe_solve`` twin)."""
        self.estimator.observe(
            dataset, algorithm, k, seconds, eps=None if algorithm == "IntCov" else eps
        )

    def note_queue_depth(self, dataset: str, depth: int) -> None:
        """Record the current backlog; used when a plan call omits it."""
        with self._lock:
            self._queue_depths[str(dataset)] = max(0, int(depth))

    def _record(self, plan: Plan) -> None:
        with self._lock:
            key = (plan.algorithm, plan.reason)
            self._counters[key] = self._counters.get(key, 0) + 1
            self._recent.append(plan.to_dict())

    def plan_counters(self) -> dict:
        """``{(algorithm, reason): count}`` of recorded decisions."""
        with self._lock:
            return dict(self._counters)

    def counters_export(self) -> list:
        """Sorted JSON-ready rows for the Prometheus exposition."""
        with self._lock:
            return [
                {"algorithm": algorithm, "reason": reason, "count": count}
                for (algorithm, reason), count in sorted(self._counters.items())
            ]

    def stats(self) -> dict:
        """JSON-ready planner state (``/v1/metrics`` and CLI surface)."""
        with self._lock:
            recent = list(self._recent)
            counters = [
                {"algorithm": algorithm, "reason": reason, "count": count}
                for (algorithm, reason), count in sorted(self._counters.items())
            ]
        return {
            "config": self.config.to_dict(),
            "plans": counters,
            "observations": self.estimator.observations(),
            "recent": recent,
        }


_DEFAULT_PLANNER = Planner()


def default_planner() -> Planner:
    """The process-wide static planner.

    The shared entry point for code paths without a serving index (the
    CLI's cold passes, the benchmark oracles): one place resolves
    dispatch, with the static config that reproduces ``resolve_algorithm``
    exactly.
    """
    return _DEFAULT_PLANNER
