"""Adaptive query planner: cost-model dispatch with live latency feedback.

The package turns solver dispatch into a first-class, observable
decision.  :class:`Planner` produces :class:`Plan` values — frozen,
replayable records of exactly which algorithm and parameters run — from
:class:`InstanceStats` (what the instance looks like), an analytic
:func:`predict_cost` model (how expensive each candidate should be), and
a :class:`CostEstimator` of live observed costs (how expensive each
candidate actually is, per dataset / algorithm / k-bucket / eps rung).

See ``docs/PLANNER.md`` for the full design; the short version:
``static`` mode (the default) is byte-for-byte today's
``resolve_algorithm`` dispatch, and ``adaptive`` mode only ever chooses
*which exact configuration* runs, so planned answers stay bit-identical
to the same configuration run by hand.
"""

from .cost import predict_cost, predict_costs
from .feedback import CostEstimate, CostEstimator, k_bucket
from .plan import Plan, Planner, PlannerConfig, default_planner
from .stats import InstanceStats, instance_stats

__all__ = [
    "Plan",
    "Planner",
    "PlannerConfig",
    "InstanceStats",
    "instance_stats",
    "predict_cost",
    "predict_costs",
    "CostEstimate",
    "CostEstimator",
    "k_bucket",
    "default_planner",
]
