"""Deterministic analytic cost model for the FairHMS solvers.

:func:`predict_cost` maps an :class:`~repro.planner.stats.InstanceStats`
and a concrete algorithm name to a predicted wall-clock cost in seconds.
The model is a calibrated asymptotic estimate, not a measurement — its
job is ordering, not accuracy:

* the :class:`~repro.service.warmup.Warmer` primes the most expensive
  predicted work first, so an interrupted warm-up pass already shaved
  the worst of the cold tail;
* every recorded :class:`~repro.planner.plan.Plan` carries the predicted
  cost of the configuration it chose, so a decision is explainable after
  the fact;
* with **no observations** the planner never dispatches *on* these
  numbers — the cold path is exactly ``resolve_algorithm``'s static rule
  (see :class:`~repro.planner.plan.Planner`), so the analytic model can
  be re-calibrated freely without moving any answer.

Costs decompose into the dataset-level build a cold cache pays once
(IntCov's envelope + ``O(n^2)`` candidate enumeration; a BiGreedy
``(m, n)`` score matrix) and the per-solve work, scaled by constants
calibrated against the repo's own bench reports on commodity hardware.
Deterministic by construction: same stats, same numbers.
"""

from __future__ import annotations

import math

from ..core.bigreedy import default_net_size
from .stats import InstanceStats

__all__ = ["predict_cost", "predict_costs"]

# Calibration constants (seconds per unit of asymptotic work).  Order of
# magnitude from BENCH_serving/BENCH_server measurements: an n=1500 2-D
# cold geometry build lands around tens of milliseconds, a warm IntCov
# solve around a millisecond, a BiGreedy+ solve a few milliseconds.
_GEOMETRY_UNIT = 2.0e-8  # candidate-MHR enumeration, ~n^2 vectorized
_ENVELOPE_UNIT = 3.0e-7  # upper-envelope construction, ~n log n
_SEARCH_UNIT = 1.5e-7  # tau-descent work per candidate per step
_MATRIX_UNIT = 6.0e-9  # (m, n) score-ratio matrix build
_GREEDY_UNIT = 2.5e-8  # greedy sweep work per direction per step
_FLOOR_S = 1.0e-5  # no solve is ever predicted below this


def _intcov_cost(stats: InstanceStats) -> float:
    n = max(1, stats.n)
    build = 0.0
    if not stats.warm_geometry:
        build = _GEOMETRY_UNIT * n * n + _ENVELOPE_UNIT * n * math.log2(n + 1)
    # Tau descent: ~log2(candidates) galloping steps, each scanning the
    # interval structure once per group bound.
    steps = math.log2(n + 1) + 1.0
    search = _SEARCH_UNIT * n * max(1, stats.groups) * steps
    return build + search


def _bigreedy_cost(stats: InstanceStats, *, eps: float, plus: bool) -> float:
    n = max(1, stats.n)
    m = default_net_size(max(1, stats.k), max(1, stats.dim))
    build = 0.0 if stats.warm_engines > 0 else _MATRIX_UNIT * m * n
    # Cap search: ~log(1/eps) bisection rounds, each running a greedy
    # sweep of k selections over the m-direction net; BiGreedy+ adds a
    # refinement pass on top (a constant-factor, not a new asymptotic).
    eps = min(max(float(eps), 1e-4), 1.0)
    rounds = math.log2(1.0 / eps) + 1.0
    sweep = _GREEDY_UNIT * m * max(1, stats.k) * rounds
    if plus:
        sweep *= 1.5
    return build + sweep


def predict_cost(stats: InstanceStats, algorithm: str, *, eps: float = 0.02) -> float:
    """Predicted wall-clock seconds for running ``algorithm`` on ``stats``.

    Raises:
        ValueError: for an unknown algorithm name.
    """
    if algorithm == "IntCov":
        cost = _intcov_cost(stats)
    elif algorithm == "BiGreedy":
        cost = _bigreedy_cost(stats, eps=eps, plus=False)
    elif algorithm == "BiGreedy+":
        cost = _bigreedy_cost(stats, eps=eps, plus=True)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return max(_FLOOR_S, cost)


def predict_costs(stats: InstanceStats, algorithms, *, eps: float = 0.02) -> dict:
    """``{algorithm: predicted seconds}`` for several candidates at once."""
    return {a: predict_cost(stats, a, eps=eps) for a in algorithms}
