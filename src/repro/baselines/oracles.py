"""Witness-direction oracles shared by the Greedy and HS baselines.

Both baselines repeatedly ask questions about the current selection:

* Greedy: *which direction is worst for S?*
* HS: *is there any direction where S falls below the happiness target?*

Answering either exactly costs one LP per maxima candidate.  The oracle
answers from a cached dense direction net first — if a net direction
already witnesses the violation, no LP is needed — and falls back to the
LP scan (with early exit for the existential question) only to certify
"no violation" or to refine the worst direction.  The LP refinement runs
on the best-response points of the worst net directions, so the returned
"worst" direction is exact whenever the true worst direction's best
response is among them (empirically almost always).
"""

from __future__ import annotations

import numpy as np

from ..geometry.deltanet import sample_directions
from ..geometry.envelope import upper_envelope
from ..geometry.hull import maxima_candidates
from ..geometry.lp import solve_regret_lp
from ..hms.exact import critical_lambdas_2d

__all__ = ["DirectionOracle"]


class DirectionOracle:
    """Cached direction queries against a fixed database.

    Args:
        points: the database ``(n, d)``.
        net_size: size of the cached direction net (``d > 2`` only).
        refine: how many worst net directions get LP refinement.
        seed: net sampling seed.
    """

    def __init__(self, points, *, net_size: int = 1024, refine: int = 16, seed: int = 0):
        self.points = np.asarray(points, dtype=np.float64)
        self.d = self.points.shape[1]
        self.refine = refine
        self._candidates: np.ndarray | None = None
        if self.d == 2:
            self._env = upper_envelope(self.points)
            self.net = None
            self.top = None
            self.argmax = None
        else:
            self._env = None
            self.net = sample_directions(net_size, self.d, seed)
            utility = self.net @ self.points.T
            self.top = utility.max(axis=1)
            self.argmax = np.asarray(utility.argmax(axis=1))

    @property
    def candidates(self) -> np.ndarray:
        if self._candidates is None:
            self._candidates = maxima_candidates(self.points)
        return self._candidates

    # ------------------------------------------------------------------ #

    def _net_ratios(self, S: np.ndarray) -> np.ndarray:
        return (self.net @ S.T).max(axis=1) / self.top

    def _worst_2d(self, S: np.ndarray) -> tuple[np.ndarray, float]:
        lams = critical_lambdas_2d(S, self.points)
        env_s = upper_envelope(S)
        ratios = np.asarray(env_s.value(lams)) / np.asarray(self._env.value(lams))
        at = int(np.argmin(ratios))
        lam = float(lams[at])
        return np.array([lam, 1.0 - lam]), float(ratios[at])

    def worst_direction(self, S) -> tuple[np.ndarray, float]:
        """The (refined) worst direction for ``S`` and its happiness ratio.

        Exact in 2-D (critical-lambda sweep); for higher dimensions the
        net's worst direction is refined with LPs on the best responses of
        the ``refine`` worst net directions.
        """
        S = np.asarray(S, dtype=np.float64)
        if self.d == 2:
            return self._worst_2d(S)
        ratios = self._net_ratios(S)
        order = np.argsort(ratios)
        best_dir = self.net[order[0]]
        best_hr = float(ratios[order[0]])
        witnesses = np.unique(self.argmax[order[: self.refine]])
        for q_idx in witnesses:
            value, direction = solve_regret_lp(self.points[q_idx], S)
            if direction is not None and 1.0 - value < best_hr:
                best_hr = 1.0 - value
                best_dir = direction / max(np.linalg.norm(direction), 1e-12)
        return best_dir, best_hr

    def violated_direction(self, S, eps: float, *, certify: bool = False) -> np.ndarray | None:
        """A direction where ``hr(u, S) < 1 - eps``, or None.

        Net-first: the worst net direction is returned immediately when it
        violates.  With ``certify=True`` a "None" answer is confirmed by an
        LP scan over every maxima candidate (early exit on the first
        violation) — exact but one LP per candidate; without it the dense
        net is trusted, which is how the fast benchmark configuration runs.
        """
        S = np.asarray(S, dtype=np.float64)
        if self.d == 2:
            direction, hr = self._worst_2d(S)
            return direction if hr < 1.0 - eps - 1e-9 else None
        ratios = self._net_ratios(S)
        worst = int(np.argmin(ratios))
        if ratios[worst] < 1.0 - eps - 1e-9:
            return self.net[worst]
        if not certify:
            return None
        for q_idx in self.candidates:
            value, direction = solve_regret_lp(self.points[q_idx], S)
            if direction is not None and value > eps + 1e-9:
                return direction / max(np.linalg.norm(direction), 1e-12)
        return None
