"""Fair adaptations of the unconstrained baselines (paper Section 5.1).

Two adaptation schemes are evaluated in the paper:

* ``G-<name>``: split the budget ``k`` into per-group quotas ``k_c`` within
  ``[l_c, h_c]``, run the unconstrained baseline once per group on that
  group's tuples, and return the union.  Cheap, trivially fair, but the
  per-group runs are blind to each other, so the union carries redundant
  tuples — the quality gap behind Figures 5-7.
* ``F-Greedy``: the matroid greedy of El Halabi et al. applied directly to
  the MHR objective — each step adds the point maximizing ``mhr(S + p)``
  among the groups the fairness matroid still accepts.  The paper evaluates
  marginals with exact linear programs; we default to the exact 2-D sweep
  when ``d = 2`` and a dense evaluation net otherwise, with
  ``marginals="lp"`` restoring the paper's exact variant (see DESIGN.md,
  substitution 3).
"""

from __future__ import annotations

import numpy as np

from ..core.bigreedy import default_net_size
from ..core.solution import Solution
from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..fairness.matroid import FairnessMatroid
from ..geometry.deltanet import sample_directions
from ..geometry.envelope import upper_envelope
from ..geometry.hull import maxima_candidates
from ..hms.exact import mhr_exact, mhr_exact_2d_with_env
from ..hms.truncated import TruncatedEngine
from .dmm import dmm
from .greedy import rdp_greedy
from .hs import hitting_set
from .sphere import sphere

__all__ = [
    "split_quota",
    "adapt_per_group",
    "f_greedy",
    "BASELINES",
    "FAIR_BASELINES",
]

#: The unconstrained baselines, keyed by their paper names.
BASELINES = {
    "Greedy": rdp_greedy,
    "DMM": dmm,
    "Sphere": sphere,
    "HS": hitting_set,
}


def split_quota(constraint: FairnessConstraint, group_sizes) -> np.ndarray:
    """Per-group solution sizes ``k_c`` for the ``G-*`` adaptations.

    Starts every group at its lower bound and distributes the remaining
    budget by largest proportional remainder, never exceeding ``h_c`` or
    the group's population.
    """
    sizes = np.asarray(group_sizes, dtype=np.int64)
    if not constraint.is_feasible_for(sizes):
        raise ValueError("constraint infeasible for these group sizes")
    quota = constraint.lower.astype(np.int64).copy()
    capacity = np.minimum(constraint.upper, sizes)
    remaining = constraint.k - int(quota.sum())
    shares = sizes / sizes.sum()
    while remaining > 0:
        room = capacity - quota
        eligible = np.nonzero(room > 0)[0]
        # Largest-remainder: most underfilled relative to proportional share.
        deficit = shares[eligible] * constraint.k - quota[eligible]
        pick = int(eligible[int(np.argmax(deficit))])
        quota[pick] += 1
        remaining -= 1
    return quota


def adapt_per_group(
    base_name: str,
    dataset: Dataset,
    constraint: FairnessConstraint,
    **kwargs,
) -> Solution:
    """Run ``G-<base_name>``: the per-group union adaptation.

    Raises:
        ValueError: when the base algorithm cannot run at some group's
            quota (e.g. DMM/Sphere need ``k_c >= d``) — matching the paper,
            where those series are simply absent.
    """
    if base_name not in BASELINES:
        raise ValueError(f"unknown baseline {base_name!r}")
    base = BASELINES[base_name]
    quota = split_quota(constraint, dataset.group_sizes)
    union: list[int] = []
    for c in range(dataset.num_groups):
        k_c = int(quota[c])
        if k_c == 0:
            continue
        rows = dataset.group_indices(c)
        sub = dataset.subset(rows)
        local = base(sub, k_c, **kwargs)
        union.extend(int(rows[i]) for i in local.indices)
    return Solution(
        indices=np.asarray(sorted(union), dtype=np.int64),
        dataset=dataset,
        algorithm=f"G-{base_name}",
        constraint=constraint,
        stats={"quota": quota.tolist()},
    )


def _marginal_values_net(engine, best, candidates):
    """min-ratio of S+p per candidate, vectorized on the evaluation net."""
    cols = np.maximum(engine.ratios[:, candidates], best[:, None])
    return cols.min(axis=0)


def f_greedy(
    dataset: Dataset,
    constraint: FairnessConstraint,
    *,
    marginals: str = "auto",
    net_factor: int = 4,
    seed: int = 0,
) -> Solution:
    """F-Greedy: matroid greedy on the exact(-estimated) MHR objective.

    Args:
        dataset: input dataset (per-group skyline recommended).
        constraint: fairness bounds with solution size ``k``.
        marginals: ``"auto"`` (exact sweep in 2-D, dense net otherwise),
            ``"sweep"`` (force 2-D exact), ``"net"`` (force net), or
            ``"lp"`` (the paper's exact LPs; slow, small inputs only).
        net_factor: evaluation-net size multiplier over BiGreedy's default
            ``10 k d`` (the finer estimate is what lets F-Greedy edge out
            BiGreedy at large ``k`` in some panels, as in the paper).
        seed: net-sampling seed.
    """
    if marginals not in ("auto", "sweep", "net", "lp"):
        raise ValueError(f"invalid marginals mode {marginals!r}")
    if not constraint.is_feasible_for(dataset.group_sizes):
        raise ValueError("fairness constraint infeasible for this dataset")
    if marginals == "auto":
        marginals = "sweep" if dataset.dim == 2 else "net"
    if marginals == "sweep" and dataset.dim != 2:
        raise ValueError("the sweep marginal evaluator requires d = 2")

    points = dataset.points
    matroid = FairnessMatroid(constraint, dataset.labels)
    counts = np.zeros(dataset.num_groups, dtype=np.int64)
    selected: list[int] = []

    engine = None
    best = None
    lp_candidates = None
    env_d = None
    if marginals == "net":
        m = net_factor * default_net_size(constraint.k, dataset.dim)
        net = sample_directions(m, dataset.dim, seed)
        engine = TruncatedEngine(points, net)
        best = np.zeros(engine.m)
    elif marginals == "lp":
        lp_candidates = maxima_candidates(points)
    elif marginals == "sweep":
        env_d = upper_envelope(points)

    while True:
        addable = matroid.addable_groups(counts)
        if addable.size == 0:
            break
        addable_mask = np.zeros(dataset.num_groups, dtype=bool)
        addable_mask[addable] = True
        in_sel = np.zeros(dataset.n, dtype=bool)
        if selected:
            in_sel[np.asarray(selected, dtype=np.int64)] = True
        candidates = np.nonzero(addable_mask[dataset.labels] & ~in_sel)[0]
        if candidates.size == 0:
            break
        if marginals == "net":
            values = _marginal_values_net(engine, best, candidates)
        elif marginals == "sweep":
            values = np.array(
                [
                    mhr_exact_2d_with_env(points[selected + [int(c)]], env_d)
                    for c in candidates
                ]
            )
        else:  # lp
            values = np.array(
                [
                    mhr_exact(
                        points[selected + [int(c)]],
                        points,
                        candidates=lp_candidates,
                    )
                    for c in candidates
                ]
            )
        pick = int(candidates[int(np.argmax(values))])
        selected.append(pick)
        counts[dataset.labels[pick]] += 1
        if marginals == "net":
            best = np.maximum(best, engine.ratios[:, pick])
    return Solution(
        indices=np.asarray(sorted(selected), dtype=np.int64),
        dataset=dataset,
        algorithm="F-Greedy",
        constraint=constraint,
        stats={"marginals": marginals},
    )


def _make_group_adapter(name):
    def run(dataset: Dataset, constraint: FairnessConstraint, **kwargs) -> Solution:
        return adapt_per_group(name, dataset, constraint, **kwargs)

    run.__name__ = f"g_{name.lower()}"
    run.__doc__ = f"G-{name}: per-group adaptation of {name} (see adapt_per_group)."
    return run


#: Fairness-aware baselines, keyed by their paper names.
FAIR_BASELINES = {
    "G-Greedy": _make_group_adapter("Greedy"),
    "G-DMM": _make_group_adapter("DMM"),
    "G-Sphere": _make_group_adapter("Sphere"),
    "G-HS": _make_group_adapter("HS"),
    "F-Greedy": f_greedy,
}
