"""RDP-Greedy (Nanongkai et al., VLDB 2010), the classic RMS heuristic.

Start from the best point for a reference direction, then repeatedly find
the direction where the current selection is *most regretful* and add the
database point that direction loves most.  The HMS formulation (Qiu et al.
2018) is identical with happiness in place of regret.

The worst-direction step is exact in 2-D (critical-lambda sweep).  In
higher dimensions ``oracle="hybrid"`` (default) uses the cached
net-plus-LP-refinement oracle of :mod:`repro.baselines.oracles` —
orders of magnitude faster than the paper's per-candidate LP scan at a
negligible quality difference — while ``oracle="lp"`` restores the exact
scan.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..core.solution import Solution
from ..data.dataset import Dataset
from ..geometry.lp import worst_direction_lp
from .base import make_solution, pad_unconstrained
from .oracles import DirectionOracle

__all__ = ["rdp_greedy"]


def rdp_greedy(
    dataset: Dataset,
    k: int,
    *,
    oracle: str = "hybrid",
    direction_oracle: DirectionOracle | None = None,
) -> Solution:
    """Run RDP-Greedy for size ``k`` (unconstrained).

    Args:
        dataset: input dataset (skyline recommended).
        oracle: ``"hybrid"`` (net + LP refinement; exact in 2-D) or
            ``"lp"`` (the exact per-candidate LP scan).
        direction_oracle: optional prebuilt oracle (reused by the harness
            across calls on the same dataset).

    Returns:
        An unconstrained :class:`Solution` named ``"Greedy"``.
    """
    k = check_positive_int(k, name="k")
    if k > dataset.n:
        raise ValueError(f"k={k} exceeds dataset size {dataset.n}")
    if oracle not in ("hybrid", "lp"):
        raise ValueError(f"oracle must be 'hybrid' or 'lp', got {oracle!r}")
    points = dataset.points
    helper = direction_oracle or DirectionOracle(points)

    # Seed with the best point for the centroid direction.
    centroid = np.ones(dataset.dim)
    selected = [int(np.argmax(points @ centroid))]
    while len(selected) < k:
        S = points[np.asarray(selected, dtype=np.int64)]
        if oracle == "hybrid" or dataset.dim == 2:
            direction, worst_hr = helper.worst_direction(S)
        else:
            direction, worst_hr = worst_direction_lp(
                S, points, candidates=helper.candidates
            )
        if worst_hr >= 1.0 - 1e-12:
            break  # already perfect everywhere; padding fills the rest
        scores = points @ direction
        order = np.argsort(-scores, kind="stable")
        added = False
        for idx in order:
            if int(idx) not in selected:
                selected.append(int(idx))
                added = True
                break
        if not added:  # pragma: no cover - k <= n guards this
            break
    full = pad_unconstrained(selected, dataset, k)
    return make_solution(full, dataset, "Greedy", stats={"iterations": len(selected)})
