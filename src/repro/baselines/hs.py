"""HS: the hitting-set RMS algorithm (Agarwal et al. 2017; Kumar & Sintos 2018).

For a fixed happiness target ``1 - eps`` the algorithm alternates between

1. solving a (greedy) hitting set over the *witness directions* collected
   so far — pick points so every witness sees a happiness ratio of at
   least ``1 - eps`` — and
2. asking an oracle for a direction the current pick still fails; that
   direction joins the witnesses.

The loop ends when no violated direction exists (the oracle certifies
this with an LP scan over the maxima candidates; see
:mod:`repro.baselines.oracles`).  An outer binary search finds the
smallest ``eps`` whose hitting set fits in ``k`` points.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..core.solution import Solution
from ..data.dataset import Dataset
from .base import greedy_set_cover, make_solution, pad_unconstrained
from .oracles import DirectionOracle

__all__ = ["hitting_set"]


def _hitting_set_for_eps(
    points: np.ndarray,
    k: int,
    eps: float,
    oracle: DirectionOracle,
    witnesses: list,
    max_iterations: int,
    certify: bool,
) -> list[int] | None:
    """Points (<= k) achieving ``mhr >= 1 - eps``, or None if not found.

    ``witnesses`` is shared across calls (warm start): directions that were
    hard for one ``eps`` are usually hard for the next one too.
    """
    for _ in range(max_iterations):
        W = np.asarray(witnesses)
        utility = W @ points.T
        top = utility.max(axis=1, keepdims=True)
        covers = utility >= (1.0 - eps) * top - 1e-12
        pick = greedy_set_cover(covers, max_sets=k)
        if pick is None:
            return None
        S = points[np.asarray(pick, dtype=np.int64)]
        violated = oracle.violated_direction(S, eps, certify=certify)
        if violated is None:
            return pick
        witnesses.append(violated)
    return None  # did not converge within budget: treat as infeasible


def hitting_set(
    dataset: Dataset,
    k: int,
    *,
    tolerance: float = 2e-3,
    max_iterations: int = 40,
    direction_oracle: DirectionOracle | None = None,
    certify: bool = False,
) -> Solution:
    """Run HS for size ``k`` (unconstrained).

    Args:
        dataset: input dataset (skyline recommended).
        k: solution size.
        tolerance: binary-search width on ``eps``.
        max_iterations: witness-generation rounds per ``eps``.
        direction_oracle: optional prebuilt oracle (reused by the harness).
        certify: confirm "no violated direction" with the exact LP scan
            (exact but much slower; the dense oracle net is the default).
    """
    k = check_positive_int(k, name="k")
    if k > dataset.n:
        raise ValueError(f"k={k} exceeds dataset size {dataset.n}")
    points = dataset.points
    oracle = direction_oracle or DirectionOracle(points)

    d = dataset.dim
    witnesses: list = list(np.eye(d)) + [np.ones(d) / np.sqrt(d)]
    lo, hi = 0.0, 1.0
    best_pick: list[int] | None = None
    best_eps = 1.0
    while hi - lo > tolerance:
        eps = (lo + hi) / 2.0
        pick = _hitting_set_for_eps(
            points, k, eps, oracle, witnesses, max_iterations, certify
        )
        if pick is None:
            lo = eps
        else:
            best_pick, best_eps = pick, eps
            hi = eps
    if best_pick is None:
        # Even eps ~ 1 failed within the iteration budget: fall back to the
        # best single point and padding.
        best_pick = [int(np.argmax(points.sum(axis=1)))]
    full = pad_unconstrained(best_pick, dataset, k)
    return make_solution(
        full, dataset, "HS", stats={"eps": best_eps, "core_size": len(best_pick)}
    )
