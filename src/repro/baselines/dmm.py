"""DMM: discretized matrix min-max RMS (Asudeh et al., SIGMOD 2017).

DMM discretizes the utility space into a finite direction set, tabulates
every point's happiness ratio at every direction, and binary-searches the
largest threshold ``tau`` for which at most ``k`` points cover all
directions (a point covers a direction when its ratio reaches ``tau``
there).  The cover step is the classic set-cover greedy — the original
paper's DMM-Greedy flavor.

The original discretizes with a uniform grid per angle-coordinate, which is
exactly our 2-D grid; for ``d > 2`` we use the same uniform random
direction sampling the rest of the library uses (seeded, so deterministic).
"""

from __future__ import annotations

from .._validation import check_positive_int
from ..core.solution import Solution
from ..data.dataset import Dataset
from ..geometry.deltanet import grid_directions_2d, sample_directions
from ..hms.ratios import scores
from .base import greedy_set_cover, make_solution, pad_unconstrained

__all__ = ["dmm"]

#: DMM keeps the full (directions x points) ratio matrix in memory; the
#: original paper reports running out of memory beyond d = 7, which we
#: mirror with an explicit cap instead of thrashing.
DMM_MAX_DIM = 7


def dmm(
    dataset: Dataset,
    k: int,
    *,
    num_directions: int | None = None,
    seed: int = 0,
    tolerance: float = 1e-6,
) -> Solution:
    """Run DMM for size ``k`` (unconstrained).

    Args:
        dataset: input dataset (skyline recommended).
        k: solution size; DMM requires ``k >= d`` (as in the paper, where
            DMM/Sphere results are omitted for ``k < d``).
        num_directions: discretization size (default ``20 k d``).
        seed: direction-sampling seed for ``d > 2``.
        tolerance: binary-search stopping width on the threshold.

    Raises:
        ValueError: if ``k < d`` or ``d > DMM_MAX_DIM`` (mirrors the
            original implementation's applicability limits).
    """
    k = check_positive_int(k, name="k")
    if k > dataset.n:
        raise ValueError(f"k={k} exceeds dataset size {dataset.n}")
    if k < dataset.dim:
        raise ValueError(f"DMM requires k >= d (k={k}, d={dataset.dim})")
    if dataset.dim > DMM_MAX_DIM:
        raise ValueError(
            f"DMM does not scale beyond d={DMM_MAX_DIM} (got d={dataset.dim})"
        )
    m = num_directions or 20 * k * dataset.dim
    if dataset.dim == 2:
        directions = grid_directions_2d(m)
    else:
        directions = sample_directions(m, dataset.dim, seed)
    utility = scores(dataset.points, directions)  # (m, n)
    top = utility.max(axis=1, keepdims=True)
    ratios = utility / top

    # Binary search the largest coverable threshold over the matrix values.
    lo, hi = 0.0, 1.0
    best_cover: list[int] | None = None
    # tau = 0 is always coverable by any single point with positive scores,
    # so the loop below always sets best_cover at least once.
    while hi - lo > tolerance:
        tau = (lo + hi) / 2.0
        cover = greedy_set_cover(ratios >= tau, max_sets=k)
        if cover is None:
            hi = tau
        else:
            best_cover = cover
            lo = tau
    if best_cover is None:  # pragma: no cover - defensive
        best_cover = greedy_set_cover(ratios >= 0.0, max_sets=k) or []
    full = pad_unconstrained(best_cover, dataset, k)
    return make_solution(
        full,
        dataset,
        "DMM",
        stats={"num_directions": int(m), "threshold": lo, "cover_size": len(best_cover)},
    )
