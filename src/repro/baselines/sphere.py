"""Sphere: the epsilon-kernel RMS algorithm (Xie et al., SIGMOD 2018).

Reproduced at the level the paper's evaluation exercises (see DESIGN.md,
substitution 4): Sphere first takes the ``d`` "boundary" points — the best
point per dimension — then fills the remaining ``k - d`` slots with the
best response to directions spread evenly over ``S^{d-1}_+`` (the
construction behind its epsilon-kernel guarantee).  Its signature behaviour
in the paper — the fastest baseline, weak when ``k`` is close to ``d``
because the solution is mostly extreme points — follows directly.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..core.solution import Solution
from ..data.dataset import Dataset
from ..geometry.deltanet import grid_directions_2d, sample_directions
from .base import make_solution, pad_unconstrained

__all__ = ["sphere"]


def sphere(
    dataset: Dataset,
    k: int,
    *,
    oversample: int = 8,
    seed: int = 0,
) -> Solution:
    """Run Sphere for size ``k`` (unconstrained).

    Args:
        dataset: input dataset (skyline recommended).
        k: solution size; Sphere requires ``k >= d`` (the boundary points
          alone need ``d`` slots), as in the paper where results are
          omitted otherwise.
        oversample: how many candidate directions per remaining slot; more
            directions give better coverage of the sphere at linear cost.
        seed: direction-sampling seed for ``d > 2``.
    """
    k = check_positive_int(k, name="k")
    if k > dataset.n:
        raise ValueError(f"k={k} exceeds dataset size {dataset.n}")
    if k < dataset.dim:
        raise ValueError(f"Sphere requires k >= d (k={k}, d={dataset.dim})")
    points = dataset.points
    # Step 1: boundary (extreme) points, one per dimension.
    selected: list[int] = []
    for j in range(dataset.dim):
        best = int(np.argmax(points[:, j]))
        if best not in selected:
            selected.append(best)
    # Step 2: best responses to evenly spread directions.
    remaining = k - len(selected)
    if remaining > 0:
        m = max(remaining * oversample, remaining)
        if dataset.dim == 2:
            directions = grid_directions_2d(m)
        else:
            directions = sample_directions(m, dataset.dim, seed)
        responses = np.asarray((directions @ points.T).argmax(axis=1))
        # Keep first occurrences in direction order until the budget fills.
        for idx in responses:
            if int(idx) not in selected:
                selected.append(int(idx))
                if len(selected) == k:
                    break
    full = pad_unconstrained(selected, dataset, k)
    return make_solution(
        full, dataset, "Sphere", stats={"boundary_points": int(dataset.dim)}
    )
