"""Shared infrastructure for the RMS/HMS baseline algorithms.

The baselines (Greedy, DMM, Sphere, HS) are *unconstrained*: they receive a
dataset and a size ``k`` and know nothing about fairness.  Their fair
adaptations live in :mod:`repro.baselines.adapted`.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..core.solution import Solution
from ..data.dataset import Dataset

__all__ = ["pad_unconstrained", "greedy_set_cover", "make_solution"]


def pad_unconstrained(selected, dataset: Dataset, k: int) -> list[int]:
    """Top a selection up to ``k`` tuples with the best coordinate sums.

    Baselines occasionally return fewer than ``k`` distinct tuples (e.g.
    Sphere when several directions share a maximizer); the convention in
    the RMS literature is to fill the remaining slots with high-scoring
    leftovers, which can only improve the MHR.
    """
    k = check_positive_int(k, name="k")
    if k > dataset.n:
        raise ValueError(f"k={k} exceeds dataset size {dataset.n}")
    chosen = list(dict.fromkeys(int(i) for i in selected))  # stable dedupe
    if len(chosen) > k:
        raise ValueError(f"selection already larger than k={k}")
    if len(chosen) < k:
        seen = set(chosen)
        order = np.argsort(-dataset.points.sum(axis=1), kind="stable")
        for idx in order:
            if int(idx) not in seen:
                chosen.append(int(idx))
                seen.add(int(idx))
                if len(chosen) == k:
                    break
    return chosen


def greedy_set_cover(covers: np.ndarray, *, max_sets: int | None = None) -> list[int] | None:
    """Classic greedy set cover over a boolean matrix.

    Args:
        covers: boolean ``(universe, sets)`` matrix; ``covers[j, i]`` means
            set ``i`` covers element ``j``.
        max_sets: stop and report failure once more than this many sets
            would be needed.

    Returns:
        Column indices covering every row, or ``None`` if impossible (some
        row uncoverable) or the ``max_sets`` budget is exceeded.
    """
    if covers.ndim != 2:
        raise ValueError("covers must be a 2-D boolean matrix")
    universe, num_sets = covers.shape
    if universe == 0:
        return []
    if not covers.any(axis=1).all():
        return None
    uncovered = np.ones(universe, dtype=bool)
    chosen: list[int] = []
    budget = max_sets if max_sets is not None else num_sets
    while uncovered.any():
        if len(chosen) >= budget:
            return None
        gains = covers[uncovered].sum(axis=0)
        pick = int(np.argmax(gains))
        if gains[pick] == 0:  # pragma: no cover - guarded by any() check
            return None
        chosen.append(pick)
        uncovered &= ~covers[:, pick]
    return chosen


def make_solution(
    indices, dataset: Dataset, algorithm: str, stats: dict | None = None
) -> Solution:
    """Uniform Solution construction for unconstrained baselines."""
    return Solution(
        indices=np.asarray(sorted(int(i) for i in indices), dtype=np.int64),
        dataset=dataset,
        algorithm=algorithm,
        constraint=None,
        stats=stats or {},
    )
