"""RMS/HMS baseline algorithms and their fair adaptations."""

from .adapted import (
    BASELINES,
    FAIR_BASELINES,
    adapt_per_group,
    f_greedy,
    split_quota,
)
from .base import greedy_set_cover, make_solution, pad_unconstrained
from .dmm import DMM_MAX_DIM, dmm
from .greedy import rdp_greedy
from .hs import hitting_set
from .sphere import sphere

__all__ = [
    "BASELINES",
    "DMM_MAX_DIM",
    "FAIR_BASELINES",
    "adapt_per_group",
    "dmm",
    "f_greedy",
    "greedy_set_cover",
    "hitting_set",
    "make_solution",
    "pad_unconstrained",
    "rdp_greedy",
    "sphere",
    "split_quota",
]
