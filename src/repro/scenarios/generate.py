"""Materialize scenario tenants into :class:`~repro.data.dataset.Dataset`s.

Utility matrices come from the same generator family the paper
benchmarks with — anti-correlated / independent / correlated — blended
into a single ``correlation`` knob in ``[-1, 1]``, then shaped by the
archetype's per-dimension monotone transform (``x -> x**e`` preserves
the within-dimension order, so dominance structure survives while the
marginals take on admissions- / hiring- / lending-style skew).

Group labels are sampled per attribute from the declared marginals and
combined into the product partition when a tenant declares several
attributes — the paper's multi-attribute ("G+R") intersectional
grouping, with the realistic twist that only combinations that actually
occur become groups.  The per-attribute label arrays are returned
alongside the dataset so tests can check the product partition against
the exact contingency table of the draws.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng, spawn_seeds
from ..data.dataset import Dataset
from ..data.groups import combine_partitions
from .spec import GroupAttributeSpec, ScenarioSpec, TenantSpec

__all__ = [
    "SCENARIO_SUM_SPREAD",
    "build_tenant",
    "resolved_tenant",
    "sample_attribute_labels",
    "shape_points",
    "tenant_datasets",
    "utility_points",
]

# The paper's anticorrelated() defaults to sum_spread = 0.05/n — a band
# so thin that nearly every point is a skyline member.  Scenario data
# wants a *realistic* mixture of dominated and dominating tuples, so the
# anti-correlated component uses a fixed, broader band instead.
SCENARIO_SUM_SPREAD = 0.08


def utility_points(n: int, d: int, correlation: float, seed) -> np.ndarray:
    """``n`` points in ``[0, 1]^d`` with a controllable correlation regime.

    ``correlation > 0`` uses the positively correlated generator with
    that strength; ``correlation == 0`` is independent uniform;
    ``correlation < 0`` mixes anti-correlated points in with probability
    ``|correlation|`` (a per-point mixture keeps both marginals intact,
    unlike a convex blend of coordinates).
    """
    from ..data.synthetic import anticorrelated, correlated, independent

    rng = ensure_rng(seed)
    c = float(correlation)
    if c > 0:
        return correlated(n, d, rng, strength=c)
    # Draw both components unconditionally so the stream of random draws
    # (and therefore every point) is a pure function of the seed.
    anti = anticorrelated(n, d, rng, sum_spread=SCENARIO_SUM_SPREAD)
    indep = independent(n, d, rng)
    if c == 0:
        return indep
    mask = rng.random(n) < -c
    return np.where(mask[:, None], anti, indep)


def shape_points(points: np.ndarray, exponents) -> np.ndarray:
    """Apply the archetype's per-dimension monotone skew transform."""
    exps = np.asarray(exponents, dtype=np.float64)
    d = points.shape[1]
    if exps.size < d:  # cycle the archetype exponents over extra dims
        exps = np.resize(exps, d)
    return points ** exps[None, :d]


def sample_attribute_labels(
    n: int, attr: GroupAttributeSpec, rng
) -> np.ndarray:
    """Sample one attribute's labels i.i.d. from its declared marginals."""
    p = np.asarray(attr.marginals, dtype=np.float64)
    return rng.choice(len(attr.categories), size=n, p=p / p.sum()).astype(np.int64)


def resolved_tenant(tenant: TenantSpec, defaults: dict):
    """The tenant's effective ``(dims, groups)`` after archetype defaults."""
    dims = tenant.dims if tenant.dims is not None else tuple(defaults["dims"])
    groups = tenant.groups if tenant.groups is not None else tuple(defaults["groups"])
    return dims, groups


def build_tenant(
    tenant: TenantSpec, *, archetype_defaults: dict, seed
) -> tuple[Dataset, dict]:
    """One tenant's dataset plus its per-attribute label provenance.

    Returns ``(dataset, attributes)`` where ``attributes`` maps each
    attribute name to ``{"labels": per-row category ids,
    "categories": names, "marginals": declared}`` — the raw draws behind
    the (possibly intersectional) product partition.
    """
    dims, groups = resolved_tenant(tenant, archetype_defaults)
    rng = ensure_rng(seed)
    points = utility_points(tenant.n, len(dims), tenant.correlation, rng)
    points = shape_points(points, archetype_defaults["shape"])
    per_attr = {
        attr.attribute: sample_attribute_labels(tenant.n, attr, rng)
        for attr in groups
    }
    labels, names = combine_partitions(
        *per_attr.values(), names=[attr.categories for attr in groups]
    )
    dataset = Dataset(
        points=points,
        labels=labels,
        name=tenant.name,
        group_attribute="+".join(attr.attribute for attr in groups),
        group_names=names,
    )
    attributes = {
        attr.attribute: {
            "labels": per_attr[attr.attribute],
            "categories": attr.categories,
            "marginals": attr.marginals,
            "tolerance": attr.tolerance,
        }
        for attr in groups
    }
    return dataset, attributes


def tenant_datasets(spec: ScenarioSpec) -> tuple[dict, dict]:
    """All tenant datasets for ``spec``: ``(datasets, attributes)``.

    ``datasets`` maps tenant name -> :class:`Dataset` in declaration
    order; ``attributes`` carries each tenant's per-attribute label
    provenance (see :func:`build_tenant`).  Per-tenant seeds are spawned
    from the scenario seed, so adding a phase or touching the workload
    never perturbs the data.
    """
    tenants = spec.all_tenants()
    defaults = spec.archetype_defaults()
    seeds = spawn_seeds(ensure_rng(spec.seed), len(tenants))
    datasets: dict[str, Dataset] = {}
    attributes: dict[str, dict] = {}
    for tenant, seed in zip(tenants, seeds):
        dataset, attrs = build_tenant(
            tenant, archetype_defaults=defaults, seed=seed
        )
        datasets[tenant.name] = dataset
        attributes[tenant.name] = attrs
    return datasets, attributes
