"""Config-driven scenario factory: realistic workloads for every layer.

One declarative, seeded scenario spec (TOML/JSON) materializes into
static tenant datasets, a drift/churn/burst event timeline, and an HTTP
request trace — all deterministic, all consumed identically by the unit
tests, :class:`~repro.serving.live.LiveFairHMSIndex`, the service
gateway, and ``benchmarks/bench_server.py``.  See ``docs/SCENARIOS.md``
and the pack under ``examples/scenarios/``.
"""

from .generate import build_tenant, tenant_datasets
from .replay import (
    Scenario,
    ScenarioReplayReport,
    materialize,
    register_scenario,
    replay,
    service_requests,
    write_scenario,
)
from .spec import (
    ARCHETYPES,
    GroupAttributeSpec,
    PhaseSpec,
    ScenarioSpec,
    TenantMixSpec,
    TenantSpec,
    WorkloadSpec,
    default_pack_dir,
    load_scenario,
    parse_scenario,
    resolve_scenario,
    shrink_spec,
)
from .timeline import Event, TraceRequest, build_events, build_trace

__all__ = [
    "ARCHETYPES",
    "Event",
    "GroupAttributeSpec",
    "PhaseSpec",
    "Scenario",
    "ScenarioReplayReport",
    "ScenarioSpec",
    "TenantMixSpec",
    "TenantSpec",
    "TraceRequest",
    "WorkloadSpec",
    "build_events",
    "build_tenant",
    "build_trace",
    "default_pack_dir",
    "load_scenario",
    "materialize",
    "parse_scenario",
    "register_scenario",
    "replay",
    "resolve_scenario",
    "service_requests",
    "shrink_spec",
    "tenant_datasets",
    "write_scenario",
]
