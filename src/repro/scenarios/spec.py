"""Scenario specs: a declarative TOML/JSON file -> validated dataclasses.

A *scenario* describes a realistic FairHMS deployment end to end — the
tabular archetype (admissions / hiring / lending / generic), per-tenant
utility-dimension distributions with controllable correlation, group
attributes including **intersectional** products (e.g. sex x race with
declared marginals), heavy-tailed tenant-size mixes, a **timeline** of
insert/delete phases with distribution drift and flash-crowd bursts,
and the query workload replayed against the result.  One spec file
drives everything downstream identically: static datasets for
:class:`~repro.serving.index.FairHMSIndex` / registry registration,
event streams for :class:`~repro.serving.live.LiveFairHMSIndex`, and
HTTP request traces for ``benchmarks/bench_server.py``.

Specs are fully deterministic: every random draw descends from the
single ``seed`` field, so the same file materializes byte-identical
datasets and event streams in any process (the property-test suite in
``tests/test_scenarios.py`` enforces this).

TOML layout (JSON mirrors the same structure)::

    [scenario]
    name = "admissions-intersectional"
    archetype = "admissions"          # admissions | hiring | lending | generic
    seed = 11
    description = "two campuses, sex x race constraints, drifting inserts"

    [[tenants]]
    name = "campus0"
    n = 1200
    correlation = -0.6                # -1 anti-correlated .. 0 indep .. +1 corr

      [[tenants.groups]]
      attribute = "sex"
      categories = ["female", "male"]
      marginals = [0.52, 0.48]

      [[tenants.groups]]              # a second attribute => product groups
      attribute = "race"
      categories = ["groupA", "groupB", "groupC"]
      marginals = [0.6, 0.25, 0.15]

    [mix]                             # optional: heavy-tailed tenant fleet
    count = 5
    base_n = 1500
    tail = 1.4                        # tenant i gets ~ base_n / (i+1)^tail rows
    min_n = 150

    [[phases]]                        # optional timeline (omit for static)
    ops = 120
    write_frac = 0.3                  # fraction of events that are writes
    churn = 0.5                       # fraction of writes that are deletes
    drift = 0.1                       # mean shift applied to inserted points
    burst = 1.0                       # arrival-rate multiplier (flash crowds)

    [workload]
    requests = 60
    ks = [4, 6, 8]

Unknown keys are rejected everywhere — a typo in a scenario file must
fail ``repro scenario check``, not silently change the workload.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field, fields
from pathlib import Path

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py3.10 fallback path
    tomllib = None

__all__ = [
    "ARCHETYPES",
    "GroupAttributeSpec",
    "PhaseSpec",
    "ScenarioSpec",
    "TenantMixSpec",
    "TenantSpec",
    "WorkloadSpec",
    "default_pack_dir",
    "load_scenario",
    "parse_scenario",
    "resolve_scenario",
    "shrink_spec",
]


@dataclass(frozen=True)
class GroupAttributeSpec:
    """One sensitive attribute: categories with declared marginals.

    ``marginals`` must be positive and sum to 1 (within float noise);
    ``tolerance`` is the absolute deviation the property tests allow
    between declared and empirically sampled marginals.
    """

    attribute: str
    categories: tuple[str, ...]
    marginals: tuple[float, ...]
    tolerance: float = 0.05

    def __post_init__(self) -> None:
        if not self.attribute or not isinstance(self.attribute, str):
            raise ValueError(f"attribute must be a non-empty string: {self.attribute!r}")
        cats = tuple(str(c) for c in self.categories)
        if not cats:
            raise ValueError(f"attribute {self.attribute!r} needs >= 1 category")
        if len(set(cats)) != len(cats):
            raise ValueError(f"attribute {self.attribute!r}: duplicate categories")
        margs = tuple(float(m) for m in self.marginals)
        if len(margs) != len(cats):
            raise ValueError(
                f"attribute {self.attribute!r}: {len(cats)} categories but "
                f"{len(margs)} marginals"
            )
        if any(m <= 0 for m in margs):
            raise ValueError(f"attribute {self.attribute!r}: marginals must be > 0")
        if not math.isclose(sum(margs), 1.0, abs_tol=1e-6):
            raise ValueError(
                f"attribute {self.attribute!r}: marginals must sum to 1, "
                f"got {sum(margs):.6f}"
            )
        if not 0.0 < self.tolerance <= 1.0:
            raise ValueError(
                f"attribute {self.attribute!r}: tolerance must lie in (0, 1]"
            )
        object.__setattr__(self, "categories", cats)
        object.__setattr__(self, "marginals", margs)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant dataset: size, utility correlation, group attributes.

    ``dims`` and ``groups`` default to the scenario archetype's when
    omitted (``None``).  ``correlation`` spans the classic synthetic
    regimes: ``-1`` fully anti-correlated (the adversarial skyline
    benchmark), ``0`` independent, ``+1`` strongly correlated (small
    skylines typical of real decision-support data).
    """

    name: str
    n: int = 800
    correlation: float = -0.5
    dims: tuple[str, ...] | None = None
    groups: tuple[GroupAttributeSpec, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"tenant name must be a non-empty string: {self.name!r}")
        if int(self.n) < 16:
            raise ValueError(f"tenant {self.name!r}: n must be >= 16, got {self.n}")
        object.__setattr__(self, "n", int(self.n))
        if not -1.0 <= float(self.correlation) <= 1.0:
            raise ValueError(
                f"tenant {self.name!r}: correlation must lie in [-1, 1], "
                f"got {self.correlation}"
            )
        if self.dims is not None:
            dims = tuple(str(v) for v in self.dims)
            if not 1 <= len(dims) <= 8:
                raise ValueError(f"tenant {self.name!r}: need 1..8 dims")
            object.__setattr__(self, "dims", dims)
        if self.groups is not None:
            groups = tuple(self.groups)
            if not groups:
                raise ValueError(f"tenant {self.name!r}: groups must be non-empty")
            attrs = [g.attribute for g in groups]
            if len(set(attrs)) != len(attrs):
                raise ValueError(
                    f"tenant {self.name!r}: duplicate group attributes {attrs}"
                )
            object.__setattr__(self, "groups", groups)


@dataclass(frozen=True)
class TenantMixSpec:
    """A heavy-tailed fleet of generated tenants.

    Tenant ``i`` (0-based) gets ``max(min_n, base_n / (i+1)**tail)``
    rows — ``tail=0`` is a uniform fleet, larger tails concentrate the
    data in the first few tenants, the regime multi-tenant caches and
    byte budgets actually face.
    """

    count: int
    base_n: int = 1_000
    tail: float = 1.2
    min_n: int = 120
    correlation: float = -0.5
    prefix: str = "tenant"
    groups: tuple[GroupAttributeSpec, ...] | None = None

    def __post_init__(self) -> None:
        if int(self.count) < 1:
            raise ValueError(f"mix count must be >= 1, got {self.count}")
        object.__setattr__(self, "count", int(self.count))
        if int(self.base_n) < 16 or int(self.min_n) < 16:
            raise ValueError("mix base_n and min_n must be >= 16")
        object.__setattr__(self, "base_n", int(self.base_n))
        object.__setattr__(self, "min_n", int(self.min_n))
        if float(self.tail) < 0:
            raise ValueError(f"mix tail must be >= 0, got {self.tail}")
        if not self.prefix:
            raise ValueError("mix prefix must be non-empty")

    def sizes(self) -> tuple[int, ...]:
        return tuple(
            max(self.min_n, int(round(self.base_n / (i + 1) ** self.tail)))
            for i in range(self.count)
        )


@dataclass(frozen=True)
class PhaseSpec:
    """One timeline phase: how many events, and their character.

    ``write_frac`` splits events into writes vs queries; ``churn``
    splits writes into deletes vs inserts; ``drift`` shifts every
    coordinate of points inserted during the phase (positive drift means
    newer tuples dominate older ones — real distribution shift); and
    ``burst`` multiplies the arrival rate, modelling flash crowds in the
    replayable HTTP trace.
    """

    ops: int
    write_frac: float = 0.2
    churn: float = 0.5
    drift: float = 0.0
    burst: float = 1.0

    def __post_init__(self) -> None:
        if int(self.ops) < 0:
            raise ValueError(f"phase ops must be >= 0, got {self.ops}")
        object.__setattr__(self, "ops", int(self.ops))
        for name in ("write_frac", "churn"):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"phase {name} must lie in [0, 1], got {value}")
        if not -1.0 <= float(self.drift) <= 1.0:
            raise ValueError(f"phase drift must lie in [-1, 1], got {self.drift}")
        if float(self.burst) <= 0:
            raise ValueError(f"phase burst must be > 0, got {self.burst}")


@dataclass(frozen=True)
class WorkloadSpec:
    """The query side of the scenario: what the HTTP trace replays."""

    requests: int = 48
    ks: tuple[int, ...] = (4, 6, 8)
    eps: float = 0.02
    alpha: float = 0.1
    algorithm: str = "auto"
    hot_frac: float = 0.7

    def __post_init__(self) -> None:
        if int(self.requests) < 0:
            raise ValueError(f"workload requests must be >= 0, got {self.requests}")
        object.__setattr__(self, "requests", int(self.requests))
        ks = tuple(int(k) for k in self.ks)
        if not ks or min(ks) < 1:
            raise ValueError(f"workload ks needs >= 1 positive size, got {self.ks!r}")
        object.__setattr__(self, "ks", ks)
        if not 0.0 <= float(self.hot_frac) <= 1.0:
            raise ValueError(f"hot_frac must lie in [0, 1], got {self.hot_frac}")
        if float(self.eps) <= 0 or float(self.alpha) < 0:
            raise ValueError("workload eps must be > 0 and alpha >= 0")
        if self.algorithm not in ("auto", "IntCov", "BiGreedy", "BiGreedy+"):
            raise ValueError(f"unknown workload algorithm {self.algorithm!r}")


# Per-archetype defaults: utility dimension names, the monotone shaping
# exponent applied to each dimension (x -> x**e keeps [0, 1] and the
# within-dimension order, so skylines stay meaningful while marginals
# take the archetype's skew: e < 1 piles mass high like GPA caps,
# e > 1 makes the dimension heavy-tailed like income), and the default
# group attributes used when a tenant declares none.
ARCHETYPES: dict[str, dict] = {
    "admissions": {
        "dims": ("gpa", "test", "essay"),
        "shape": (0.6, 0.8, 1.0),
        "groups": (
            GroupAttributeSpec("sex", ("female", "male"), (0.52, 0.48)),
            GroupAttributeSpec(
                "race",
                ("groupA", "groupB", "groupC", "groupD"),
                (0.55, 0.2, 0.15, 0.1),
            ),
        ),
    },
    "hiring": {
        "dims": ("experience", "skills", "interview"),
        "shape": (1.4, 0.8, 1.0),
        "groups": (
            GroupAttributeSpec("gender", ("women", "men"), (0.45, 0.55)),
        ),
    },
    "lending": {
        "dims": ("income", "credit", "collateral"),
        "shape": (2.0, 0.9, 1.3),
        "groups": (
            GroupAttributeSpec("age_band", ("young", "mid", "senior"), (0.3, 0.45, 0.25)),
        ),
    },
    "generic": {
        "dims": ("u0", "u1"),
        "shape": (1.0, 1.0),
        "groups": (
            GroupAttributeSpec("cohort", ("c0", "c1", "c2"), (1 / 3, 1 / 3, 1 / 3)),
        ),
    },
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully validated scenario (see module docstring for the file)."""

    name: str
    archetype: str = "generic"
    seed: int = 0
    description: str = ""
    tenants: tuple[TenantSpec, ...] = ()
    mix: TenantMixSpec | None = None
    phases: tuple[PhaseSpec, ...] = ()
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"scenario name must be a non-empty string: {self.name!r}")
        if self.archetype not in ARCHETYPES:
            raise ValueError(
                f"unknown archetype {self.archetype!r} "
                f"(expected one of {sorted(ARCHETYPES)})"
            )
        if int(self.seed) < 0:
            raise ValueError(f"scenario seed must be >= 0, got {self.seed}")
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "tenants", tuple(self.tenants))
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.tenants and self.mix is None:
            raise ValueError(
                f"scenario {self.name!r}: declare at least one tenant or a mix"
            )
        names = [t.name for t in self.all_tenants()]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario {self.name!r}: duplicate tenant names {names}")
        # The paper's clamped proportional constraint gives every group a
        # lower bound of 1, so a query is feasible only when k >= C.  The
        # (conservative) worst case is the full product of category
        # counts — fail at parse time with a message naming the fix, not
        # at replay time with a solver infeasibility.
        defaults = ARCHETYPES[self.archetype]
        for tenant in self.all_tenants():
            groups = tenant.groups if tenant.groups is not None else defaults["groups"]
            combos = math.prod(len(g.categories) for g in groups)
            if min(self.workload.ks) < combos:
                raise ValueError(
                    f"scenario {self.name!r}: tenant {tenant.name!r} can have "
                    f"up to {combos} (intersectional) groups but the workload's "
                    f"smallest k is {min(self.workload.ks)}; proportional "
                    f"constraints need k >= group count — raise ks or drop "
                    f"group attributes"
                )

    def all_tenants(self) -> tuple[TenantSpec, ...]:
        """Explicit tenants plus the expanded heavy-tailed mix, in order."""
        expanded = list(self.tenants)
        if self.mix is not None:
            for i, n in enumerate(self.mix.sizes()):
                expanded.append(
                    TenantSpec(
                        name=f"{self.mix.prefix}{i}",
                        n=n,
                        correlation=self.mix.correlation,
                        groups=self.mix.groups,
                    )
                )
        return tuple(expanded)

    def archetype_defaults(self) -> dict:
        return ARCHETYPES[self.archetype]

    @property
    def total_events(self) -> int:
        return sum(p.ops for p in self.phases)


def _reject_unknown(raw: dict, allowed, *, where: str) -> None:
    unknown = set(raw) - set(allowed)
    if unknown:
        raise ValueError(f"{where}: unknown keys {sorted(unknown)}")


def _parse_groups(raw_groups, *, where: str):
    if raw_groups is None:
        return None
    if not isinstance(raw_groups, (list, tuple)):
        raise ValueError(f"{where}: groups must be a list of tables")
    allowed = {f.name for f in fields(GroupAttributeSpec)}
    specs = []
    for entry in raw_groups:
        if not isinstance(entry, dict):
            raise ValueError(f"{where}: group entry must be a mapping, got {entry!r}")
        _reject_unknown(entry, allowed, where=f"{where} group")
        specs.append(GroupAttributeSpec(**entry))
    return tuple(specs)


def parse_scenario(raw: dict) -> ScenarioSpec:
    """Validate a raw mapping (parsed TOML/JSON) into a :class:`ScenarioSpec`."""
    if not isinstance(raw, dict):
        raise ValueError(f"scenario root must be a mapping, got {type(raw).__name__}")
    _reject_unknown(
        raw, ("scenario", "tenants", "mix", "phases", "workload"), where="scenario file"
    )
    head = dict(raw.get("scenario", {}))
    _reject_unknown(
        head, ("name", "archetype", "seed", "description"), where="[scenario]"
    )

    tenants = []
    tenant_fields = {f.name for f in fields(TenantSpec)}
    for entry in raw.get("tenants", []) or []:
        if not isinstance(entry, dict):
            raise ValueError(f"tenant entry must be a mapping, got {entry!r}")
        _reject_unknown(entry, tenant_fields, where=f"tenant {entry.get('name', '?')!r}")
        entry = dict(entry)
        entry["groups"] = _parse_groups(
            entry.get("groups"), where=f"tenant {entry.get('name', '?')!r}"
        )
        if entry.get("dims") is not None:
            entry["dims"] = tuple(entry["dims"])
        tenants.append(TenantSpec(**entry))

    mix = None
    if "mix" in raw and raw["mix"] is not None:
        entry = dict(raw["mix"])
        _reject_unknown(entry, {f.name for f in fields(TenantMixSpec)}, where="[mix]")
        entry["groups"] = _parse_groups(entry.get("groups"), where="[mix]")
        mix = TenantMixSpec(**entry)

    phases = []
    phase_fields = {f.name for f in fields(PhaseSpec)}
    for entry in raw.get("phases", []) or []:
        if not isinstance(entry, dict):
            raise ValueError(f"phase entry must be a mapping, got {entry!r}")
        _reject_unknown(entry, phase_fields, where="[[phases]]")
        phases.append(PhaseSpec(**entry))

    workload_raw = dict(raw.get("workload", {}))
    _reject_unknown(
        workload_raw, {f.name for f in fields(WorkloadSpec)}, where="[workload]"
    )
    workload = WorkloadSpec(**workload_raw)

    return ScenarioSpec(
        tenants=tuple(tenants),
        mix=mix,
        phases=tuple(phases),
        workload=workload,
        **head,
    )


def load_scenario(path) -> ScenarioSpec:
    """Parse a ``.toml`` or ``.json`` scenario file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        if tomllib is None:  # pragma: no cover - py3.10 only
            raise RuntimeError(
                "TOML scenarios need Python 3.11+ (stdlib tomllib); "
                "use an equivalent .json scenario instead"
            )
        with open(path, "rb") as fh:
            raw = tomllib.load(fh)
    elif suffix == ".json":
        with open(path) as fh:
            raw = json.load(fh)
    else:
        raise ValueError(
            f"unsupported scenario format {suffix!r} (expected .toml or .json)"
        )
    return parse_scenario(raw)


def default_pack_dir() -> Path:
    """Where the named scenario pack lives.

    ``REPRO_SCENARIO_DIR`` overrides; otherwise the repo's
    ``examples/scenarios`` (resolved relative to this file, so the CLI
    finds the pack regardless of the working directory).
    """
    env = os.environ.get("REPRO_SCENARIO_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "examples" / "scenarios"


def resolve_scenario(name_or_path, *, pack_dir=None) -> ScenarioSpec:
    """Load a scenario by file path or by pack name (without extension)."""
    path = Path(name_or_path)
    if path.suffix.lower() in (".toml", ".json") and path.exists():
        return load_scenario(path)
    base = Path(pack_dir) if pack_dir is not None else default_pack_dir()
    for suffix in (".toml", ".json"):
        candidate = base / f"{name_or_path}{suffix}"
        if candidate.exists():
            return load_scenario(candidate)
    raise FileNotFoundError(
        f"no scenario {name_or_path!r} (not a spec file, and not found in {base})"
    )


def shrink_spec(spec: ScenarioSpec, *, max_n: int = 240, max_ops: int = 30,
                max_requests: int = 24) -> ScenarioSpec:
    """A CI-sized copy of ``spec``: same shape, bounded cost.

    Tenant sizes, phase event counts, and the request budget are capped;
    everything else (archetype, groups, correlations, drift, bursts,
    seed) is preserved, so ``--tiny`` smokes exercise the same code
    paths the full scenario does.
    """
    tenants = tuple(
        TenantSpec(
            name=t.name,
            n=min(t.n, max_n),
            correlation=t.correlation,
            dims=t.dims,
            groups=t.groups,
        )
        for t in spec.tenants
    )
    mix = spec.mix
    if mix is not None:
        mix = TenantMixSpec(
            count=mix.count,
            base_n=min(mix.base_n, max_n),
            tail=mix.tail,
            min_n=min(mix.min_n, max_n),
            correlation=mix.correlation,
            prefix=mix.prefix,
            groups=mix.groups,
        )
    phases = tuple(
        PhaseSpec(
            ops=min(p.ops, max_ops),
            write_frac=p.write_frac,
            churn=p.churn,
            drift=p.drift,
            burst=p.burst,
        )
        for p in spec.phases
    )
    workload = WorkloadSpec(
        requests=min(spec.workload.requests, max_requests),
        ks=spec.workload.ks,
        eps=spec.workload.eps,
        alpha=spec.workload.alpha,
        algorithm=spec.workload.algorithm,
        hot_frac=spec.workload.hot_frac,
    )
    return ScenarioSpec(
        name=spec.name,
        archetype=spec.archetype,
        seed=spec.seed,
        description=spec.description,
        tenants=tenants,
        mix=mix,
        phases=phases,
        workload=workload,
    )
