"""Scenario timelines: valid-by-construction event streams and traces.

The timeline turns a scenario's phases into two replayable artifacts:

* an **event stream** — a globally ordered list of :class:`Event`s
  (insert / delete / query, each bound to a tenant and stamped with an
  abstract arrival time) for replay through
  :class:`~repro.serving.live.LiveFairHMSIndex` and the service
  gateway;
* a **request trace** — the scenario's query workload with arrival
  offsets, consumable by ``benchmarks/bench_server.py``'s open-loop
  generator (phase ``burst`` multipliers compress inter-arrival gaps,
  so flash crowds replay as real schedule spikes).

Event streams are valid by construction, and the guarantees are
explicit rather than silent fallbacks:

* insert keys are fresh — a per-tenant monotone counter starting past
  the initial dataset's ids, so no key is ever inserted twice and no
  delete can precede its insert;
* deletes target only alive tuples, and never shrink a group below
  ``max(ks) + 2`` members (every query stays feasible);
* a delete drawn when every group sits at that floor becomes an insert
  (the unbounded synthetic pool always admits one) — so an all-writes
  phase (``write_frac=1.0``) still emits exactly ``ops`` events;
* an empty timeline (no phases) is a *static* scenario: zero events,
  and the request trace alone drives the workload.

Inserted points are drawn from the tenant's own utility distribution
with the phase's ``drift`` added to every coordinate (clipped to the
unit cube): positive drift makes newer tuples dominate older ones, the
distribution-shift regime that forces live skyline maintenance to earn
its keep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import ensure_rng
from ..serving.workload import Op
from .generate import resolved_tenant, shape_points, utility_points
from .spec import ScenarioSpec

__all__ = ["Event", "TraceRequest", "build_events", "build_trace"]


@dataclass(frozen=True)
class Event:
    """One timeline event: an :class:`Op` for ``tenant`` at time ``at``."""

    at: float
    tenant: str
    op: Op


@dataclass(frozen=True)
class TraceRequest:
    """One HTTP-trace query: dataset + the full Query parameter surface."""

    at: float
    dataset: str
    k: int
    eps: float
    alpha: float
    algorithm: str


def _zipf_weights(count: int) -> np.ndarray:
    weights = np.array([1.0 / (i + 1) for i in range(count)])
    return weights / weights.sum()


def _hot_sets(names, ks):
    # Same idiom as service.workload.build_tenant_workload: per tenant,
    # three hot ks that repeat often enough to fuel coalescing/memoization.
    return {
        name: [ks[(i + j) % len(ks)] for j in range(3)]
        for i, name in enumerate(names)
    }


def _draw_k(rng, hot, ks, hot_frac) -> int:
    if rng.random() < hot_frac:
        return int(hot[int(rng.integers(0, len(hot)))])
    return int(ks[int(rng.integers(0, len(ks)))])


class _TenantState:
    """Mutable alive-set bookkeeping for one tenant during generation."""

    def __init__(self, spec: ScenarioSpec, tenant, dataset) -> None:
        defaults = spec.archetype_defaults()
        dims, _ = resolved_tenant(tenant, defaults)
        self.d = len(dims)
        self.correlation = float(tenant.correlation)
        self.shape = tuple(defaults["shape"])
        self.num_groups = dataset.num_groups
        sizes = dataset.group_sizes.astype(np.float64)
        self.group_p = sizes / sizes.sum()
        self.group_sizes = {c: int(s) for c, s in enumerate(dataset.group_sizes)}
        self.alive_by_group = {
            c: [int(k) for k, lab in zip(dataset.ids, dataset.labels) if lab == c]
            for c in range(dataset.num_groups)
        }
        self.next_key = int(dataset.ids.max()) + 1 if dataset.n else 0

    def insert(self, rng, drift: float) -> Op:
        point = utility_points(1, self.d, self.correlation, rng)
        point = shape_points(point, self.shape)[0]
        if drift:
            point = np.clip(point + drift, 0.0, 1.0)
        group = int(rng.choice(self.num_groups, p=self.group_p))
        key = self.next_key
        self.next_key += 1
        self.group_sizes[group] += 1
        self.alive_by_group[group].append(key)
        return Op("insert", key=key, point=point, group=group)

    def delete(self, rng, min_group: int) -> Op | None:
        deletable = [
            c for c, size in self.group_sizes.items() if size > min_group
        ]
        if not deletable:
            return None
        group = int(deletable[int(rng.integers(0, len(deletable)))])
        members = self.alive_by_group[group]
        key = members.pop(int(rng.integers(0, len(members))))
        self.group_sizes[group] -= 1
        return Op("delete", key=key, group=group)


def build_events(
    spec: ScenarioSpec, datasets: dict, *, seed
) -> list[Event]:
    """The scenario's globally ordered event stream (see module docstring).

    ``datasets`` is the :func:`~repro.scenarios.generate.tenant_datasets`
    output for the same spec — the alive-set bookkeeping starts from the
    materialized initial data, which is what makes the stream valid by
    construction.
    """
    rng = ensure_rng(seed)
    tenants = spec.all_tenants()
    names = [t.name for t in tenants]
    states = {
        t.name: _TenantState(spec, t, datasets[t.name]) for t in tenants
    }
    weights = _zipf_weights(len(names))
    ks = spec.workload.ks
    hot_sets = _hot_sets(names, ks)
    min_group = max(ks) + 2
    events: list[Event] = []
    at = 0.0
    for phase in spec.phases:
        gap = 1.0 / phase.burst
        for _ in range(phase.ops):
            at += gap
            name = names[int(rng.choice(len(names), p=weights))]
            state = states[name]
            if rng.random() < phase.write_frac:
                op = None
                if rng.random() < phase.churn:
                    op = state.delete(rng, min_group)
                if op is None:
                    # Either the draw said insert, or every group sits at
                    # its feasibility floor: inserts are always possible.
                    op = state.insert(rng, phase.drift)
            else:
                op = Op("query", k=_draw_k(rng, hot_sets[name], ks, spec.workload.hot_frac))
            events.append(Event(at=at, tenant=name, op=op))
    return events


def build_trace(spec: ScenarioSpec, *, seed) -> list[TraceRequest]:
    """The scenario's HTTP request trace: queries with arrival offsets.

    The ``requests`` budget is spread across the phases proportionally
    to their ``ops`` (uniformly when the timeline is empty), and each
    request's inter-arrival gap is divided by its phase's ``burst`` —
    the flash-crowd spikes land in the schedule itself, so an open-loop
    replay reproduces them against a real server.
    """
    rng = ensure_rng(seed)
    names = [t.name for t in spec.all_tenants()]
    weights = _zipf_weights(len(names))
    workload = spec.workload
    hot_sets = _hot_sets(names, workload.ks)
    total = workload.requests
    phase_ops = [p.ops for p in spec.phases]
    bursts = []
    if total and sum(phase_ops) > 0:
        # Allocate requests to phases by largest remainder so the
        # split is exact and deterministic.
        shares = [ops / sum(phase_ops) * total for ops in phase_ops]
        counts = [int(s) for s in shares]
        remainders = sorted(
            range(len(shares)), key=lambda i: shares[i] - counts[i], reverse=True
        )
        for i in remainders[: total - sum(counts)]:
            counts[i] += 1
        for phase, count in zip(spec.phases, counts):
            bursts.extend([phase.burst] * count)
    else:
        bursts = [1.0] * total
    trace: list[TraceRequest] = []
    at = 0.0
    for burst in bursts:
        at += 1.0 / burst
        name = names[int(rng.choice(len(names), p=weights))]
        trace.append(
            TraceRequest(
                at=at,
                dataset=name,
                k=_draw_k(rng, hot_sets[name], workload.ks, workload.hot_frac),
                eps=workload.eps,
                alpha=workload.alpha,
                algorithm=workload.algorithm,
            )
        )
    return trace
