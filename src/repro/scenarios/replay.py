"""Materialize and replay scenarios against every serving layer.

:func:`materialize` turns a validated :class:`ScenarioSpec` into one
:class:`Scenario` bundle — tenant datasets, the timeline event stream,
and the HTTP request trace — all derived from the scenario seed alone.
The same bundle then drives:

* :func:`replay` — every tenant's event stream through a
  :class:`~repro.serving.live.LiveFairHMSIndex` *and* the
  rebuild-per-update baseline (cold per-epoch solves), asserting the
  repo's house invariant: answers are bit-identical at every query
  point, now on realistic drifting intersectional data rather than
  AntiCor synthetics;
* :func:`register_scenario` — frozen registration of every tenant into
  a :class:`~repro.service.registry.DatasetRegistry` for gateway / HTTP
  serving;
* :func:`service_requests` — the trace as
  :class:`~repro.service.workload.ServiceRequest`s (plus arrival
  offsets) for ``run_service_benchmark`` and
  ``benchmarks/bench_server.py --scenario``;
* :func:`write_scenario` — an on-disk export (``.npy`` arrays +
  JSONL streams + a manifest) whose bytes are a pure function of the
  spec, which is how the property tests verify cross-process
  determinism.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from .._rng import ensure_rng, spawn_seeds
from ..serving.workload import Op, WorkloadReport, replay_ops
from .generate import tenant_datasets
from .spec import ScenarioSpec
from .timeline import Event, build_events, build_trace

__all__ = [
    "Scenario",
    "ScenarioReplayReport",
    "load_materialized_events",
    "materialize",
    "register_scenario",
    "replay",
    "service_requests",
    "write_scenario",
]


@dataclass
class Scenario:
    """One materialized scenario: everything downstream layers consume."""

    spec: ScenarioSpec
    datasets: dict
    attributes: dict
    events: list
    trace: list

    @property
    def name(self) -> str:
        return self.spec.name

    def tenant_ops(self, tenant: str) -> list[Op]:
        """The tenant's own op subsequence, in global event order."""
        return [e.op for e in self.events if e.tenant == tenant]


def materialize(spec: ScenarioSpec) -> Scenario:
    """Deterministically expand ``spec`` into datasets, events, and trace.

    Sub-seeds for the tenants, the timeline, and the trace are spawned
    from the scenario seed in a fixed order, so each artifact is stable
    under changes to the others (editing the workload never perturbs the
    datasets, and vice versa).
    """
    datasets, attributes = tenant_datasets(spec)
    event_seed, trace_seed = spawn_seeds(ensure_rng((spec.seed, 1)), 2)
    events = build_events(spec, datasets, seed=event_seed)
    trace = build_trace(spec, seed=trace_seed)
    return Scenario(
        spec=spec,
        datasets=datasets,
        attributes=attributes,
        events=events,
        trace=trace,
    )


@dataclass
class ScenarioReplayReport:
    """Aggregated live-vs-cold replay results across every tenant."""

    scenario: str
    tenants: dict = field(default_factory=dict)  # name -> WorkloadReport

    @property
    def identical(self) -> bool:
        return all(r.identical for r in self.tenants.values())

    @property
    def num_queries(self) -> int:
        return sum(r.num_queries for r in self.tenants.values())

    @property
    def num_updates(self) -> int:
        return sum(r.num_updates for r in self.tenants.values())

    @property
    def live_total(self) -> float:
        return sum(r.live_build + r.live_total for r in self.tenants.values())

    @property
    def rebuild_total(self) -> float:
        return sum(
            r.rebuild_build + r.rebuild_total for r in self.tenants.values()
        )

    @property
    def speedup(self) -> float:
        return self.rebuild_total / max(self.live_total, 1e-12)


def replay(
    scenario: Scenario, *, default_seed: int = 7, verify: bool = True
) -> ScenarioReplayReport:
    """Replay every tenant's event stream live vs rebuild-per-update.

    Each tenant's ops (in global order) run through
    :func:`~repro.serving.workload.replay_ops`, which asserts
    bit-identical answers between the live index and cold per-epoch
    rebuilds.  Tenants with no events still replay (zero ops, vacuously
    identical) so a static scenario exercises the same code path.
    """
    workload = scenario.spec.workload
    reports: dict[str, WorkloadReport] = {}
    for name, dataset in scenario.datasets.items():
        reports[name] = replay_ops(
            dataset,
            scenario.tenant_ops(name),
            default_seed=default_seed,
            eps=workload.eps,
            alpha=workload.alpha,
            algorithm=workload.algorithm,
            verify=verify,
        )
    return ScenarioReplayReport(scenario=scenario.name, tenants=reports)


def register_scenario(
    scenario: Scenario, registry, *, default_seed: int = 7, live: bool = False
) -> None:
    """Register every tenant dataset into ``registry`` (frozen by default)."""
    for name, dataset in scenario.datasets.items():
        registry.register(
            name, dataset, live=live, default_seed=default_seed
        )


def service_requests(scenario: Scenario):
    """The trace as ``(offsets, ServiceRequests)`` for the service bench.

    Offsets are the trace's abstract arrival times rebased to start at
    zero; callers rescale them to a target rate (the open-loop generator
    in ``bench_server.py`` preserves their *shape*, which is where the
    flash-crowd bursts live).
    """
    from ..serving.index import Query
    from ..service.workload import ServiceRequest

    offsets = [t.at for t in scenario.trace]
    base = offsets[0] if offsets else 0.0
    requests = [
        ServiceRequest(
            dataset=t.dataset,
            query=Query(k=t.k, eps=t.eps, algorithm=t.algorithm, alpha=t.alpha),
        )
        for t in scenario.trace
    ]
    return [o - base for o in offsets], requests


# ---------------------------------------------------------------------- #
# on-disk export
# ---------------------------------------------------------------------- #


def _event_record(event: Event) -> dict:
    op = event.op
    record = {
        "at": event.at,
        "tenant": event.tenant,
        "kind": op.kind,
    }
    if op.kind == "query":
        record["k"] = op.k
    else:
        record["key"] = op.key
        record["group"] = op.group
        if op.kind == "insert":
            record["point"] = [float(v) for v in op.point]
    return record


def write_scenario(scenario: Scenario, out_dir) -> Path:
    """Export a materialized scenario to ``out_dir``; returns the path.

    Layout: ``manifest.json`` (spec echo + tenant inventory),
    ``<tenant>.points.npy`` / ``.labels.npy`` / ``.ids.npy`` per tenant,
    ``events.jsonl``, and ``trace.jsonl``.  Every byte is a pure
    function of the spec — no timestamps, no environment — so two
    exports of the same spec hash identically, in any process.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for name, dataset in scenario.datasets.items():
        np.save(out / f"{name}.points.npy", dataset.points)
        np.save(out / f"{name}.labels.npy", dataset.labels)
        np.save(out / f"{name}.ids.npy", dataset.ids)
    with open(out / "events.jsonl", "w") as fh:
        for event in scenario.events:
            fh.write(json.dumps(_event_record(event), sort_keys=True))
            fh.write("\n")
    with open(out / "trace.jsonl", "w") as fh:
        for t in scenario.trace:
            fh.write(json.dumps(asdict(t), sort_keys=True))
            fh.write("\n")
    manifest = {
        "scenario": scenario.name,
        "spec": asdict(scenario.spec),
        "tenants": {
            name: {
                "n": dataset.n,
                "d": dataset.dim,
                "groups": dataset.num_groups,
                "group_names": list(dataset.group_names),
                "group_attribute": dataset.group_attribute,
            }
            for name, dataset in scenario.datasets.items()
        },
        "num_events": len(scenario.events),
        "num_trace_requests": len(scenario.trace),
    }
    with open(out / "manifest.json", "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out


def load_materialized_events(path) -> list[Event]:
    """Parse an exported ``events.jsonl`` back into :class:`Event`s."""
    events: list[Event] = []
    with open(path) as fh:
        for line in fh:
            record = json.loads(line)
            kind = record["kind"]
            if kind == "query":
                op = Op("query", k=int(record["k"]))
            elif kind == "insert":
                op = Op(
                    "insert",
                    key=int(record["key"]),
                    point=np.asarray(record["point"], dtype=np.float64),
                    group=int(record["group"]),
                )
            else:
                op = Op("delete", key=int(record["key"]), group=int(record["group"]))
            events.append(Event(at=record["at"], tenant=record["tenant"], op=op))
    return events
