"""Seeded random-number helpers.

Every stochastic component in the library accepts a ``seed`` argument (an
``int``, ``numpy.random.Generator``, or ``None``) and routes it through
:func:`ensure_rng` so that experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn", "spawn_seeds"]


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(rng: np.random.Generator, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from ``rng``.

    The integer form of :func:`spawn`: callers that need a *hashable* key
    for each child stream (e.g. the serving layer's per-``(m, seed)``
    delta-net cache) take the seeds and build generators themselves with
    ``numpy.random.default_rng(seed)`` — bit-identical to :func:`spawn`.
    """
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Used by multi-stage experiments so that changing the number of draws in
    one stage does not perturb the randomness of later stages.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, count)]
