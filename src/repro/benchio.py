"""Machine-readable benchmark reports: ``BENCH_<name>.json``.

Every benchmark script (``benchmarks/bench_serving.py``, ``bench_live.py``,
``bench_service.py``) emits one JSON file per run so the performance
trajectory is tracked across PRs instead of living in terminal
scrollback.  The payload always carries the workload parameters, the
measured timings/speedups, the git SHA the numbers belong to, and a
wall-clock timestamp.

Files land in the current working directory by default; set
``REPRO_BENCH_DIR`` to collect them elsewhere (CI artifacts, a results
repo).  Numpy scalars and arrays are converted to plain JSON types.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import numpy as np

__all__ = ["bench_json_path", "git_sha", "write_bench_json"]


def git_sha() -> str | None:
    """The repository HEAD these numbers were measured at, if available."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def bench_json_path(name: str, directory=None) -> Path:
    """Where ``write_bench_json`` puts the report for ``name``."""
    base = directory if directory is not None else os.environ.get(
        "REPRO_BENCH_DIR", "."
    )
    return Path(base) / f"BENCH_{name}.json"


def _jsonable(value):
    """Recursively convert numpy/paths to plain JSON-serializable types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, Path):
        return str(value)
    return value


def write_bench_json(name: str, payload: dict, *, directory=None) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` is augmented with the bench name, the current git SHA,
    and a unix timestamp; existing files are overwritten (one report per
    bench per checkout — history lives in version control / CI
    artifacts).
    """
    record = {
        "bench": str(name),
        "git_sha": git_sha(),
        "timestamp": time.time(),
    }
    record.update(_jsonable(payload))
    path = bench_json_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
