"""``FairHMSServer``: the asyncio HTTP/JSON front door over the Gateway.

The serving stack, bottom to top: ``FairHMSIndex`` answers queries over
one dataset; ``Gateway`` coalesces and fences concurrent requests across
many datasets; this server puts a network protocol in front of the
gateway so real clients can reach it — stdlib asyncio only, one event
loop thread doing protocol work while the gateway's worker pool does the
solves.

Endpoints (all JSON):

* ``POST /v1/query``  — ``{"dataset", "k", ...}`` -> one FairHMS answer.
* ``POST /v1/write``  — ``{"dataset", "op": "insert"|"delete", ...}``
  applied to a live dataset, in submission order against queries.
* ``GET /v1/datasets`` — registered datasets with residency/live flags.
* ``GET /v1/metrics``  — service metrics + registry + HTTP-layer stats +
  process gauges + per-tenant SLO attainment;
  ``?format=prometheus`` (or the ``/metrics`` alias) renders the same
  data in the Prometheus text exposition format.
* ``GET /v1/traces``   — recent + slowest completed request traces.
* ``GET /healthz``     — liveness plus the draining flag.

**Wire contract (v1.1)**: every ``/v1/*`` JSON response is wrapped in
the ``{"data", "error", "meta"}`` envelope with stable machine-readable
error codes (see :mod:`repro.server.api` and ``docs/API.md``); the
deprecated bare bodies remain reachable via ``?envelope=0`` or the
legacy ``Accept`` header.  ``/healthz`` and the Prometheus expositions
stay bare.

**Tracing**: with ``tracing`` on (the default) every query/write gets a
:class:`~repro.obs.trace.Trace` — honoring a caller-supplied
``x-repro-trace`` id and echoing it as a response header — that the
gateway, registry, and solver index annotate with queue-wait, build,
and solve/phase spans.  Completed traces land in a bounded
:class:`~repro.obs.trace.TraceStore` ring (``trace_buffer`` entries;
traces slower than ``slow_trace_s`` are logged), served by
``/v1/traces`` and the ``repro trace`` CLI.  Admitted requests also
feed the per-tenant :class:`~repro.obs.slo.SloTracker` (shed 429s stay
out of the SLO window: refusing work by design is not a violation of
the work admitted).

**Admission control**: at most ``max_inflight`` queries/writes are in
flight at once; excess requests are shed immediately with HTTP 429 (and
a ``Retry-After`` hint) instead of growing an unbounded queue — the
gateway's batching stays effective and latency stays bounded under
overload.  Sheds are counted per dataset in ``ServiceMetrics`` under
``shed``.  Reads of ``/healthz``, ``/v1/metrics`` and ``/v1/datasets``
are always admitted (operators need them most under overload).

**Graceful drain** (SIGTERM/SIGINT via :meth:`install_signal_handlers`,
or :meth:`drain` directly): stop accepting connections, let in-flight
requests resolve (bounded by ``drain_timeout``), stop the gateway (its
own stop() drains every accepted future), then spill the registry to
disk when a snapshot tier is configured — live datasets' applied writes
survive into the next process's warm start.

The event-loop side never blocks on solver work: gateway futures are
bridged with ``asyncio.wrap_future`` and the blocking shutdown path runs
in the loop's default executor.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import signal as _signal
import time

import numpy as np

from ..fairness.constraints import FairnessConstraint
from ..obs.process import process_stats
from ..obs.prometheus import render_prometheus
from ..obs.slo import SloObjectives, SloTracker
from ..obs.trace import Trace, TraceStore
from ..service.gateway import Gateway
from ..service.metrics import LatencyHistogram
from ..service.registry import DatasetRegistry
from ..service.warmup import Warmer
from .api import new_request_id, wants_envelope, wrap_legacy
from .config import ServerConfig, build_registry
from .http import HttpError, HttpRequest, read_request, send_json, send_text

__all__ = ["FairHMSServer"]

_ENDPOINTS = {
    ("GET", "/healthz"),
    ("GET", "/v1/metrics"),
    ("GET", "/metrics"),
    ("GET", "/v1/traces"),
    ("GET", "/v1/datasets"),
    ("POST", "/v1/query"),
    ("POST", "/v1/write"),
}

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _PlainText(str):
    """Dispatch payload marker: send as plain text, not JSON (exposition)."""


def _solution_payload(dataset: str, solution) -> dict:
    """JSON body for one answered query.

    ``ids`` and ``mhr_estimate`` are the bit-identity surface: JSON
    round-trips Python floats exactly (shortest-repr), so an HTTP answer
    compares bit-for-bit against an in-process solve.
    """
    violations = None
    if solution.constraint is not None:
        violations = int(solution.violations())
    est = solution.mhr_estimate
    return {
        "dataset": dataset,
        "algorithm": solution.algorithm,
        "ids": [int(v) for v in solution.ids],
        "size": int(solution.size),
        "mhr_estimate": None if est is None else float(est),
        "group_counts": [int(v) for v in solution.group_counts()],
        "violations": violations,
    }


def _parse_constraint(raw) -> FairnessConstraint:
    if not isinstance(raw, dict):
        raise HttpError(400, "constraint must be an object with lower/upper/k")
    unknown = set(raw) - {"lower", "upper", "k"}
    if unknown:
        raise HttpError(400, f"unknown constraint keys: {sorted(unknown)}")
    try:
        return FairnessConstraint(
            lower=np.asarray(raw["lower"], dtype=np.int64),
            upper=np.asarray(raw["upper"], dtype=np.int64),
            k=int(raw["k"]),
        )
    except HttpError:
        raise
    except Exception as exc:  # noqa: BLE001 - anything malformed is a 400
        raise HttpError(400, f"invalid constraint: {exc}") from None


class FairHMSServer:
    """Asyncio HTTP server over a :class:`Gateway` (see module docstring).

    Construct with a ready registry (tests, embedding) or via
    :meth:`from_config`.  Lifecycle: ``await start()`` inside a running
    loop, then ``await wait_stopped()``; ``await drain()`` (or a signal,
    after :meth:`install_signal_handlers`) shuts down gracefully.
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        batch_window: float = 0.002,
        max_batch: int = 256,
        drain_timeout: float = 30.0,
        max_body_bytes: int = 1 << 20,
        warmup: bool = False,
        warmup_ks=(4, 6, 8),
        tracing: bool = True,
        trace_buffer: int = 256,
        slow_trace_s: float = 1.0,
        slo: SloObjectives | None = None,
        worker_id: str | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.registry = registry
        #: Process name surfaced in envelope meta (cluster workers get
        #: theirs from the supervisor; a standalone server is "server").
        self.worker_id = str(worker_id) if worker_id else "server"
        self.metrics = registry.metrics
        self.gateway = Gateway(
            registry, batch_window=batch_window, max_batch=max_batch
        )
        #: Completed-trace ring buffer (None with tracing disabled).
        self.traces: TraceStore | None = (
            TraceStore(capacity=trace_buffer, slow_threshold=slow_trace_s)
            if tracing
            else None
        )
        #: Per-tenant SLO attainment over a rolling request window.
        self.slo = SloTracker(slo if slo is not None else SloObjectives())
        #: Speculative warm-up thread (None unless enabled): primes
        #: registered-but-cold datasets so first queries skip cold start.
        self.warmer: Warmer | None = (
            Warmer(registry, ks=warmup_ks, traces=self.traces) if warmup else None
        )
        self.host = str(host)
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.drain_timeout = float(drain_timeout)
        self.max_body_bytes = int(max_body_bytes)
        #: HTTP-layer latency (request parsed -> response built), kept
        #: separate from the gateway's per-dataset histograms.
        self.http_latency = LatencyHistogram()
        self._endpoint_hits: dict[str, int] = {}
        self._shed_total = 0
        self._http_errors = 0
        #: solver-side work in flight (admission control bound).
        self._inflight = 0
        #: HTTP requests mid-handling, response write included (drain
        #: waits on this, not on _inflight, so the final response of an
        #: in-flight request is written before connections are closed).
        self._active = 0
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._writers: set = set()
        self._quiesced: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None

    @classmethod
    def from_config(
        cls, config: ServerConfig, *, registry: DatasetRegistry | None = None
    ) -> "FairHMSServer":
        """Build a server (and, unless given, its registry) from a config."""
        if registry is None:
            registry = build_registry(config)
        return cls(
            registry,
            host=config.host,
            port=config.port,
            max_inflight=config.max_inflight,
            batch_window=config.batch_window,
            max_batch=config.max_batch,
            drain_timeout=config.drain_timeout,
            max_body_bytes=config.max_body_bytes,
            warmup=config.warmup,
            warmup_ks=config.warmup_ks,
            tracing=config.tracing,
            trace_buffer=config.trace_buffer,
            slow_trace_s=config.slow_trace_s,
            slo=config.slo,
            worker_id=config.worker_id,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves at start)."""
        return self.host, self.port

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "FairHMSServer":
        """Bind the listener and start the gateway dispatcher."""
        self._quiesced = asyncio.Event()
        self._quiesced.set()
        self._stopped = asyncio.Event()
        self.gateway.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.warmer is not None:
            self.warmer.start()
        return self

    def install_signal_handlers(self, signals=(_signal.SIGTERM, _signal.SIGINT)):
        """Drain gracefully on the given signals; returns those installed.

        Only possible from the main thread of the main interpreter (a
        CPython restriction on signal handling); elsewhere — e.g. the
        test harness's server thread — this is a no-op and the caller
        drains explicitly.
        """
        loop = asyncio.get_running_loop()
        installed = []
        for sig in signals:
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain())
                )
            except (NotImplementedError, RuntimeError, ValueError):
                continue  # non-main thread or unsupported platform
            installed.append(sig)
        return tuple(installed)

    async def wait_stopped(self) -> None:
        """Block until a drain has fully shut the server down."""
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, spill, stop.

        Idempotent.  Order matters: (1) flag draining and close the
        listener — new connections are refused, requests on live
        connections get 503; (2) wait (bounded by ``drain_timeout``) for
        every in-flight request to resolve *and its response to be
        written*; (3) close lingering idle keep-alive connections (their
        handlers see EOF and exit cleanly); (4) stop the gateway — its
        own shutdown drains anything still queued so no accepted future
        is dropped; (5) spill the registry when a snapshot tier exists,
        so live datasets' applied writes are durable for the next
        process.  Steps 4-5 block, so they run in the executor.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._active:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._quiesced.wait(), timeout=self.drain_timeout
                )
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        await asyncio.sleep(0)  # let the woken handlers observe EOF and exit
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._shutdown_blocking)
        self._stopped.set()

    def _shutdown_blocking(self) -> None:
        """Worker-side shutdown: warmer first (so no speculative build
        races the drain), then gateway stop, then registry spill."""
        if self.warmer is not None:
            self.warmer.stop()
        self.gateway.stop()
        if self.registry.store is not None:
            for name in self.registry.resident_names():
                self.registry.evict(name)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    def _begin_request(self) -> None:
        self._active += 1
        self._quiesced.clear()

    def _end_request(self) -> None:
        self._active -= 1
        if self._active == 0:
            self._quiesced.set()

    async def _serve_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body_bytes
                    )
                except HttpError as exc:
                    self._http_errors += 1
                    await send_json(
                        writer, exc.status, {"error": str(exc)}, close=True
                    )
                    return
                if request is None:
                    return
                self._begin_request()
                try:
                    t0 = time.perf_counter()
                    status, payload, extra = await self._dispatch(request)
                    self.http_latency.observe(time.perf_counter() - t0)
                    if status >= 500:
                        self._http_errors += 1
                    close = not request.keep_alive or self._draining
                    if isinstance(payload, _PlainText):
                        await send_text(
                            writer,
                            status,
                            str(payload),
                            content_type=_PROMETHEUS_CONTENT_TYPE,
                            close=close,
                            extra_headers=extra,
                        )
                    else:
                        await send_json(
                            writer, status, payload, close=close, extra_headers=extra
                        )
                finally:
                    self._end_request()
                if close:
                    return
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            return  # mid-request disconnect: nothing left to answer
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: HttpRequest):
        """Route one request; returns ``(status, payload, extra_headers)``.

        ``/v1/*`` JSON responses come back wrapped in the v1.1 envelope
        unless the request selected the deprecated bare body
        (``?envelope=0`` / legacy ``Accept`` — see ``repro.server.api``).
        ``/healthz``, ``/metrics``, and the Prometheus rendering of
        ``/v1/metrics`` always keep their historical bare shapes.
        """
        status, payload, extra = await self._dispatch_bare(request)
        if (
            request.path.startswith("/v1/")
            and not isinstance(payload, _PlainText)
            and wants_envelope(request)
        ):
            # The trace id (echoed as x-repro-trace) doubles as the
            # request id, so an envelope and the trace store correlate.
            request_id = (extra or {}).get("x-repro-trace") or new_request_id()
            payload = wrap_legacy(
                status, payload, request_id=request_id, worker=self.worker_id
            )
        return status, payload, extra

    async def _dispatch_bare(self, request: HttpRequest):
        """Route one request to its handler (legacy-shaped payloads)."""
        method, path = request.method, request.path
        key = f"{method} {path}"
        if (method, path) in _ENDPOINTS:
            self._endpoint_hits[key] = self._endpoint_hits.get(key, 0) + 1
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                return 200, self._health_payload(), None
            if path in ("/v1/metrics", "/metrics"):
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                # /metrics is the conventional scrape alias: always the
                # exposition format.  /v1/metrics defaults to JSON and
                # opts into exposition via ?format=prometheus.
                if path == "/metrics" or request.param("format") == "prometheus":
                    return 200, _PlainText(self.prometheus_exposition()), None
                payload = {
                    "service": self.metrics.snapshot(),
                    "registry": self.registry.snapshot(),
                    "server": self.server_stats(),
                    "slo": self.slo.snapshot(),
                    "planner": self.registry.planner.stats(),
                    "process": process_stats(),
                }
                if self.traces is not None:
                    payload["traces"] = self.traces.stats()
                return 200, payload, None
            if path == "/v1/traces":
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                if self.traces is None:
                    return 200, {"tracing": False, "recent": [], "slowest": []}, None
                limit = request.param("limit")
                try:
                    limit = 20 if limit is None else max(1, min(100, int(limit)))
                except ValueError:
                    raise HttpError(400, f"limit must be an integer: {limit!r}") from None
                payload = self.traces.snapshot(limit=limit)
                payload["tracing"] = True
                return 200, payload, None
            if path == "/v1/datasets":
                if method != "GET":
                    return 405, {"error": "use GET"}, None
                return (
                    200,
                    {
                        "datasets": [
                            self.registry.describe(name)
                            for name in self.registry.names()
                        ]
                    },
                    None,
                )
            if path == "/v1/query":
                if method != "POST":
                    return 405, {"error": "use POST"}, None
                return await self._handle_query(request)
            if path == "/v1/write":
                if method != "POST":
                    return 405, {"error": "use POST"}, None
                return await self._handle_write(request)
            return 404, {"error": f"no such endpoint: {method} {path}"}, None
        except HttpError as exc:
            return exc.status, {"error": str(exc)}, None
        except Exception as exc:  # noqa: BLE001 - never kill the connection loop
            return (
                500,
                {"error": str(exc), "error_type": type(exc).__name__},
                None,
            )

    def _health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "worker": self.worker_id,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "datasets": len(self.registry),
        }

    def server_stats(self) -> dict:
        """HTTP-layer observability block for ``/v1/metrics``."""
        stats = {
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "draining": self._draining,
            "shed": self._shed_total,
            "http_errors": self._http_errors,
            "endpoints": dict(self._endpoint_hits),
            "http_latency": self.http_latency.snapshot(),
        }
        if self.warmer is not None:
            stats["warmup"] = self.warmer.stats()
        return stats

    def prometheus_exposition(self) -> str:
        """The ``/metrics`` scrape body (Prometheus text exposition).

        Every ``ServiceMetrics`` counter and histogram (with ``dataset``
        /``scenario`` labels), the server/registry/warm-up gauges, the
        per-tenant SLO gauges, process gauges, and trace-store counters
        — rendered in one consistent pass.
        """
        reg = self.registry.snapshot()
        gauges = {
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "draining": self._draining,
            "http_active_requests": self._active,
            "http_shed": self._shed_total,
            "http_errors": self._http_errors,
            "http_latency_p99_seconds": self.http_latency.quantile(0.99),
            "registry_cache_bytes": reg["total_cache_bytes"],
            "registry_resident_indexes": len(reg["resident"]),
            "registry_registered_datasets": len(reg["registered"]),
        }
        if self.warmer is not None:
            warm = self.warmer.stats()
            gauges["warmup_primed"] = len(warm["primed"])
            gauges["warmup_backlog"] = max(
                0, len(self.registry) - len(warm["primed"])
            )
            gauges["warmup_errors"] = warm["errors"]
        return render_prometheus(
            self.metrics,
            gauges=gauges,
            slo=self.slo.snapshot(),
            process=process_stats(),
            traces=None if self.traces is None else self.traces.stats(),
            plans=self.registry.planner.counters_export(),
        )

    # ------------------------------------------------------------------ #
    # query / write
    # ------------------------------------------------------------------ #

    def _retry_after(self) -> str:
        """Seconds a shed client should back off, from observed latency.

        Estimates the time to drain the current in-flight backlog as
        ``solve-latency p50 x inflight`` (the gateway serializes per
        dataset but overlaps datasets, so this overestimates mildly —
        the right direction for a backoff hint).  Before any solve has
        been observed there is nothing to extrapolate from; fall back to
        the old fixed 1 second.  Clamped to [1, 60]: integer seconds are
        what the header grammar allows, and a p99 blip must not tell
        clients to go away for minutes.
        """
        p50 = self.metrics.solve_quantile(0.5)
        if p50 is None:
            return "1"
        estimate = p50 * max(1, self._inflight)
        return str(max(1, min(60, math.ceil(estimate))))

    def _admit(self, dataset: str):
        """Admission check; returns a shed response or None when admitted.

        Runs entirely on the event loop, so the counter needs no lock;
        the matching decrement is in :meth:`_await_future`'s finally.
        """
        if self._draining:
            return 503, {"error": "server is draining"}, None
        if self._inflight >= self.max_inflight:
            self._shed_total += 1
            self.metrics.incr(dataset, "shed")
            return (
                429,
                {
                    "error": (
                        f"server overloaded ({self._inflight} requests in "
                        f"flight); retry later"
                    ),
                    "shed": True,
                },
                {"Retry-After": self._retry_after()},
            )
        return None

    async def _await_future(self, future):
        """Bridge a gateway future into the loop, tracking in-flight count."""
        self._inflight += 1
        try:
            return await asyncio.wrap_future(future)
        finally:
            self._inflight -= 1

    def _open_trace(self, request: HttpRequest, name: str, dataset: str):
        """A per-request trace honoring an inbound ``x-repro-trace`` id."""
        if self.traces is None:
            return None
        return Trace(
            name,
            trace_id=request.headers.get("x-repro-trace"),
            dataset=dataset,
        )

    def _close_request(self, trace, headers, started: float, dataset: str, status: int):
        """Account one admitted request: SLO sample + trace; returns headers.

        Only requests that made it past admission reach here, so shed
        429s never burn error budget; client errors (4xx) count against
        latency but not availability.
        """
        self.slo.record(dataset, time.perf_counter() - started, ok=status < 500)
        if trace is None:
            return headers
        trace.annotate(status=int(status))
        if status >= 400:
            trace.annotate(error=True)
        self.traces.record(trace)
        headers = dict(headers or {})
        headers["x-repro-trace"] = trace.trace_id
        return headers

    @staticmethod
    def _error_response(exc: Exception):
        if isinstance(exc, KeyError):
            return 404, {"error": str(exc).strip("'\""), "error_type": "KeyError"}, None
        if isinstance(exc, (ValueError, TypeError, AttributeError)):
            # Bad parameters, infeasible constraints, writes to a frozen
            # dataset — the request is at fault, not the server.
            return (
                400,
                {"error": str(exc), "error_type": type(exc).__name__},
                None,
            )
        return 500, {"error": str(exc), "error_type": type(exc).__name__}, None

    async def _handle_query(self, request: HttpRequest):
        body = request.json()
        dataset = body.get("dataset")
        if not isinstance(dataset, str) or not dataset:
            raise HttpError(400, "dataset must be a non-empty string")
        if dataset not in self.registry:
            return 404, {"error": f"unknown dataset {dataset!r}"}, None
        shed = self._admit(dataset)
        if shed is not None:
            return shed
        allowed = {
            "dataset", "k", "constraint", "eps", "algorithm",
            "seed", "alpha", "scheme", "options",
        }
        unknown = set(body) - allowed
        if unknown:
            raise HttpError(400, f"unknown query keys: {sorted(unknown)}")
        options = body.get("options", {})
        if not isinstance(options, dict):
            raise HttpError(400, "options must be an object")
        constraint = body.get("constraint")
        if constraint is not None:
            constraint = _parse_constraint(constraint)
        k = body.get("k")
        trace = self._open_trace(request, "POST /v1/query", dataset)
        started = time.perf_counter()
        try:
            future = self.gateway.submit(
                dataset,
                None if k is None else int(k),
                constraint=constraint,
                eps=float(body.get("eps", 0.02)),
                algorithm=str(body.get("algorithm", "auto")),
                seed=body.get("seed"),
                alpha=float(body.get("alpha", 0.1)),
                scheme=str(body.get("scheme", "proportional")),
                trace=trace,
                **options,
            )
            solution = await self._await_future(future)
        except Exception as exc:  # noqa: BLE001 - mapped to an HTTP status
            status, payload, headers = self._error_response(exc)
            return status, payload, self._close_request(
                trace, headers, started, dataset, status
            )
        return 200, _solution_payload(dataset, solution), self._close_request(
            trace, None, started, dataset, 200
        )

    async def _handle_write(self, request: HttpRequest):
        body = request.json()
        dataset = body.get("dataset")
        if not isinstance(dataset, str) or not dataset:
            raise HttpError(400, "dataset must be a non-empty string")
        if dataset not in self.registry:
            return 404, {"error": f"unknown dataset {dataset!r}"}, None
        shed = self._admit(dataset)
        if shed is not None:
            return shed
        op = body.get("op")
        if op not in ("insert", "delete"):
            raise HttpError(400, f"op must be 'insert' or 'delete', got {op!r}")
        if "key" not in body:
            raise HttpError(400, "write needs a key")
        try:
            key = int(body["key"])
            if op == "insert":
                point = np.asarray(body["point"], dtype=np.float64)
                args = (key, point, int(body["group"]))
            else:
                args = (key,)
        except HttpError:
            raise
        except Exception as exc:  # noqa: BLE001 - malformed write payload
            raise HttpError(400, f"invalid write payload: {exc}") from None
        trace = self._open_trace(request, "POST /v1/write", dataset)
        started = time.perf_counter()
        try:
            future = self.gateway.submit_update(dataset, op, *args, trace=trace)
            version = await self._await_future(future)
        except Exception as exc:  # noqa: BLE001 - mapped to an HTTP status
            status, payload, headers = self._error_response(exc)
            return status, payload, self._close_request(
                trace, headers, started, dataset, status
            )
        return (
            200,
            {
                "dataset": dataset,
                "applied": op,
                "key": key,
                "version": None if version is None else int(version),
            },
            self._close_request(trace, None, started, dataset, 200),
        )
