"""The v1.1 wire contract: response envelope + stable error codes.

Every ``/v1/*`` JSON response is wrapped in one envelope shape::

    {
      "data":  <endpoint payload> | null,
      "error": null | {"code": str, "message": str, "retryable": bool},
      "meta":  {"request_id": str, "worker": str, "api_version": "1.1"}
    }

Exactly one of ``data``/``error`` is non-null.  ``error.code`` is the
machine-readable contract — clients and the ``repro.client`` SDK branch
on it, never on message text; ``retryable`` says whether the same
request can be resent as-is (sheds, drains, and router-side worker
outages are retryable; bad requests and infeasible constraints are
not).  ``meta.request_id`` is the request's trace id whenever tracing
is on (the same id the ``x-repro-trace`` response header carries), and
``meta.worker`` names the serving process — ``repro cluster`` workers
get their id from the supervisor, so a client can see which worker
answered through the router.

**Legacy compatibility (deprecated):** clients that predate the
envelope keep working by requesting the bare body with ``?envelope=0``
or an ``Accept: application/vnd.repro.legacy+json`` header.  The bare
shapes are byte-identical to the pre-1.1 API and are documented as
deprecated in ``docs/API.md``; new clients must use the envelope.

Endpoints outside ``/v1/`` keep their historical shapes unconditionally:
``/healthz`` (probes) and ``/metrics`` (Prometheus text exposition) are
consumed by infrastructure that neither wants nor parses an envelope.
"""

from __future__ import annotations

import uuid

__all__ = [
    "API_VERSION",
    "LEGACY_ACCEPT",
    "RETRYABLE_CODES",
    "classify_error",
    "envelope",
    "error_object",
    "new_request_id",
    "wants_envelope",
]

API_VERSION = "1.1"

#: Accept-header value selecting the deprecated bare-body response shape.
LEGACY_ACCEPT = "application/vnd.repro.legacy+json"

#: Error codes whose requests may be retried verbatim (after any
#: ``Retry-After`` the response carries).
RETRYABLE_CODES = frozenset({"shed", "draining", "worker_unavailable"})

#: Every code the server/router can emit (documented in docs/API.md).
ERROR_CODES = (
    "dataset_not_found",
    "infeasible_constraint",
    "invalid_argument",
    "not_found",
    "method_not_allowed",
    "payload_too_large",
    "shed",
    "draining",
    "worker_unavailable",
    "bad_gateway",
    "internal",
)


def new_request_id() -> str:
    """A fresh request id for untraced requests (trace ids win when on)."""
    return uuid.uuid4().hex[:16]


def wants_envelope(request) -> bool:
    """Whether this request gets the v1.1 envelope (the default).

    ``?envelope=0`` (also ``false``/``no``) or an ``Accept`` header
    naming :data:`LEGACY_ACCEPT` selects the deprecated bare body; an
    explicit ``?envelope=1`` wins over the Accept header.
    """
    param = request.param("envelope")
    if param is not None:
        return param.lower() not in ("0", "false", "no")
    return LEGACY_ACCEPT not in request.headers.get("accept", "")


def classify_error(status: int, message: str) -> str:
    """Map a (status, legacy message) pair to its stable error code.

    The status carries most of the signal; the two 4xx statuses that
    cover distinct conditions are split on the message our own layers
    produce: a 404 for a name the registry doesn't know is
    ``dataset_not_found`` (vs ``not_found`` for an unknown endpoint),
    and a 400 whose message reports an infeasible fairness constraint —
    every solver phrases it with the word "infeasible" — is
    ``infeasible_constraint`` (vs ``invalid_argument``).
    """
    text = (message or "").lower()
    if status == 404:
        return "dataset_not_found" if "dataset" in text else "not_found"
    if status == 405:
        return "method_not_allowed"
    if status == 413:
        return "payload_too_large"
    if status == 429:
        return "shed"
    if status == 503:
        return "draining"
    if status == 502:
        return "bad_gateway"
    if 400 <= status < 500:
        return "infeasible_constraint" if "infeasible" in text else "invalid_argument"
    return "internal"


def error_object(code: str, message: str) -> dict:
    """One envelope ``error`` value with its retryability flag."""
    return {
        "code": str(code),
        "message": str(message),
        "retryable": code in RETRYABLE_CODES,
    }


def envelope(
    data=None,
    *,
    error: dict | None = None,
    request_id: str,
    worker: str,
) -> dict:
    """Assemble one v1.1 response envelope (exactly one of data/error)."""
    return {
        "data": None if error is not None else data,
        "error": error,
        "meta": {
            "request_id": str(request_id),
            "worker": str(worker),
            "api_version": API_VERSION,
        },
    }


def wrap_legacy(status: int, payload: dict, *, request_id: str, worker: str) -> dict:
    """Wrap a legacy-shaped response body into the v1.1 envelope.

    The pre-1.1 handlers report failures as ``{"error": <message>, ...}``
    — that message plus the status is enough to recover the stable code,
    so the handlers stay envelope-agnostic and the legacy path returns
    their bodies byte-identically.
    """
    if status < 400:
        return envelope(payload, request_id=request_id, worker=worker)
    message = payload.get("error") if isinstance(payload, dict) else None
    if not isinstance(message, str):
        message = str(payload)
    code = classify_error(int(status), message)
    return envelope(
        error=error_object(code, message), request_id=request_id, worker=worker
    )
