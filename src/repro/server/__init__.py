"""``repro.server`` — the asyncio HTTP/JSON serving front-end.

Puts a network protocol in front of the in-process serving stack
(``repro.serving`` indexes behind a ``repro.service`` gateway/registry):
a stdlib-only HTTP server with admission control (bounded in-flight
load, 429 shedding), graceful SIGTERM drain with snapshot spill, and
TOML/JSON config-driven dataset registration.  See ``docs/SERVER.md``.
"""

from .api import API_VERSION, LEGACY_ACCEPT, wants_envelope
from .app import FairHMSServer
from .config import (
    ClusterConfig,
    DatasetSpec,
    ServerConfig,
    build_registry,
    demo_config,
    load_config,
    parse_config,
)
from .http import HttpError, HttpRequest, read_request, send_json
from .runner import ServerThread, serve_forever

__all__ = [
    "API_VERSION",
    "ClusterConfig",
    "DatasetSpec",
    "FairHMSServer",
    "HttpError",
    "HttpRequest",
    "LEGACY_ACCEPT",
    "ServerConfig",
    "ServerThread",
    "build_registry",
    "demo_config",
    "load_config",
    "parse_config",
    "read_request",
    "send_json",
    "serve_forever",
    "wants_envelope",
]
