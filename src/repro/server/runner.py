"""Run a :class:`FairHMSServer`: blocking (CLI) or on a thread (tests).

``serve_forever`` is the ``repro server`` entry point: it owns the
process's event loop, installs SIGTERM/SIGINT handlers, and returns only
after a graceful drain completes.

``ServerThread`` hosts the same server on a daemon thread with its own
event loop — what the test suite and ``benchmarks/bench_server.py`` use
to exercise the server over real sockets from the same process, with an
explicit :meth:`~ServerThread.drain` standing in for SIGTERM.

Both paths accept the observability knobs (``tracing``,
``trace_buffer``, ``slow_trace_s``, ``slo``) — ``serve_forever`` via
:class:`~repro.server.config.ServerConfig`, ``ServerThread`` as keyword
arguments forwarded verbatim to :class:`FairHMSServer`.
"""

from __future__ import annotations

import asyncio
import threading

from ..service.registry import DatasetRegistry
from .app import FairHMSServer
from .config import ServerConfig

__all__ = ["ServerThread", "serve_forever"]


def serve_forever(
    config: ServerConfig, *, registry: DatasetRegistry | None = None
) -> None:
    """Run the server in this thread until a signal drains it."""

    async def _main() -> None:
        server = FairHMSServer.from_config(config, registry=registry)
        await server.start()
        installed = server.install_signal_handlers()
        host, port = server.address
        names = ", ".join(server.registry.names()) or "none"
        print(f"repro server listening on http://{host}:{port}")
        print(f"datasets: {names}")
        if installed:
            print("drain on: " + ", ".join(s.name for s in installed))
        try:
            await server.wait_stopped()
        finally:
            # KeyboardInterrupt with no handler installed (e.g. Windows
            # fallback): still shut down cleanly.
            if not server.draining:
                await server.drain()
        print("drained; bye")

    asyncio.run(_main())


class ServerThread:
    """A :class:`FairHMSServer` on a background thread (context manager).

    ``with ServerThread(registry) as (host, port): ...`` — the server is
    bound (on an OS-assigned port by default) before the body runs, and
    drained on exit.  :meth:`drain` can be called early to exercise the
    graceful-shutdown path explicitly.
    """

    def __init__(self, registry: DatasetRegistry, **server_kwargs) -> None:
        self._registry = registry
        self._kwargs = dict(server_kwargs)
        self.server: FairHMSServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if self.server is None:
            raise RuntimeError("server failed to start within 30s")
        return self.server.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        server = FairHMSServer(self._registry, **self._kwargs)
        await server.start()
        self._loop = asyncio.get_running_loop()
        self.server = server
        self._started.set()
        await server.wait_stopped()

    @property
    def loop(self) -> asyncio.AbstractEventLoop | None:
        """The server's event loop (None before :meth:`start`)."""
        return self._loop

    def drain(self, timeout: float = 60.0) -> None:
        """Drain the server from this (foreign) thread and join the loop."""
        if self.server is None or self._loop is None:
            return
        if self._thread is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            )
            future.result(timeout=timeout)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()
