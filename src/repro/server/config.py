"""Server configuration: a TOML or JSON file -> registry + settings.

One config file describes everything a ``repro server`` process needs:
the listen address, admission-control and drain knobs, the registry's
byte budget and snapshot spill directory, and the datasets to register.
Datasets are *specs*, not data — synthetic specs name the generator
parameters, real specs name the bundled dataset — so the registry builds
(or, with ``spill_dir``, warm-starts from a previous process's
snapshots via :class:`~repro.service.store.SnapshotStore`) lazily on
first request.

TOML (Python 3.11+, stdlib ``tomllib``)::

    [server]
    host = "127.0.0.1"
    port = 8080
    max_inflight = 64
    spill_dir = "spill"

    [[datasets]]
    name = "tenant0"
    kind = "synthetic"
    n = 1500
    d = 2
    groups = 3
    seed = 40

The same structure as JSON works on every supported Python::

    {"server": {"port": 8080}, "datasets": [{"name": "tenant0"}]}

Unknown keys are rejected — a typo in a production config must fail at
startup, not silently fall back to a default.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py3.10 fallback path
    tomllib = None

from ..obs.slo import SloObjectives
from ..planner import Planner, PlannerConfig
from ..service.metrics import ServiceMetrics
from ..service.registry import DatasetRegistry

__all__ = [
    "ClusterConfig",
    "DatasetSpec",
    "ServerConfig",
    "build_registry",
    "demo_config",
    "load_config",
    "parse_config",
]

_KINDS = ("synthetic", "real")


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset to register: a synthetic generator or a bundled dataset.

    Args:
        name: registry key clients address in requests.
        kind: ``"synthetic"`` (anti-correlated generator) or ``"real"``
            (bundled dataset loaded by ``source``/``attribute``).
        n: row count (synthetic) or row-count cap (real; ``None`` = all).
        d / groups / seed: synthetic generator parameters.
        source: real-dataset name (``Adult``, ``Compas``, ...); defaults
            to ``name``.
        attribute: group attribute for real datasets (dataset default
            when omitted).
        live: register a :class:`~repro.serving.live.LiveFairHMSIndex`
            that accepts ``/v1/write`` requests.
        build_workers: process-pool workers for sharded cold builds
            (frozen specs only; 0 = sequential).
        default_seed: the index's solver seed policy.
        index: extra keyword arguments forwarded to the index
            constructor (``cache_results``, ``max_cached_results``, ...).
    """

    name: str
    kind: str = "synthetic"
    n: int | None = 1_500
    d: int = 2
    groups: int = 3
    seed: int = 40
    source: str | None = None
    attribute: str | None = None
    live: bool = False
    build_workers: int = 0
    default_seed: int = 7
    index: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"dataset name must be a non-empty string: {self.name!r}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"dataset {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {_KINDS})"
            )
        if self.live and self.build_workers > 1:
            raise ValueError(
                f"dataset {self.name!r}: live indexes build sequentially; "
                f"drop build_workers"
            )

    def factory(self):
        """Zero-argument dataset loader (deterministic, so rebuilds are
        bit-identical to the build a previous process snapshotted)."""
        if self.kind == "synthetic":
            from ..data.synthetic import anticorrelated_dataset

            n, d, groups, seed, name = (
                int(self.n if self.n is not None else 1_500),
                int(self.d),
                int(self.groups),
                int(self.seed),
                self.name,
            )
            return lambda: anticorrelated_dataset(n, d, groups, seed=seed, name=name)
        from ..data.realworld import load_dataset

        source = self.source or self.name
        attribute, n = self.attribute, self.n
        return lambda: load_dataset(source, attribute, n=n)


@dataclass(frozen=True)
class ClusterConfig:
    """The top-level ``[cluster]`` section: router + worker-fleet knobs.

    ``workers`` is the number of worker processes ``repro cluster``
    spawns; ``replicas`` is how many workers each *frozen* dataset is
    served from (reads fan across them; live datasets are always pinned
    to their single owner so the write order stays a serial history);
    ``vnodes`` is the virtual-node count per worker on the consistent-
    hash ring (router and supervisor must agree — both read this value);
    ``health_interval`` is the router's active health-check period in
    seconds.
    """

    workers: int = 2
    replicas: int = 2
    vnodes: int = 64
    health_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"cluster workers must be >= 1, got {self.workers}")
        if self.replicas < 1:
            raise ValueError(f"cluster replicas must be >= 1, got {self.replicas}")
        if self.vnodes < 1:
            raise ValueError(f"cluster vnodes must be >= 1, got {self.vnodes}")
        if self.health_interval <= 0:
            raise ValueError(
                f"cluster health_interval must be > 0, got {self.health_interval}"
            )

    @classmethod
    def from_dict(cls, raw: dict) -> "ClusterConfig":
        if not isinstance(raw, dict):
            raise ValueError(f"[cluster] must be a mapping, got {raw!r}")
        allowed = {f.name for f in fields(cls)}
        unknown = set(raw) - allowed
        if unknown:
            raise ValueError(f"unknown [cluster] keys: {sorted(unknown)}")
        return cls(**raw)


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro server`` needs to come up.

    ``max_inflight`` is the admission-control bound: queries and writes
    beyond it are shed with HTTP 429 instead of queueing without limit
    (metrics/health reads are always admitted).  ``drain_timeout`` caps
    how long a SIGTERM-triggered drain waits for in-flight requests
    before shutting the gateway down anyway.

    ``warmup`` enables the speculative warm-up thread
    (:class:`~repro.service.warmup.Warmer`): registered-but-cold datasets
    are built and their solver artifacts primed in the background, so
    first queries never pay the cold-start tail.  ``warmup_ks`` is the
    set of solution sizes it warms.

    ``tracing`` enables per-request tracing (on by default — overhead is
    a bounded ring buffer, see ``docs/OBSERVABILITY.md``);
    ``trace_buffer`` sizes the completed-trace ring and ``slow_trace_s``
    is the slow-trace log threshold.  ``slo`` holds the per-tenant
    objectives parsed from the top-level ``[slo]`` config section
    (defaults: p99 <= 100 ms, error rate <= 0.1%).

    ``planner`` holds the query-planner settings parsed from the
    top-level ``[planner]`` section (see ``docs/PLANNER.md``): the
    default ``static`` mode is byte-for-byte today's dispatch, and
    ``mode = "adaptive"`` turns on observed-cost steering with the
    latency budget defaulting to the ``[slo]`` target.

    ``wal_dir`` enables the live write-ahead log (fsync'd append before
    every write ack, replayed over the snapshot on restart — see
    ``docs/CLUSTER.md``).  ``worker_id`` names this process in v1.1
    response envelopes (``meta.worker``); the cluster supervisor sets it
    per worker.  ``cluster`` holds the top-level ``[cluster]`` section
    consumed by ``repro cluster``.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_inflight: int = 64
    batch_window: float = 0.002
    max_batch: int = 256
    drain_timeout: float = 30.0
    max_body_bytes: int = 1 << 20
    budget_mb: float | None = None
    spill_dir: str | None = None
    warmup: bool = False
    warmup_ks: tuple[int, ...] = (4, 6, 8)
    tracing: bool = True
    trace_buffer: int = 256
    slow_trace_s: float = 1.0
    wal_dir: str | None = None
    worker_id: str | None = None
    slo: SloObjectives = SloObjectives()
    planner: PlannerConfig = PlannerConfig()
    cluster: ClusterConfig = ClusterConfig()
    datasets: tuple[DatasetSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {self.drain_timeout}")
        if self.trace_buffer < 1:
            raise ValueError(f"trace_buffer must be >= 1, got {self.trace_buffer}")
        if self.slow_trace_s <= 0:
            raise ValueError(f"slow_trace_s must be > 0, got {self.slow_trace_s}")
        # TOML/JSON deliver warmup_ks as a list; normalize so the frozen
        # config stays hashable and validates early.
        object.__setattr__(
            self, "warmup_ks", tuple(int(k) for k in self.warmup_ks)
        )
        if any(k < 1 for k in self.warmup_ks):
            raise ValueError(f"warmup_ks must be positive: {self.warmup_ks}")
        names = [spec.name for spec in self.datasets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dataset names in config: {names}")


def parse_config(raw: dict, *, base_dir=None) -> ServerConfig:
    """Validate a raw config mapping (parsed TOML/JSON) into a ServerConfig.

    ``base_dir`` anchors a relative ``spill_dir`` (the config file's
    directory, so the snapshot tier lands next to the config rather
    than wherever the process was launched from).
    """
    if not isinstance(raw, dict):
        raise ValueError(f"config root must be a mapping, got {type(raw).__name__}")
    unknown = set(raw) - {"server", "datasets", "slo", "planner", "cluster"}
    if unknown:
        raise ValueError(f"unknown top-level config keys: {sorted(unknown)}")

    server_raw = dict(raw.get("server", {}))
    # `slo`, `planner`, and `cluster` are their own top-level sections,
    # never [server] keys.
    allowed = {f.name for f in fields(ServerConfig)} - {
        "datasets",
        "slo",
        "planner",
        "cluster",
    }
    unknown = set(server_raw) - allowed
    if unknown:
        raise ValueError(f"unknown [server] keys: {sorted(unknown)}")
    if "slo" in raw:
        server_raw["slo"] = SloObjectives.from_dict(raw["slo"])
    if "planner" in raw:
        server_raw["planner"] = PlannerConfig.from_dict(raw["planner"])
    if "cluster" in raw:
        server_raw["cluster"] = ClusterConfig.from_dict(raw["cluster"])

    specs = []
    datasets_raw = raw.get("datasets", [])
    if not isinstance(datasets_raw, (list, tuple)):
        raise ValueError("datasets must be a list of tables/objects")
    spec_fields = {f.name for f in fields(DatasetSpec)}
    for entry in datasets_raw:
        if not isinstance(entry, dict):
            raise ValueError(f"dataset entry must be a mapping, got {entry!r}")
        unknown = set(entry) - spec_fields
        if unknown:
            raise ValueError(
                f"dataset {entry.get('name', '?')!r}: unknown keys {sorted(unknown)}"
            )
        specs.append(DatasetSpec(**entry))

    config = ServerConfig(datasets=tuple(specs), **server_raw)
    if base_dir is not None:
        # Relative disk tiers anchor to the config file's directory.
        for attr in ("spill_dir", "wal_dir"):
            value = getattr(config, attr)
            if value is not None and not Path(value).is_absolute():
                config = replace(config, **{attr: str(Path(base_dir) / value)})
    return config


def load_config(path) -> ServerConfig:
    """Parse a ``.toml`` or ``.json`` server config file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        if tomllib is None:  # pragma: no cover - py3.10 only
            raise RuntimeError(
                "TOML configs need Python 3.11+ (stdlib tomllib); "
                "use an equivalent .json config instead"
            )
        with open(path, "rb") as fh:
            raw = tomllib.load(fh)
    elif suffix == ".json":
        with open(path) as fh:
            raw = json.load(fh)
    else:
        raise ValueError(
            f"unsupported config format {suffix!r} (expected .toml or .json)"
        )
    return parse_config(raw, base_dir=path.parent)


def demo_config(
    *, tenants: int = 3, n: int = 1_500, d: int = 2, groups: int = 3, port: int = 8080
) -> ServerConfig:
    """Built-in config mirroring the PR 3 multi-tenant benchmark workload."""
    specs = tuple(
        DatasetSpec(name=f"tenant{i}", n=n, d=d, groups=groups, seed=40 + i)
        for i in range(int(tenants))
    )
    return ServerConfig(port=port, datasets=specs)


def build_registry(
    config: ServerConfig, *, metrics: ServiceMetrics | None = None
) -> DatasetRegistry:
    """A :class:`DatasetRegistry` with every configured dataset registered.

    Nothing is built here — indexes come up lazily on first request, and
    with ``spill_dir`` set they warm-start from snapshots a previous
    process spilled under the same names.
    """
    max_bytes = (
        None if config.budget_mb is None else int(config.budget_mb * 2**20)
    )
    pconf = config.planner
    if pconf.mode == "adaptive" and pconf.target_p99_s is None:
        # The adaptive latency budget defaults to the SLO the server is
        # already held to — one target, stated once.
        pconf = replace(pconf, target_p99_s=config.slo.latency_target_s)
    wal = None
    if config.wal_dir is not None:
        # Imported lazily: repro.cluster pulls in the router/supervisor,
        # which import this module right back.
        from ..cluster.wal import WriteAheadLog

        wal = WriteAheadLog(config.wal_dir)
    registry = DatasetRegistry(
        max_bytes=max_bytes,
        metrics=metrics,
        spill_dir=config.spill_dir,
        planner=Planner(pconf),
        wal=wal,
    )
    for spec in config.datasets:
        registry.register(
            spec.name,
            factory=spec.factory(),
            live=spec.live,
            build_workers=spec.build_workers,
            default_seed=spec.default_seed,
            **spec.index,
        )
    return registry
