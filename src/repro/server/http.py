"""Minimal HTTP/1.1 wire protocol over asyncio streams (stdlib only).

Just enough HTTP for a JSON API: request-line + headers + an optional
``Content-Length`` body in, a JSON response with explicit
``Content-Length`` out, keep-alive by default.  No chunked encoding, no
multipart, no TLS — the server sits behind a real proxy in any
deployment that needs those; what this layer optimizes for is zero
dependencies and a parse cost far below one solve.

Malformed input raises :class:`HttpError` carrying the status code the
connection handler should answer with before closing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from urllib.parse import parse_qs

__all__ = ["HttpError", "HttpRequest", "read_request", "send_json", "send_text"]

_MAX_LINE = 8192
_MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    307: "Temporary Redirect",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Protocol-level failure; ``status`` is the response to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


async def _readline(reader, what: str) -> bytes:
    """One CRLF line, bounded: a 400 on overflow, never a raw ValueError.

    ``StreamReader.readline`` raises ``ValueError`` once a line exceeds
    the stream's buffer limit (64 KiB by default); an oversized request
    or header line must become an answerable 400, not an unhandled
    exception that kills the connection task without a response.
    """
    try:
        line = await reader.readline()
    except ValueError as exc:
        raise HttpError(400, f"{what} too long") from exc
    if len(line) > _MAX_LINE:
        raise HttpError(400, f"{what} too long")
    return line


@dataclass
class HttpRequest:
    """One parsed request: method, path (query string split off), body."""

    method: str
    path: str
    query: str
    headers: dict
    body: bytes

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 keep-alive semantics (``Connection: close`` opts out)."""
        return self.headers.get("connection", "").lower() != "close"

    def param(self, name: str) -> str | None:
        """Last value of a query-string parameter, or ``None``.

        Last-wins matches common proxy/client behavior for repeated
        parameters; garbage query strings simply yield no parameters.
        """
        values = parse_qs(self.query, keep_blank_values=True).get(name)
        return values[-1] if values else None

    def json(self):
        """The body parsed as JSON; :class:`HttpError` 400 on garbage."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def read_request(reader, *, max_body: int = 1 << 20) -> HttpRequest | None:
    """Parse one request from the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` on malformed input and oversized bodies
    (413) so the connection handler can answer before closing, and lets
    ``asyncio.IncompleteReadError`` (mid-request disconnect) propagate —
    there is no one left to answer.
    """
    line = await _readline(reader, "request line")
    if not line:
        return None  # clean EOF between requests
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: dict = {}
    while True:
        line = await _readline(reader, "header line")
        if not line:
            raise HttpError(400, "malformed headers")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= _MAX_HEADERS:
            raise HttpError(400, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body:
        raise HttpError(413, f"body of {length} bytes exceeds limit {max_body}")
    body = await reader.readexactly(length) if length else b""

    path, _, query = target.partition("?")
    return HttpRequest(
        method=method.upper(), path=path, query=query, headers=headers, body=body
    )


async def send_json(
    writer,
    status: int,
    payload,
    *,
    close: bool = False,
    extra_headers: dict | None = None,
) -> None:
    """Serialize ``payload`` as a JSON response and flush it."""
    body = json.dumps(payload).encode()
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    try:
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass  # the client went away; nothing left to deliver


async def send_text(
    writer,
    status: int,
    text: str,
    *,
    content_type: str = "text/plain; charset=utf-8",
    close: bool = False,
    extra_headers: dict | None = None,
) -> None:
    """Send a plain-text response (the Prometheus exposition endpoint)."""
    body = text.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    try:
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass  # the client went away; nothing left to deliver
