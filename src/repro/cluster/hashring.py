"""Consistent hashing of dataset names onto worker nodes.

The ring places ``vnodes`` virtual points per worker on a 64-bit circle
(BLAKE2b of ``"node#i"`` — deterministic across processes and runs,
unlike :func:`hash`, so the router and the supervisor always agree on
ownership).  A dataset's **owner** is the first node clockwise from the
hash of its name; its **preference list** continues clockwise, yielding
each distinct node once — entry 0 is the owner, entries 1..r-1 are the
replicas.  Adding or removing one node only remaps the keys that hashed
into the arcs that node's virtual points covered: the classic
consistent-hashing stability property, asserted by the unit tests.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _hash64(key: str) -> int:
    """Stable 64-bit hash (BLAKE2b) of a string key."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes.

    Not thread-safe for mutation; the router mutates it only from its
    event loop, and the supervisor builds its copy once at start.  Both
    sides construct the ring from the same node names with the same
    ``vnodes``, so shard assignment is identical by construction.
    """

    def __init__(self, nodes=(), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: list[int] = []  # sorted vnode positions
        self._owners: dict[int, str] = {}  # position -> node name
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> list[str]:
        """Current node names, sorted (for display and iteration)."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"node {node!r} already in ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _hash64(f"{node}#{i}")
            # A 64-bit collision between distinct nodes is ~impossible;
            # deterministic tie-break keeps both sides agreeing anyway.
            if point in self._owners and self._owners[point] < node:
                continue
            if point not in self._owners:
                bisect.insort(self._points, point)
            self._owners[point] = node

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not in ring")
        self._nodes.discard(node)
        stale = [p for p, owner in self._owners.items() if owner == node]
        for point in stale:
            del self._owners[point]
            idx = bisect.bisect_left(self._points, point)
            del self._points[idx]

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise ValueError("ring is empty")
        point = _hash64(key)
        idx = bisect.bisect_right(self._points, point)
        if idx == len(self._points):
            idx = 0  # wrap around the circle
        return self._owners[self._points[idx]]

    def preference(self, key: str, n: int | None = None) -> list[str]:
        """First ``n`` distinct nodes clockwise from ``key``'s hash.

        Entry 0 is the owner; the rest are the replica candidates in
        ring order.  ``n`` defaults to (and is capped at) the number of
        nodes in the ring.
        """
        if not self._points:
            raise ValueError("ring is empty")
        want = len(self._nodes) if n is None else min(int(n), len(self._nodes))
        point = _hash64(key)
        idx = bisect.bisect_right(self._points, point)
        out: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._points)):
            node = self._owners[self._points[(idx + step) % len(self._points)]]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) >= want:
                    break
        return out

    def assignment(self, keys) -> dict[str, str]:
        """Mapping of each key to its owning node (convenience)."""
        return {key: self.owner(key) for key in keys}
