"""Per-dataset write-ahead log for live inserts and deletes.

Durability contract: the gateway applies a write to the in-memory
:class:`~repro.serving.live.LiveFairHMSIndex`, appends one JSON record
to ``<wal_dir>/<quoted-name>.wal``, **fsyncs**, and only then resolves
the client's future.  An acked write therefore survives a SIGKILL: on
restart the registry loads the latest snapshot (or rebuilds from the
deterministic factory) and :meth:`WriteAheadLog.replay_into` re-applies
every record whose version is newer than the recovered index — the raw
(pre-scale) point goes back through the same ``insert`` path with the
same floats, so the recovered index is bit-identical to the pre-crash
one.

Record format — one JSON object per line, append-only::

    {"v": 7, "op": "insert", "key": 123, "point": [0.1, 0.9], "group": 1}
    {"v": 8, "op": "delete", "key": 45}

``v`` is the index version *after* the write applied; versions advance
by exactly 1 per mutation, which makes replay idempotent (records with
``v <= index.version`` are already in the snapshot and are skipped) and
lets replay verify it stayed in lockstep.  A torn final line (crash
mid-append) is tolerated: the write it described was never acked, so
dropping it is correct.  After a successful spill the log is compacted
with :meth:`truncate` — records at or below the snapshot's version are
redundant.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from urllib.parse import quote, unquote

__all__ = ["WalError", "WriteAheadLog"]


class WalError(RuntimeError):
    """Raised when replay diverges from the recorded version sequence."""


def _wal_filename(name: str) -> str:
    return quote(name, safe="") + ".wal"


class WriteAheadLog:
    """Append-only per-dataset logs under one directory, fsync'd.

    Thread-safe: a per-dataset lock serializes append/replay/truncate
    for that dataset (the registry's per-dataset spec lock already does
    this for the normal write path; the WAL's own lock keeps the file
    consistent even for out-of-band callers like tests).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._global = threading.Lock()
        self._locks: dict[str, threading.Lock] = {}
        self._files: dict[str, object] = {}  # open append handles

    def _lock(self, name: str) -> threading.Lock:
        with self._global:
            lock = self._locks.get(name)
            if lock is None:
                lock = self._locks.setdefault(name, threading.Lock())
            return lock

    def path(self, name: str) -> Path:
        return self.root / _wal_filename(name)

    def datasets(self) -> list[str]:
        """Dataset names that currently have a (non-empty) log file."""
        out = []
        for p in sorted(self.root.glob("*.wal")):
            if p.stat().st_size > 0:
                out.append(unquote(p.name[: -len(".wal")]))
        return out

    # -- append ------------------------------------------------------

    def append(self, name: str, record: dict) -> None:
        """Append one record and fsync before returning.

        The caller must include ``v`` (post-apply index version) and
        ``op``; the record is written as one compact JSON line.  An
        OSError propagates: the write must then be reported as failed,
        because the durability promise could not be kept.
        """
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock(name):
            handle = self._files.get(name)
            if handle is None:
                handle = open(self.path(name), "ab")
                self._files[name] = handle
            handle.write(line.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())

    def log_insert(self, name: str, version: int, key, point, group) -> None:
        self.append(
            name,
            {
                "v": int(version),
                "op": "insert",
                "key": int(key),
                "point": [float(x) for x in point],
                "group": int(group),
            },
        )

    def log_delete(self, name: str, version: int, key) -> None:
        self.append(name, {"v": int(version), "op": "delete", "key": int(key)})

    # -- read / replay ----------------------------------------------

    def records(self, name: str) -> list[dict]:
        """All intact records, oldest first; a torn tail is dropped.

        Only the *final* line may be torn (single appender, fsync per
        record); a decode failure anywhere earlier means real corruption
        and raises :class:`WalError`.
        """
        path = self.path(name)
        if not path.exists():
            return []
        raw = path.read_bytes()
        out: list[dict] = []
        lines = raw.split(b"\n")
        for i, line in enumerate(lines):
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-append: unacked
                raise WalError(
                    f"corrupt WAL record for {name!r} at line {i + 1}"
                ) from None
        return out

    def replay_into(self, name: str, index) -> int:
        """Re-apply records newer than ``index.version``; return count.

        Verifies lockstep: after each applied record the index version
        must equal the recorded ``v`` (versions advance by exactly 1 per
        mutation), otherwise the snapshot and the log disagree and
        recovery would silently diverge — that is a :class:`WalError`.
        """
        with self._lock(name):
            records = self.records(name)
        applied = 0
        for rec in records:
            version = int(rec["v"])
            if version <= index.version:
                continue  # already captured by the snapshot
            if version != index.version + 1:
                raise WalError(
                    f"WAL gap for {name!r}: index at version {index.version}, "
                    f"next record is v={version}"
                )
            if rec["op"] == "insert":
                index.insert(rec["key"], rec["point"], rec["group"])
            elif rec["op"] == "delete":
                index.delete(rec["key"])
            else:
                raise WalError(f"unknown WAL op {rec['op']!r} for {name!r}")
            if index.version != version:
                raise WalError(
                    f"WAL replay diverged for {name!r}: expected version "
                    f"{version}, index reports {index.version}"
                )
            applied += 1
        return applied

    # -- compaction --------------------------------------------------

    def truncate(self, name: str, upto_version: int) -> int:
        """Drop records with ``v <= upto_version`` (already snapshotted).

        Rewrites the file via temp + atomic rename; removes it entirely
        when nothing survives.  Returns the number of records kept.
        """
        with self._lock(name):
            handle = self._files.pop(name, None)
            if handle is not None:
                handle.close()
            records = self.records(name)
            keep = [r for r in records if int(r["v"]) > int(upto_version)]
            path = self.path(name)
            if not keep:
                path.unlink(missing_ok=True)
                return 0
            tmp = path.with_suffix(".wal.tmp")
            with open(tmp, "wb") as out:
                for rec in keep:
                    out.write(
                        (json.dumps(rec, separators=(",", ":")) + "\n").encode()
                    )
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp, path)
            return len(keep)

    def remove(self, name: str) -> None:
        """Delete the log for ``name`` (dataset unregistered)."""
        with self._lock(name):
            handle = self._files.pop(name, None)
            if handle is not None:
                handle.close()
            self.path(name).unlink(missing_ok=True)

    def close(self) -> None:
        with self._global:
            locks = list(self._locks.values())
        for lock in locks:
            lock.acquire()
        try:
            for handle in self._files.values():
                handle.close()
            self._files.clear()
        finally:
            for lock in locks:
                lock.release()
