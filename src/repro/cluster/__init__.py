"""Multi-process serving cluster: router, workers, hashing, and WAL.

One :class:`~repro.cluster.supervisor.FairHMSCluster` runs N worker
processes — each a full :class:`~repro.server.FairHMSServer` — behind a
single asyncio :class:`~repro.cluster.router.ClusterRouter` that proxies
``/v1/*``.  Datasets are partitioned across workers by consistent
hashing on the dataset name (:class:`~repro.cluster.hashring.HashRing`);
frozen datasets are replicated so reads fan out, live datasets are
pinned to their owner so the write order (and therefore the index
version sequence) is a single serial history.  Live writes are made
durable by a per-dataset write-ahead log
(:class:`~repro.cluster.wal.WriteAheadLog`): the gateway fsyncs an
append *before* acking the write, and a restarted worker replays the
tail on top of the latest snapshot — bit-identical recovery, proven by
``benchmarks/bench_cluster.py``.

See ``docs/CLUSTER.md`` for topology, failure semantics, and the WAL
record format.
"""

from repro.cluster.hashring import HashRing
from repro.cluster.router import ClusterRouter, RouterThread
from repro.cluster.supervisor import FairHMSCluster, run_cluster, shard_datasets
from repro.cluster.wal import WalError, WriteAheadLog

__all__ = [
    "ClusterRouter",
    "FairHMSCluster",
    "HashRing",
    "RouterThread",
    "WalError",
    "WriteAheadLog",
    "run_cluster",
    "shard_datasets",
]
