"""The cluster router: one asyncio front door over N worker servers.

The router owns no solver state.  It parses just enough of each
``/v1/*`` request to pick a worker — the dataset name, hashed onto the
consistent-hash ring — and proxies the request over a pooled keep-alive
connection, passing the worker's response bytes through untouched (the
bit-identity surface survives the hop byte-for-byte).  Routing policy:

* **live datasets are pinned to their owner.**  All writes and all
  queries for a live dataset go to the single ring owner, so the write
  order (and the index version sequence the WAL records) stays one
  serial history.
* **frozen datasets fan across replicas.**  Frozen indexes are
  immutable and deterministic, so the first ``replicas`` nodes of the
  dataset's ring preference list all answer bit-identically; reads
  rotate across the healthy ones, and a connect failure fails over to
  the next replica transparently.
* **health**: a background probe hits every worker's ``/healthz`` each
  ``health_interval``; a failed probe (or a failed proxy connect) marks
  the worker unhealthy immediately, a succeeding probe heals it.  With
  no reachable candidate the router answers 503
  ``worker_unavailable`` (retryable, with ``Retry-After``) — the SDK
  rides out a supervisor restart with its own backoff.

Router-originated endpoints: ``/healthz`` (bare, like the workers'),
``/v1/cluster`` (topology: workers, health, per-dataset routing),
``/metrics`` (Prometheus text exposition of the ``repro_cluster_*``
series), ``/v1/metrics`` (JSON router stats; ``?worker=NAME`` proxies
to that worker instead), and ``/v1/traces`` (router-hop traces;
``?worker=NAME`` proxies).  Router responses use the same v1.1
envelope as the workers with ``meta.worker = "router"``.

Every proxied response gains ``x-repro-worker`` (who answered) and
``x-repro-route`` (``owner``, ``replica``, or ``failover``) headers, so
clients and benches can observe routing without parsing bodies.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time

from ..obs.prometheus import PrometheusRenderer
from ..obs.trace import Trace, TraceStore
from ..server.api import error_object, new_request_id, wants_envelope, wrap_legacy
from ..server.http import HttpError, HttpRequest, read_request, send_json, send_text
from ..service.metrics import LatencyHistogram
from .hashring import HashRing

__all__ = ["ClusterRouter", "RouterThread"]

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request headers forwarded to workers (hop-by-hop headers are not).
_FORWARD_HEADERS = ("content-type", "accept", "x-repro-trace")


class _Worker:
    """Router-side record of one worker process."""

    __slots__ = ("name", "host", "port", "healthy", "pool")

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = str(host)
        self.port = int(port)
        self.healthy = True
        self.pool: list[tuple] = []  # free (reader, writer) pairs


class ClusterRouter:
    """Asyncio proxy partitioning datasets across worker servers.

    Args:
        workers: ``name -> (host, port)`` of the worker fleet.
        datasets: ``name -> live?`` for every configured dataset — live
            ones are pinned to their owner, frozen ones fan across
            replicas.  Unknown names route to their would-be owner,
            which answers the authoritative 404.
        replicas: how many ring nodes serve each frozen dataset.
        vnodes: virtual nodes per worker (must match the supervisor's).
        host / port: listen address (port 0 = OS-assigned).
        health_interval: seconds between active health probes.
        connect_timeout: seconds to wait for a worker TCP connect.
        tracing / trace_buffer: router-hop trace ring (span per proxy).
    """

    def __init__(
        self,
        workers: dict,
        *,
        datasets: dict | None = None,
        replicas: int = 2,
        vnodes: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
        health_interval: float = 1.0,
        connect_timeout: float = 1.0,
        max_body_bytes: int = 1 << 20,
        tracing: bool = True,
        trace_buffer: int = 256,
    ) -> None:
        if not workers:
            raise ValueError("a cluster needs at least one worker")
        self.host = str(host)
        self.port = int(port)
        self.replicas = int(replicas)
        self.health_interval = float(health_interval)
        self.connect_timeout = float(connect_timeout)
        self.max_body_bytes = int(max_body_bytes)
        self.ring = HashRing(workers, vnodes=vnodes)
        self._workers = {
            name: _Worker(name, host_, port_)
            for name, (host_, port_) in workers.items()
        }
        self._live = {
            name: bool(live) for name, live in (datasets or {}).items()
        }
        self._rr: dict[str, int] = {}  # per-dataset replica rotation
        self.traces: TraceStore | None = (
            TraceStore(capacity=trace_buffer) if tracing else None
        )
        self.hop_latency = LatencyHistogram()
        self._counters: dict[tuple, int] = {}
        self._server: asyncio.base_events.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def start(self) -> "ClusterRouter":
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())
        return self

    async def drain(self) -> None:
        """Stop accepting, cancel probes, close worker pools."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
        for worker in self._workers.values():
            for _reader, writer in worker.pool:
                with contextlib.suppress(Exception):
                    writer.close()
            worker.pool.clear()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    def set_worker(self, name: str, host: str, port: int) -> None:
        """Point ``name`` at a new address (supervisor restarted it).

        Call from the router's event loop (the supervisor uses
        ``call_soon_threadsafe``).  The old pool is dropped — those
        sockets point at the dead process.
        """
        worker = self._workers.get(name)
        if worker is None:
            raise KeyError(f"unknown worker {name!r}")
        for _reader, writer in worker.pool:
            with contextlib.suppress(Exception):
                writer.close()
        worker.pool = []
        worker.host = str(host)
        worker.port = int(port)
        worker.healthy = True

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #

    def _incr(self, name: str, label: str | None = None, n: int = 1) -> None:
        key = (name, label)
        self._counters[key] = self._counters.get(key, 0) + n

    def stats(self) -> dict:
        """JSON router stats (the ``/v1/metrics`` body)."""
        counters: dict[str, object] = {}
        for (name, label), value in sorted(self._counters.items()):
            if label is None:
                counters[name] = value
            else:
                counters.setdefault(name, {})[label] = value  # type: ignore[union-attr]
        return {
            "workers": {
                name: {
                    "host": w.host,
                    "port": w.port,
                    "healthy": w.healthy,
                    "pooled_connections": len(w.pool),
                }
                for name, w in sorted(self._workers.items())
            },
            "counters": counters,
            "hop_latency": self.hop_latency.snapshot(),
            "datasets": {
                name: self.describe_route(name) for name in sorted(self._live)
            },
        }

    def describe_route(self, dataset: str) -> dict:
        """Routing verdict for one dataset name (``/v1/cluster`` rows)."""
        live = self._live.get(dataset, False)
        preference = self.ring.preference(
            dataset, 1 if live else self.replicas
        )
        return {
            "live": live,
            "owner": preference[0],
            "replicas": preference,
        }

    def prometheus_exposition(self) -> str:
        """The ``repro_cluster_*`` scrape body."""
        r = PrometheusRenderer(namespace="repro_cluster")
        healthy = sum(1 for w in self._workers.values() if w.healthy)
        r.gauge("workers", len(self._workers), help="Configured workers.")
        r.gauge("workers_healthy", healthy, help="Workers passing health checks.")
        r.gauge(
            "datasets",
            len(self._live),
            help="Datasets the router knows routing policy for.",
        )
        help_by_name = {
            "requests": "Requests accepted by the router, per endpoint.",
            "proxied": "Requests proxied, per worker.",
            "failovers": "Reads retried on a replica after a worker failure.",
            "routing_errors": "Router-originated error responses, per code.",
            "health_probes": "Active health probes sent.",
            "health_failures": "Active health probes that failed.",
        }
        label_by_name = {
            "requests": "endpoint",
            "proxied": "worker",
            "routing_errors": "code",
        }
        for (name, label), value in sorted(self._counters.items()):
            labels = None
            if label is not None:
                labels = {label_by_name.get(name, "label"): label}
            r.counter(
                f"{name}_total",
                value,
                labels,
                help=help_by_name.get(name, f"Router counter {name}."),
            )
        r.histogram(
            "hop_seconds",
            self.hop_latency.export(),
            help="Router hop latency: request parsed to response relayed.",
        )
        return r.render()

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            for worker in list(self._workers.values()):
                await self._probe(worker)

    async def _probe(self, worker: _Worker) -> None:
        """One active /healthz probe on a throwaway connection."""
        self._incr("health_probes")
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(worker.host, worker.port),
                timeout=self.connect_timeout,
            )
        except (OSError, asyncio.TimeoutError):
            self._mark_down(worker)
            return
        try:
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: cluster\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            status, _headers, _body, _close = await asyncio.wait_for(
                _read_response(reader), timeout=self.connect_timeout + 1.0
            )
            worker.healthy = status == 200
            if not worker.healthy:
                self._incr("health_failures")
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            self._mark_down(worker)
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    def _mark_down(self, worker: _Worker) -> None:
        self._incr("health_failures")
        worker.healthy = False
        for _reader, w in worker.pool:
            with contextlib.suppress(Exception):
                w.close()
        worker.pool = []

    # ------------------------------------------------------------------ #
    # proxy plumbing
    # ------------------------------------------------------------------ #

    async def _checkout(self, worker: _Worker):
        """A pooled connection to ``worker``, or a fresh one."""
        while worker.pool:
            reader, writer = worker.pool.pop()
            if not writer.is_closing():
                return reader, writer
            with contextlib.suppress(Exception):
                writer.close()
        return await asyncio.wait_for(
            asyncio.open_connection(worker.host, worker.port),
            timeout=self.connect_timeout,
        )

    async def _exchange(self, worker: _Worker, request: HttpRequest):
        """Proxy one request; returns ``(status, header_lines, body)``.

        Raises ``OSError``/``TimeoutError``/``IncompleteReadError`` on
        transport failure (caller decides whether failover is safe).
        """
        reader, writer = await self._checkout(worker)
        try:
            target = request.path + (f"?{request.query}" if request.query else "")
            head = [
                f"{request.method} {target} HTTP/1.1",
                f"Host: {worker.host}:{worker.port}",
                "Connection: keep-alive",
                f"Content-Length: {len(request.body)}",
            ]
            for name in _FORWARD_HEADERS:
                value = request.headers.get(name)
                if value is not None:
                    head.append(f"{name}: {value}")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + request.body)
            await writer.drain()
            status, header_lines, body, close = await _read_response(reader)
        except BaseException:
            with contextlib.suppress(Exception):
                writer.close()
            raise
        if close:
            with contextlib.suppress(Exception):
                writer.close()
        else:
            worker.pool.append((reader, writer))
        return status, header_lines, body

    def _candidates(self, dataset: str, *, write: bool) -> list[_Worker]:
        """Routing order for one request: owner first, then replicas.

        Live datasets and writes pin to the owner alone; frozen reads
        rotate the healthy replicas (sticky owner start otherwise) and
        keep unhealthy ones as last-resort candidates — a stale health
        verdict must not turn into a refusal while the worker is back.
        """
        live = self._live.get(dataset, False)
        if write or live:
            return [self._workers[self.ring.owner(dataset)]]
        names = self.ring.preference(dataset, self.replicas)
        workers = [self._workers[name] for name in names]
        healthy = [w for w in workers if w.healthy]
        if not healthy:
            return workers
        turn = self._rr.get(dataset, 0)
        self._rr[dataset] = turn + 1
        rotated = healthy[turn % len(healthy):] + healthy[: turn % len(healthy)]
        return rotated + [w for w in workers if not w.healthy]

    async def _proxy(self, request: HttpRequest, dataset: str, *, write: bool):
        """Route + proxy one request; returns a relay or router error."""
        candidates = self._candidates(dataset, write=write)
        route = "owner" if (write or self._live.get(dataset, False)) else "replica"
        span = None
        if self.traces is not None:
            span = Trace(
                f"proxy {request.path}",
                trace_id=request.headers.get("x-repro-trace"),
                dataset=dataset,
            )
        attempts = list(candidates)
        if write and len(attempts) == 1:
            # The owner gets a second chance: a supervisor restart swaps
            # the address between the tries (set_worker drops the pool).
            attempts = attempts * 2
        last_worker = None
        for tries, worker in enumerate(attempts):
            last_worker = worker
            t0 = time.perf_counter()
            try:
                status, header_lines, body = await self._exchange(worker, request)
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                self._mark_down(worker)
                if span is not None:
                    span.annotate(failed_worker=worker.name)
                if tries + 1 < len(attempts):
                    self._incr("failovers")
                    route = "failover"
                    if write:
                        await asyncio.sleep(
                            min(self.health_interval, self.connect_timeout)
                        )
                continue
            self.hop_latency.observe(time.perf_counter() - t0)
            self._incr("proxied", worker.name)
            worker.healthy = True
            if span is not None:
                span.annotate(worker=worker.name, route=route, status=status)
                self.traces.record(span)
            extra = [f"x-repro-worker: {worker.name}", f"x-repro-route: {route}"]
            return ("relay", status, header_lines + extra, body)
        if span is not None:
            span.annotate(error=True, route="unavailable")
            self.traces.record(span)
        self._incr("routing_errors", "worker_unavailable")
        who = last_worker.name if last_worker is not None else "?"
        return (
            "error",
            503,
            {
                "error": (
                    f"no worker reachable for dataset {dataset!r} "
                    f"(last tried {who})"
                ),
                "code": "worker_unavailable",
            },
            {"Retry-After": "1"},
        )

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body_bytes
                    )
                except HttpError as exc:
                    await send_json(
                        writer, exc.status, {"error": str(exc)}, close=True
                    )
                    return
                if request is None:
                    return
                close = not request.keep_alive or self._draining
                done = await self._handle(request, writer, close=close)
                if close or not done:
                    return
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            return
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle(self, request: HttpRequest, writer, *, close: bool) -> bool:
        """Answer one request; False ends the connection (relay failed)."""
        self._incr("requests", f"{request.method} {request.path}")
        outcome = await self._route_request(request)
        kind = outcome[0]
        if kind == "relay":
            _, status, header_lines, body = outcome
            await _relay(writer, status, header_lines, body)
            return True
        _, status, payload, extra = outcome
        if request.path.startswith("/v1/") and wants_envelope(request):
            request_id = request.headers.get("x-repro-trace") or new_request_id()
            code = payload.pop("code", None) if isinstance(payload, dict) else None
            if status < 400:
                payload = wrap_legacy(
                    status, payload, request_id=request_id, worker="router"
                )
            else:
                message = (
                    payload.get("error", "") if isinstance(payload, dict) else ""
                )
                payload = {
                    "data": None,
                    "error": error_object(code or "internal", message),
                    "meta": {
                        "request_id": request_id,
                        "worker": "router",
                        "api_version": "1.1",
                    },
                }
        elif isinstance(payload, dict):
            payload.pop("code", None)
        if isinstance(payload, str):
            await send_text(
                writer,
                status,
                payload,
                content_type=_PROMETHEUS_CONTENT_TYPE,
                close=close,
                extra_headers=extra,
            )
        else:
            await send_json(
                writer, status, payload, close=close, extra_headers=extra
            )
        return True

    async def _route_request(self, request: HttpRequest):
        """Dispatch: router-originated endpoints, else proxy by dataset."""
        method, path = request.method, request.path
        if path == "/healthz":
            healthy = sum(1 for w in self._workers.values() if w.healthy)
            return (
                "local",
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "role": "router",
                    "workers": len(self._workers),
                    "workers_healthy": healthy,
                    "datasets": len(self._live),
                },
                None,
            )
        if path == "/metrics" or (
            path == "/v1/metrics" and request.param("format") == "prometheus"
        ):
            return ("local", 200, self.prometheus_exposition(), None)
        if path == "/v1/cluster":
            if method != "GET":
                return ("local", 405, {"error": "use GET"}, None)
            return (
                "local",
                200,
                {
                    "replicas": self.replicas,
                    "workers": self.stats()["workers"],
                    "datasets": {
                        name: self.describe_route(name)
                        for name in sorted(self._live)
                    },
                },
                None,
            )
        if path in ("/v1/metrics", "/v1/traces"):
            target = request.param("worker")
            if target is not None:
                worker = self._workers.get(target)
                if worker is None:
                    return (
                        "local",
                        404,
                        {
                            "error": f"unknown worker {target!r}",
                            "code": "not_found",
                        },
                        None,
                    )
                try:
                    status, header_lines, body = await self._exchange(
                        worker, request
                    )
                except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                    self._mark_down(worker)
                    self._incr("routing_errors", "worker_unavailable")
                    return (
                        "error",
                        503,
                        {
                            "error": f"worker {target!r} unreachable",
                            "code": "worker_unavailable",
                        },
                        {"Retry-After": "1"},
                    )
                self._incr("proxied", worker.name)
                extra = [
                    f"x-repro-worker: {worker.name}",
                    "x-repro-route: direct",
                ]
                return ("relay", status, header_lines + extra, body)
            if path == "/v1/metrics":
                return ("local", 200, self.stats(), None)
            if self.traces is None:
                return (
                    "local",
                    200,
                    {"tracing": False, "recent": [], "slowest": []},
                    None,
                )
            payload = self.traces.snapshot(limit=20)
            payload["tracing"] = True
            return ("local", 200, payload, None)
        if path in ("/v1/query", "/v1/write", "/v1/datasets"):
            if path == "/v1/datasets":
                # Any healthy worker can answer (all register the full
                # dataset list); reuse the frozen fan-out policy with a
                # name every worker "owns".
                for worker in self._candidates("", write=False) or list(
                    self._workers.values()
                ):
                    try:
                        status, header_lines, body = await self._exchange(
                            worker, request
                        )
                    except (
                        OSError,
                        asyncio.TimeoutError,
                        asyncio.IncompleteReadError,
                    ):
                        self._mark_down(worker)
                        continue
                    self._incr("proxied", worker.name)
                    extra = [
                        f"x-repro-worker: {worker.name}",
                        "x-repro-route: any",
                    ]
                    return ("relay", status, header_lines + extra, body)
                self._incr("routing_errors", "worker_unavailable")
                return (
                    "error",
                    503,
                    {"error": "no worker reachable", "code": "worker_unavailable"},
                    {"Retry-After": "1"},
                )
            if method != "POST":
                return ("local", 405, {"error": "use POST"}, None)
            try:
                body = request.json()
            except HttpError as exc:
                return (
                    "local",
                    exc.status,
                    {"error": str(exc), "code": "invalid_argument"},
                    None,
                )
            dataset = body.get("dataset")
            if not isinstance(dataset, str) or not dataset:
                return (
                    "local",
                    400,
                    {
                        "error": "dataset must be a non-empty string",
                        "code": "invalid_argument",
                    },
                    None,
                )
            return await self._proxy(
                request, dataset, write=path == "/v1/write"
            )
        return (
            "local",
            404,
            {"error": f"no such endpoint: {method} {path}", "code": "not_found"},
            None,
        )


async def _read_response(reader):
    """Parse one upstream HTTP response.

    Returns ``(status, header_lines, body, close)`` where
    ``header_lines`` are the verbatim header strings (relayed untouched
    so the worker's response survives byte-for-byte).
    """
    status_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
    if not status_line:
        raise asyncio.IncompleteReadError(b"", None)
    parts = status_line.split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise OSError(f"malformed upstream status line: {status_line!r}")
    status = int(parts[1])
    header_lines: list[str] = []
    length = 0
    close = False
    while True:
        line = (await reader.readline()).decode("latin-1")
        if line in ("\r\n", "\n", ""):
            break
        header_lines.append(line.rstrip("\r\n"))
        name, _, value = line.partition(":")
        lowered = name.strip().lower()
        if lowered == "content-length":
            length = int(value.strip())
        elif lowered == "connection" and value.strip().lower() == "close":
            close = True
    body = await reader.readexactly(length) if length else b""
    return status, header_lines, body, close


async def _relay(writer, status: int, header_lines: list, body: bytes) -> None:
    """Forward an upstream response (original headers + router's) out."""
    reason = {200: "OK"}.get(status, "")
    head = [f"HTTP/1.1 {status} {reason}".rstrip()] + list(header_lines)
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    try:
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass


class RouterThread:
    """A :class:`ClusterRouter` on a daemon thread (context manager).

    The cluster-side sibling of ``repro.server.runner.ServerThread`` —
    used by the supervisor, the tests, and ``bench_cluster.py``.
    """

    def __init__(self, *args, **kwargs) -> None:
        self._args = args
        self._kwargs = kwargs
        self.router: ClusterRouter | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-router", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if self.router is None:
            raise RuntimeError("router failed to start within 30s")
        return self.router.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        router = ClusterRouter(*self._args, **self._kwargs)
        await router.start()
        self._loop = asyncio.get_running_loop()
        self.router = router
        self._started.set()
        await router.wait_stopped()

    @property
    def loop(self) -> asyncio.AbstractEventLoop | None:
        return self._loop

    def set_worker(self, name: str, host: str, port: int) -> None:
        """Thread-safe worker address update (supervisor restarts)."""
        if self.router is None or self._loop is None:
            raise RuntimeError("router not started")
        self._loop.call_soon_threadsafe(
            self.router.set_worker, name, host, port
        )

    def drain(self, timeout: float = 30.0) -> None:
        if self.router is None or self._loop is None:
            return
        if self._thread is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.router.drain(), self._loop
            )
            future.result(timeout=timeout)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()
