"""The cluster worker process: one ``FairHMSServer`` per shard.

``worker_entry`` is the ``multiprocessing`` (spawn) target the
supervisor launches N times.  Each worker is an ordinary standalone
server — same gateway, registry, spill tier, and WAL wiring — whose
config the supervisor has already specialized: ``port = 0`` (the OS
assigns), ``worker_id`` names it in response envelopes, and
``datasets`` is its shard (all frozen specs, plus the live specs this
worker owns on the ring).

Port handoff: the worker binds first, then writes ``"host port"`` to
its ready file atomically (temp + rename), so the supervisor never
reads a half-written line and never has to guess a port.
"""

from __future__ import annotations

import asyncio
import os

from ..server.app import FairHMSServer
from ..server.config import ServerConfig

__all__ = ["worker_entry"]


async def _worker_main(config: ServerConfig, ready_path: str) -> None:
    server = FairHMSServer.from_config(config)
    await server.start()
    server.install_signal_handlers()
    host, port = server.address
    tmp = f"{ready_path}.tmp"
    with open(tmp, "w") as fh:
        fh.write(f"{host} {port}\n")
    os.replace(tmp, ready_path)
    try:
        await server.wait_stopped()
    finally:
        if not server.draining:
            await server.drain()


def worker_entry(config: ServerConfig, ready_path: str) -> None:
    """Run one worker server until drained (the spawn target)."""
    asyncio.run(_worker_main(config, ready_path))
