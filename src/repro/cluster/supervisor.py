"""The cluster supervisor: worker fleet + router, one front door.

:class:`FairHMSCluster` turns one :class:`ServerConfig` into a running
cluster: it shards the configured datasets onto ``cluster.workers``
worker processes (:func:`shard_datasets`), spawns each worker
(``multiprocessing`` spawn context — a fresh interpreter, nothing
inherited from the calling process), starts a
:class:`~repro.cluster.router.ClusterRouter` over the fleet, and
babysits: a monitor thread respawns any worker that dies and repoints
the router at the replacement's new port.

Sharding policy (must agree with the router's, and does — both read
the same ring):

* **frozen datasets register on every worker.**  They are immutable
  and build deterministically (or warm-start from the shared
  ``spill_dir``), so any worker can serve them bit-identically; the
  router restricts reads to the first ``cluster.replicas`` ring nodes.
* **live datasets register only on their ring owner.**  A live index
  is a serial write history; registering it elsewhere would let a
  replica's stale factory-built copy race the owner's snapshot in the
  shared spill dir, and would split the WAL's version sequence.

Durability: workers share ``spill_dir`` and ``wal_dir``.  A respawned
worker warm-starts from the owner's last snapshot and replays the WAL
tail on top — the kill-a-worker test in ``tests/test_cluster.py``
asserts the recovered answers are bit-identical.

Topology is static for the life of the cluster: changing the worker
count reshards live datasets and requires a restart (documented in
``docs/CLUSTER.md``).
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import replace

from ..server.config import ServerConfig
from .hashring import HashRing
from .router import RouterThread
from .worker import worker_entry

__all__ = ["FairHMSCluster", "run_cluster", "shard_datasets"]


def shard_datasets(config: ServerConfig, ring: HashRing) -> dict:
    """Per-worker configs: ``worker name -> ServerConfig`` for its shard.

    Every worker gets all frozen specs; each live spec goes only to its
    ring owner.  Worker configs bind port 0 and carry their name as
    ``worker_id`` (the ``meta.worker`` field in their envelopes).
    """
    shards: dict[str, list] = {name: [] for name in ring.nodes}
    for spec in config.datasets:
        if spec.live:
            shards[ring.owner(spec.name)].append(spec)
        else:
            for name in ring.nodes:
                shards[name].append(spec)
    return {
        name: replace(
            config,
            port=0,
            worker_id=name,
            datasets=tuple(specs),
        )
        for name, specs in shards.items()
    }


class _Member:
    """One supervised worker: its shard config and current incarnation."""

    __slots__ = ("name", "config", "process", "host", "port", "incarnation")

    def __init__(self, name: str, config: ServerConfig) -> None:
        self.name = name
        self.config = config
        self.process: multiprocessing.process.BaseProcess | None = None
        self.host = ""
        self.port = 0
        self.incarnation = 0


class FairHMSCluster:
    """N worker processes behind one router (context manager).

    Args:
        config: the full server config; ``config.cluster`` sizes the
            fleet, ``config.datasets`` is the complete dataset list
            (sharded here), ``config.host``/``config.port`` become the
            *router's* listen address.
        start_timeout: seconds to wait for each worker to bind and
            write its ready file (cold spawns import numpy; be patient).
    """

    def __init__(self, config: ServerConfig, *, start_timeout: float = 60.0) -> None:
        self.config = config
        self.start_timeout = float(start_timeout)
        self.ring = HashRing(
            [f"w{i}" for i in range(config.cluster.workers)],
            vnodes=config.cluster.vnodes,
        )
        self._members = {
            name: _Member(name, shard)
            for name, shard in shard_datasets(config, self.ring).items()
        }
        self._ctx = multiprocessing.get_context("spawn")
        self._run_dir: str | None = None
        self._router: RouterThread | None = None
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self.restarts = 0

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #

    def _spawn(self, member: _Member) -> None:
        """Start (or restart) one worker and wait for its ready file."""
        member.incarnation += 1
        ready = os.path.join(
            self._run_dir, f"{member.name}-{member.incarnation}.ready"
        )
        process = self._ctx.Process(
            target=worker_entry,
            args=(member.config, ready),
            name=f"repro-{member.name}",
            daemon=True,
        )
        process.start()
        deadline = time.monotonic() + self.start_timeout
        while not os.path.exists(ready):
            if not process.is_alive():
                raise RuntimeError(
                    f"worker {member.name} exited during startup "
                    f"(exitcode {process.exitcode})"
                )
            if time.monotonic() > deadline:
                process.kill()
                raise RuntimeError(
                    f"worker {member.name} did not become ready within "
                    f"{self.start_timeout:.0f}s"
                )
            time.sleep(0.02)
        with open(ready) as fh:
            host, port = fh.read().split()
        member.process = process
        member.host = host
        member.port = int(port)

    def _monitor_loop(self) -> None:
        """Respawn dead workers and repoint the router at replacements."""
        while not self._stopping.wait(0.2):
            for member in self._members.values():
                with self._lock:
                    if self._stopping.is_set():
                        return
                    process = member.process
                    if process is None or process.is_alive():
                        continue
                    try:
                        self._spawn(member)
                    except RuntimeError:
                        # Startup crash-loop: leave it down; the router
                        # keeps answering 503 for its datasets and the
                        # next monitor tick tries again.
                        member.process = None
                        continue
                    self.restarts += 1
                    if self._router is not None:
                        self._router.set_worker(
                            member.name, member.host, member.port
                        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def start(self) -> tuple[str, int]:
        """Spawn the fleet, start the router; returns the router address."""
        self._run_dir = tempfile.mkdtemp(prefix="repro-cluster-")
        try:
            for member in self._members.values():
                self._spawn(member)
        except BaseException:
            self.stop()
            raise
        self._router = RouterThread(
            {m.name: (m.host, m.port) for m in self._members.values()},
            datasets={spec.name: spec.live for spec in self.config.datasets},
            replicas=self.config.cluster.replicas,
            vnodes=self.config.cluster.vnodes,
            host=self.config.host,
            port=self.config.port,
            health_interval=self.config.cluster.health_interval,
            max_body_bytes=self.config.max_body_bytes,
            tracing=self.config.tracing,
            trace_buffer=self.config.trace_buffer,
        )
        try:
            address = self._router.start()
        except BaseException:
            self.stop()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        return address

    @property
    def router(self) -> RouterThread:
        if self._router is None:
            raise RuntimeError("cluster not started")
        return self._router

    def workers(self) -> dict:
        """Current fleet view: ``name -> {host, port, pid, alive}``."""
        out = {}
        with self._lock:
            for name, m in sorted(self._members.items()):
                process = m.process
                out[name] = {
                    "host": m.host,
                    "port": m.port,
                    "pid": process.pid if process is not None else None,
                    "alive": process is not None and process.is_alive(),
                    "incarnation": m.incarnation,
                }
        return out

    def kill_worker(self, name: str) -> int:
        """SIGKILL one worker (crash-test hook); returns the dead pid.

        The monitor thread respawns it within a few hundred ms; use
        :meth:`wait_worker` to block until the replacement is serving.
        """
        with self._lock:
            member = self._members[name]
            process = member.process
            if process is None or not process.is_alive():
                raise RuntimeError(f"worker {name} is not running")
            pid = process.pid
            incarnation = member.incarnation
        os.kill(pid, signal.SIGKILL)
        process.join(timeout=10)
        return incarnation

    def wait_worker(self, name: str, *, incarnation: int | None = None,
                    timeout: float = 60.0) -> dict:
        """Block until ``name`` is alive (past ``incarnation`` if given)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            view = self.workers()[name]
            newer = (
                incarnation is None or view["incarnation"] > incarnation
            )
            if view["alive"] and newer:
                return view
            time.sleep(0.05)
        raise TimeoutError(f"worker {name} did not come back within {timeout:.0f}s")

    def stop(self) -> None:
        """Drain the router, stop the fleet, clean up the run dir."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None
        if self._router is not None:
            self._router.drain()
            self._router = None
        with self._lock:
            processes = []
            for member in self._members.values():
                process = member.process
                member.process = None
                if process is not None and process.is_alive():
                    process.terminate()  # SIGTERM -> worker drains
                    processes.append(process)
        # Every SIGTERM is out; now collect the (concurrent) drains.
        for process in processes:
            process.join(timeout=10)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        if self._run_dir is not None:
            shutil.rmtree(self._run_dir, ignore_errors=True)
            self._run_dir = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def run_cluster(config: ServerConfig) -> None:
    """Blocking ``repro cluster`` entry point: run until SIGTERM/SIGINT."""
    stop = threading.Event()

    def _request_stop(signum, _frame) -> None:  # noqa: ARG001
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_stop)
    cluster = FairHMSCluster(config)
    try:
        host, port = cluster.start()
        names = ", ".join(sorted(s.name for s in config.datasets)) or "none"
        print(f"repro cluster router listening on http://{host}:{port}")
        print(
            f"workers: {config.cluster.workers} "
            f"(replicas={config.cluster.replicas}, "
            f"vnodes={config.cluster.vnodes})"
        )
        print(f"datasets: {names}")
        stop.wait()
        print("drain requested; stopping cluster")
    finally:
        cluster.stop()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("cluster stopped; bye")
