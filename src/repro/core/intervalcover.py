"""Fair interval cover via dynamic programming (paper Algorithm 2).

Given per-point sub-intervals of ``[0, 1]`` and a group-fairness constraint,
decide whether a *fair* set of points exists whose intervals cover
``[0, 1]``.  Plain interval cover is solved by the textbook greedy (extend
coverage with the interval reaching furthest right); fairness breaks the
greedy, so the paper runs it inside a DP over group-count vectors:

    IC[k_1, ..., k_C] = furthest coverage end achievable using exactly
                        k_c points of group c (greedy within each count
                        vector), k_c <= h_c,

with the transition of Equation 1 and states pruned as *infeasible* when
``sum_c max(l_c, k_c) > k`` (they can never be completed to a fair size-k
set).  We iterate states in increasing total-count order — every
predecessor of a state precedes it — which is equivalent to the paper's
explicit stack recursion but simpler and allocation-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from ..fairness.constraints import FairnessConstraint

__all__ = ["GroupIntervals", "fair_interval_cover"]

_EPS = 1e-9
_UNREACHED = -np.inf


@dataclass(frozen=True)
class GroupIntervals:
    """Sorted interval index for one group.

    ``query(v)`` returns the interval with left end ``<= v + eps`` whose
    right end is maximal — exactly the greedy step — in ``O(log n)`` using
    a prefix argmax over the left-end ordering.
    """

    left: np.ndarray
    right: np.ndarray
    point: np.ndarray
    prefix_best_right: np.ndarray
    prefix_best_at: np.ndarray

    @classmethod
    def from_intervals(cls, intervals) -> "GroupIntervals":
        """Build from a list of ``(lo, hi, point_index)`` triples."""
        if intervals:
            arr = np.array([(lo, hi) for lo, hi, _ in intervals], dtype=np.float64)
            pts = np.array([p for _, _, p in intervals], dtype=np.int64)
            return cls.from_arrays(arr[:, 0], arr[:, 1], pts)
        return cls.from_arrays(
            np.empty(0), np.empty(0), np.empty(0, dtype=np.int64)
        )

    @classmethod
    def from_arrays(cls, left, right, point) -> "GroupIntervals":
        """Build from parallel endpoint / point-index arrays.

        Fully vectorized (the per-element prefix-argmax loop is replaced
        by ``np.maximum.accumulate``); this is the hot constructor — IntCov
        rebuilds every group's index at every decision evaluation.  Ties in
        ``right`` keep the *first* attaining interval, exactly as the
        scalar loop did, so covers (and therefore solutions) are unchanged
        bit for bit.
        """
        left = np.ascontiguousarray(left, dtype=np.float64)
        right = np.ascontiguousarray(right, dtype=np.float64)
        pts = np.ascontiguousarray(point, dtype=np.int64)
        n = right.shape[0]
        if n:
            order = np.argsort(left, kind="stable")
            left, right, pts = left[order], right[order], pts[order]
            best_right = np.maximum.accumulate(right)
            # First index attaining each running max: mark strict
            # improvements, then carry the latest mark forward.
            improved = np.empty(n, dtype=bool)
            improved[0] = True
            np.greater(right[1:], best_right[:-1], out=improved[1:])
            best_at = np.maximum.accumulate(
                np.where(improved, np.arange(n, dtype=np.int64), 0)
            )
        else:
            best_right = np.empty(0)
            best_at = np.empty(0, dtype=np.int64)
        return cls(
            left=left,
            right=right,
            point=pts,
            prefix_best_right=best_right,
            prefix_best_at=best_at,
        )

    @property
    def size(self) -> int:
        return int(self.left.shape[0])

    def query(self, v: float) -> tuple[float, int] | None:
        """Best (furthest-right) interval starting at or before ``v``.

        Returns ``(right_end, point_index)`` or ``None`` when no interval
        starts early enough.
        """
        if self.size == 0:
            return None
        pos = int(np.searchsorted(self.left, v + _EPS, side="right")) - 1
        if pos < 0:
            return None
        return (
            float(self.prefix_best_right[pos]),
            int(self.point[self.prefix_best_at[pos]]),
        )


def fair_interval_cover(
    intervals_by_group: list[list[tuple[float, float, int]]],
    constraint: FairnessConstraint,
) -> list[int] | None:
    """Find a fair set of points whose intervals cover ``[0, 1]``.

    Args:
        intervals_by_group: for each group ``c``, the nonempty intervals
            of its points — either a list of ``(lo, hi, point_index)``
            triples or a prebuilt :class:`GroupIntervals` (the serving
            path caches these per ``tau``; they depend only on the point
            set and the threshold, never on the constraint).
        constraint: the fairness bounds; a returned cover uses at most
            ``h_c`` points of group ``c`` and can be padded to a feasible
            size-``k`` set (its reservation ``sum_c max(l_c, k_c) <= k``).

    Returns:
        The covering points' indices (content, not padded to size k), or
        ``None`` when no fair cover exists.  The cover is *partial* with
        respect to the fairness constraint: groups below their lower bound
        must be topped up by the caller (their extra members do not need to
        cover anything).
    """
    num_groups = constraint.num_groups
    if len(intervals_by_group) != num_groups:
        raise ValueError(
            f"expected intervals for {num_groups} groups, got {len(intervals_by_group)}"
        )
    groups = [
        iv if isinstance(iv, GroupIntervals) else GroupIntervals.from_intervals(iv)
        for iv in intervals_by_group
    ]
    upper = [int(u) for u in constraint.upper]
    lower = np.asarray(constraint.lower, dtype=np.int64)
    k = constraint.k

    shape = tuple(u + 1 for u in upper)
    value = np.full(shape, _UNREACHED)
    value[(0,) * num_groups] = 0.0
    # Backpointers: which group was extended and by which point.
    back_group = np.full(shape, -1, dtype=np.int64)
    back_point = np.full(shape, -1, dtype=np.int64)

    # Enumerate states in increasing total count so predecessors come first.
    states = sorted(product(*(range(u + 1) for u in upper)), key=sum)
    goal: tuple[int, ...] | None = None
    for state in states:
        if sum(state) == 0:
            continue
        counts = np.asarray(state, dtype=np.int64)
        if int(np.maximum(counts, lower).sum()) > k:
            continue  # infeasible: can never be padded to a fair size-k set
        best_val = _UNREACHED
        best_c = -1
        best_p = -1
        for c in range(num_groups):
            if state[c] == 0:
                continue
            pred = state[:c] + (state[c] - 1,) + state[c + 1 :]
            pred_val = value[pred]
            if pred_val == _UNREACHED:
                continue
            hit = groups[c].query(float(pred_val))
            if hit is None:
                continue
            right, point = hit
            # Coverage is a union: it never regresses below the
            # predecessor's end even when the greedy pick is nested.
            reach = max(right, float(pred_val))
            if reach > best_val:
                best_val, best_c, best_p = reach, c, point
        if best_val == _UNREACHED:
            continue
        value[state] = best_val
        back_group[state] = best_c
        back_point[state] = best_p
        if best_val >= 1.0 - _EPS:
            goal = state
            break
    if goal is None:
        return None

    # Reconstruct the covering points, de-duplicating useless repeats.
    chosen: list[int] = []
    state = goal
    while sum(state) > 0:
        c = int(back_group[state])
        p = int(back_point[state])
        if p >= 0 and p not in chosen:
            chosen.append(p)
        state = state[:c] + (state[c] - 1,) + state[c + 1 :]
    chosen.reverse()
    return chosen
