"""Top-level FairHMS front door.

``solve_fairhms`` picks the right algorithm for the input: the exact
IntCov when the data is two-dimensional and the interval-cover DP state
space is affordable, BiGreedy+ otherwise.  The explicit registry maps the
paper's algorithm names to callables for the experiment harness, and
:func:`resolve_algorithm` exposes the dispatch rule itself so callers that
need to know the choice up front (e.g. the serving layer, which forwards
``seed``/``epsilon`` only to the randomized solvers) apply the same rule.
"""

from __future__ import annotations

from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from .adaptive import bigreedy_plus
from .bigreedy import bigreedy
from .intcov import intcov
from .solution import Solution

__all__ = [
    "solve_fairhms",
    "resolve_algorithm",
    "dp_state_count",
    "CORE_ALGORITHMS",
    "DP_STATE_LIMIT",
]

# Beyond ~2e6 DP states IntCov stops being interactive; BiGreedy+ takes over.
DP_STATE_LIMIT = 2_000_000
_DP_STATE_LIMIT = DP_STATE_LIMIT  # backwards-compatible alias

CORE_ALGORITHMS = {
    "IntCov": intcov,
    "BiGreedy": bigreedy,
    "BiGreedy+": bigreedy_plus,
}


def dp_state_count(
    constraint: FairnessConstraint, *, limit: int = DP_STATE_LIMIT
) -> int:
    """Interval-cover DP state count, saturated at ``limit + 1``.

    The exact count is ``prod(upper_c + 1)``; past ``limit`` only the
    fact that it is exceeded matters (dispatch tests ``<= limit``), so
    the product short-circuits *before* the multiplication that would
    cross it — a many-group constraint (census-manygroups has 10) never
    materializes an astronomically large integer.
    """
    states = 1
    for h in constraint.upper:
        width = int(h) + 1
        if states > limit // width:
            return limit + 1
        states *= width
    return states


def _dp_states(constraint: FairnessConstraint) -> int:
    return dp_state_count(constraint)


def resolve_algorithm(
    dataset: Dataset,
    constraint: FairnessConstraint,
    algorithm: str = "auto",
) -> str:
    """Resolve ``"auto"`` to a concrete algorithm name for this instance.

    Raises:
        ValueError: if ``algorithm`` names no registered algorithm.
    """
    if algorithm == "auto":
        if dataset.dim == 2 and dp_state_count(constraint) <= DP_STATE_LIMIT:
            return "IntCov"
        return "BiGreedy+"
    if algorithm not in CORE_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{sorted(CORE_ALGORITHMS)} or 'auto'"
        )
    return algorithm


def solve_fairhms(
    dataset: Dataset,
    constraint: FairnessConstraint,
    *,
    algorithm: str = "auto",
    artifacts=None,
    **kwargs,
) -> Solution:
    """Solve a FairHMS instance.

    Args:
        dataset: the database (run ``dataset.skyline()`` first for speed —
            results are unaffected because skylines preserve all utility
            maximizers).
        constraint: group bounds and solution size ``k``.
        algorithm: ``"auto"``, ``"IntCov"``, ``"BiGreedy"`` or
            ``"BiGreedy+"``.
        artifacts: optional :class:`repro.serving.SolverArtifacts` bound to
            ``dataset``, forwarded to the chosen algorithm so precomputed
            nets / engines / envelopes are reused.
        **kwargs: forwarded to the chosen algorithm.

    Returns:
        A :class:`Solution`; exact and optimal when IntCov ran, a bicriteria
        approximation otherwise.
    """
    algorithm = resolve_algorithm(dataset, constraint, algorithm)
    if artifacts is not None:
        # Epoch check: apply any invalidation staged by a live index's
        # bump_epoch/rebind so a stale engine or envelope is never served,
        # then stamp the solve with the epoch it answered for.
        artifacts.flush_invalidations()
        kwargs["artifacts"] = artifacts
    solution = CORE_ALGORITHMS[algorithm](dataset, constraint, **kwargs)
    if artifacts is not None and artifacts.matches(dataset):
        solution.stats["artifact_epoch"] = artifacts.epoch
    return solution
