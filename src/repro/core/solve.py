"""Top-level FairHMS front door.

``solve_fairhms`` picks the right algorithm for the input: the exact
IntCov when the data is two-dimensional and the interval-cover DP state
space is affordable, BiGreedy+ otherwise.  The explicit registry maps the
paper's algorithm names to callables for the experiment harness.
"""

from __future__ import annotations

from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from .adaptive import bigreedy_plus
from .bigreedy import bigreedy
from .intcov import intcov
from .solution import Solution

__all__ = ["solve_fairhms", "CORE_ALGORITHMS"]

# Beyond ~2e6 DP states IntCov stops being interactive; BiGreedy+ takes over.
_DP_STATE_LIMIT = 2_000_000

CORE_ALGORITHMS = {
    "IntCov": intcov,
    "BiGreedy": bigreedy,
    "BiGreedy+": bigreedy_plus,
}


def _dp_states(constraint: FairnessConstraint) -> int:
    states = 1
    for h in constraint.upper:
        states *= int(h) + 1
        if states > _DP_STATE_LIMIT:
            return states
    return states


def solve_fairhms(
    dataset: Dataset,
    constraint: FairnessConstraint,
    *,
    algorithm: str = "auto",
    **kwargs,
) -> Solution:
    """Solve a FairHMS instance.

    Args:
        dataset: the database (run ``dataset.skyline()`` first for speed —
            results are unaffected because skylines preserve all utility
            maximizers).
        constraint: group bounds and solution size ``k``.
        algorithm: ``"auto"``, ``"IntCov"``, ``"BiGreedy"`` or
            ``"BiGreedy+"``.
        **kwargs: forwarded to the chosen algorithm.

    Returns:
        A :class:`Solution`; exact and optimal when IntCov ran, a bicriteria
        approximation otherwise.
    """
    if algorithm == "auto":
        if dataset.dim == 2 and _dp_states(constraint) <= _DP_STATE_LIMIT:
            algorithm = "IntCov"
        else:
            algorithm = "BiGreedy+"
    try:
        solver = CORE_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{sorted(CORE_ALGORITHMS)} or 'auto'"
        ) from None
    return solver(dataset, constraint, **kwargs)
