"""BiGreedy+: adaptive net sizing (paper Section 4.3, Algorithm 4).

BiGreedy's cost is dominated by the net size ``m``; the theoretical
``O(delta^{-d})`` is far larger than needed in practice.  BiGreedy+ starts
from a small sample ``m_0``, doubles it until the successful cap value
stabilizes (``tau_{i-1} - tau_i < lambda``) or the budget ``M`` is reached,
and returns the best solution found across iterations (compared on the
final, finest net so estimates are consistent).
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng, spawn_seeds
from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..geometry.deltanet import sample_directions
from ..hms.ratios import happiness_ratios
from ..hms.truncated import TruncatedEngine
from .bigreedy import bigreedy, default_net_size
from .solution import Solution

__all__ = ["bigreedy_plus"]


def bigreedy_plus(
    dataset: Dataset,
    constraint: FairnessConstraint,
    *,
    epsilon: float = 0.02,
    lam: float = 0.04,
    initial_size: int | None = None,
    max_size: int | None = None,
    mode: str = "feasible",
    extra_steps: int = 2,
    seed=None,
    artifacts=None,
) -> Solution:
    """Run BiGreedy+ (paper Algorithm 4).

    Args:
        dataset: input :class:`Dataset` (per-group skyline recommended).
        constraint: fairness bounds with solution size ``k``.
        epsilon: BiGreedy cap-search granularity (paper default 0.02).
        lam: stabilization threshold on consecutive cap values (paper
            default 0.04).
        initial_size: ``m_0``; defaults to ``0.05 * M`` as in Section 5.1.
        max_size: ``M``; defaults to the paper's practical ``10 k d``.
        mode / extra_steps / seed: forwarded to :func:`bigreedy`.
        artifacts: optional :class:`repro.serving.SolverArtifacts` bound to
            ``dataset``; caches the per-iteration nets and engines across
            calls keyed by ``(m_i, child_seed)``.  Results are bit-identical
            to the inline path for any given ``seed``.

    Returns:
        The best solution across doubling iterations, with stats recording
        the per-iteration net sizes and cap values.
    """
    if not 0.0 < lam < 1.0:
        raise ValueError(f"lam must lie in (0, 1), got {lam}")
    rng = ensure_rng(seed)
    M = max_size or default_net_size(constraint.k, dataset.dim)
    m0 = initial_size or max(4, int(round(0.05 * M)))
    if m0 > M:
        raise ValueError(f"initial size {m0} exceeds the maximum size {M}")

    sizes: list[int] = []
    m = m0
    while True:
        sizes.append(m)
        if m >= M:
            break
        m = min(2 * m, M)
    child_seeds = spawn_seeds(rng, len(sizes))
    use_artifacts = artifacts is not None and artifacts.matches(dataset)

    solutions: list[Solution] = []
    taus: list[float] = []
    nets: list[np.ndarray] = []
    for i, m_i in enumerate(sizes):
        if use_artifacts:
            engine = artifacts.engine(m_i, child_seeds[i])
        else:
            net = sample_directions(
                m_i, dataset.dim, np.random.default_rng(child_seeds[i])
            )
            engine = TruncatedEngine(dataset.points, net)
        sol = bigreedy(
            dataset,
            constraint,
            epsilon=epsilon,
            engine=engine,
            mode=mode,
            extra_steps=extra_steps,
            algorithm_name="BiGreedy+",
        )
        solutions.append(sol)
        nets.append(engine.net)
        tau_i = sol.stats.get("tau_success") or 0.0
        taus.append(float(tau_i))
        if i > 0 and abs(taus[i - 1] - taus[i]) < lam:
            break

    # Compare candidates on the finest net used, for a consistent estimate.
    final_net = nets[-1]
    D = dataset.points

    def net_mhr(sol: Solution) -> float:
        return float(happiness_ratios(sol.points, D, final_net).min())

    estimates = [net_mhr(s) for s in solutions]
    best_at = int(np.argmax(estimates))
    best = solutions[best_at]
    best.mhr_estimate = float(estimates[best_at])
    best.stats.update(
        {
            "iterations": len(solutions),
            "net_sizes": [int(s) for s in sizes[: len(solutions)]],
            "cap_values": taus,
            "chosen_iteration": best_at,
            "max_size": int(M),
            "lambda": float(lam),
        }
    )
    return best
