"""Unconstrained HMS reference solvers.

The paper's figures draw a black "price of fairness" line: the MHR of the
best solution *without* fairness constraints.  In 2-D that optimum is exact
(IntCov with a single vacuous group); in higher dimensions the paper uses
the best unconstrained baseline solution, which we mirror with an
unconstrained greedy (callers can also take a max over baselines).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..geometry.deltanet import sample_directions
from ..hms.truncated import TruncatedEngine
from .bigreedy import bigreedy, default_net_size
from .intcov import intcov
from .solution import Solution

__all__ = ["hms_exact_2d", "hms_greedy"]


def _single_group(dataset: Dataset) -> Dataset:
    """Collapse all groups into one (makes FairHMS vanilla HMS)."""
    return dataset.with_groups(
        np.zeros(dataset.n, dtype=np.int64), names=("all",), attribute="none"
    )


def hms_exact_2d(dataset: Dataset, k: int) -> Solution:
    """Exact unconstrained HMS in 2-D (optimal MHR for size ``k``).

    Runs IntCov on a single vacuous group, which keeps the interval-cover
    DP linear in ``k``.  A ``k`` beyond the dataset size is capped to it —
    unconstrained HMS with ``k >= n`` is simply the whole dataset.
    """
    k = min(int(k), dataset.n)
    collapsed = _single_group(dataset)
    constraint = FairnessConstraint(
        lower=np.zeros(1, dtype=np.int64),
        upper=np.array([k], dtype=np.int64),
        k=k,
    )
    solution = intcov(collapsed, constraint)
    solution.algorithm = "HMS-Opt2D"
    return solution


def hms_greedy(
    dataset: Dataset,
    k: int,
    *,
    net_size: int | None = None,
    epsilon: float = 0.02,
    seed=None,
) -> Solution:
    """Unconstrained greedy HMS via BiGreedy on a single vacuous group.

    This is the "no fairness" reference used in the multi-dimensional
    figures; it inherits BiGreedy's cap search so its quality tracks the
    fair variant's machinery exactly (the only change is the constraint).
    ``k`` beyond the dataset size is capped to it.
    """
    k = min(int(k), dataset.n)
    collapsed = _single_group(dataset)
    constraint = FairnessConstraint(
        lower=np.zeros(1, dtype=np.int64),
        upper=np.array([k], dtype=np.int64),
        k=k,
    )
    m = net_size or default_net_size(k, dataset.dim)
    net = sample_directions(m, dataset.dim, seed)
    engine = TruncatedEngine(collapsed.points, net)
    solution = bigreedy(
        collapsed,
        constraint,
        epsilon=epsilon,
        engine=engine,
        algorithm_name="HMS-Greedy",
    )
    return solution
