"""BiGreedy: bicriteria approximation for FairHMS in any dimension
(paper Section 4.2, Algorithm 3).

Sketch: estimate the MHR on a delta-net ``N`` (Lemma 4.1), truncate it at a
cap ``tau`` to restore submodularity (Lemmas 4.3/4.4), and for
geometrically decreasing caps run a multi-round greedy (``MRGreedy``) for
submodular maximization under the fairness matroid.  A cap succeeds when
the union of rounds reaches ``(1 - eps/2m) * tau``; Lemma 4.5 shows every
``tau <= tau*`` succeeds, so the first success during the descent is within
one grid step of optimal — which is also why stopping early (the default,
``extra_steps`` controls how much further to scan) preserves the guarantee.

Output modes:

* ``"feasible"`` (default, what the paper's experiments report): the best
  single greedy round — a fair set of exactly ``k`` tuples.
* ``"bicriteria"`` (the theory of Theorem 4.6): the union of all rounds,
  up to ``gamma * k`` tuples satisfying the ``gamma``-scaled bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from .._rng import ensure_rng
from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..fairness.matroid import FairnessMatroid
from ..geometry.deltanet import (
    delta_net_size,
    net_parameter_for_mhr_error,
    sample_directions,
)
from ..hms.truncated import TruncatedEngine
from .solution import Solution

__all__ = ["bigreedy", "BiGreedyReport", "default_net_size", "MRGreedyOutcome"]

_STALL_TOL = 1e-12
_LAZY_BATCH = 64  # top-candidate refresh batch in the lazy greedy


def default_net_size(k: int, d: int) -> int:
    """The paper's practical net size ``m = 10 k d`` (Appendix B)."""
    return 10 * int(k) * int(d)


@dataclass
class MRGreedyOutcome:
    """Result of one multi-round greedy run at a fixed cap ``tau``."""

    success: bool
    union: list[int]
    rounds: list[list[int]]
    value: float  # mhr_tau of the union on the net
    tau: float


@dataclass
class BiGreedyReport:
    """Diagnostics attached to BiGreedy solutions (``Solution.stats``)."""

    net_size: int
    gamma: int
    tau_steps: int = 0
    tau_success: float | None = None
    rounds_used: int = 0
    mode: str = "feasible"
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        data = {
            "net_size": self.net_size,
            "gamma": self.gamma,
            "tau_steps": self.tau_steps,
            "tau_success": self.tau_success,
            "rounds_used": self.rounds_used,
            "mode": self.mode,
        }
        data.update(self.extras)
        return data


def _greedy_round(
    engine: TruncatedEngine,
    matroid: FairnessMatroid,
    labels: np.ndarray,
    available: np.ndarray,
    tau: float,
) -> list[int]:
    """One greedy pass: grow a fair-independent set maximizing mhr_tau.

    Follows Fisher-Nemhauser-Wolsey matroid greedy with *batch-lazy*
    evaluation: the full gain vector is computed once; afterwards it is a
    vector of upper bounds (submodularity: gains only shrink as the
    selection grows), and each pick refreshes only the current top batch
    until the refreshed maximum provably dominates every stale bound.
    Zero-gain additions are kept (they are how lower bounds get met).
    """
    state = engine.new_state(tau)
    counts = np.zeros(matroid.num_groups, dtype=np.int64)
    selected: list[int] = []
    available = available.copy()

    def valid_mask() -> np.ndarray:
        group_ok = np.zeros(matroid.num_groups, dtype=bool)
        group_ok[matroid.addable_groups(counts)] = True
        return available & group_ok[labels]

    mask = valid_mask()
    if not mask.any():
        return selected
    stale = engine.gains_masked(state, mask)  # exact at this point

    batch = _LAZY_BATCH
    while True:
        stale[~mask] = -1.0
        if stale.max() < 0.0:
            break  # no valid candidate left
        # One lazy refresh of the top batch; when near-ties keep it from
        # certifying a winner (common on anti-correlated data), fall back
        # to a single full exact refresh instead of cycling batches.
        if stale.shape[0] > batch:
            top = np.argpartition(stale, -batch)[-batch:]
            top = top[mask[top]]
        else:
            top = np.nonzero(mask)[0]
        if top.size:
            stale[top] = engine.gains_batch(state, top)
            best = int(top[int(np.argmax(stale[top]))])
        else:  # defensive: valid candidates exist but missed the batch
            best = -1
        if best < 0 or stale[best] < stale.max() - 1e-15:
            stale = engine.gains_masked(state, mask)
            best = int(np.argmax(stale))
        engine.add(state, best)
        counts[labels[best]] += 1
        available[best] = False
        selected.append(best)
        stale[best] = -1.0
        mask = valid_mask()
        if not mask.any():
            break
    return selected


def _mrgreedy(
    engine: TruncatedEngine,
    matroid: FairnessMatroid,
    labels: np.ndarray,
    tau: float,
    gamma: int,
    epsilon: float,
) -> MRGreedyOutcome:
    """MRGreedy (Algorithm 3, lines 10-22) with theory-sound fail-fast.

    Lemma 4.5 (via Anari et al., Theorem 3) guarantees that when
    ``tau <= tau*`` the union after round ``i`` reaches at least
    ``(1 - 2^{-i}) tau``; the moment a prefix falls short of that bound the
    cap is certainly above ``tau*`` and the run can reject immediately
    instead of burning the remaining rounds.  We also stop when a round
    adds no points or no value (availability only shrinks).
    """
    m = engine.m
    target = (1.0 - epsilon / (2.0 * m)) * tau
    available = np.ones(engine.n, dtype=bool)
    union: list[int] = []
    rounds: list[list[int]] = []
    value = 0.0
    for i in range(1, gamma + 1):
        chosen = _greedy_round(engine, matroid, labels, available, tau)
        if not chosen:
            break
        rounds.append(chosen)
        union.extend(chosen)
        available[np.asarray(chosen, dtype=np.int64)] = False
        new_value = engine.value_of_selection(union, tau)
        if new_value >= target:
            return MRGreedyOutcome(True, union, rounds, new_value, tau)
        # For any feasible cap (tau <= tau*) matroid greedy closes at least
        # half the remaining gap to tau every round (the inequality behind
        # Lemma 4.5).  Falling short certifies tau > tau*: reject now.
        if new_value < value + (tau - value) / 2.0 - 1e-9:
            break
        if new_value <= value + _STALL_TOL:
            break
        value = new_value
    return MRGreedyOutcome(False, union, rounds, value, tau)


def bigreedy(
    dataset: Dataset,
    constraint: FairnessConstraint,
    *,
    epsilon: float = 0.02,
    net=None,
    net_size: int | None = None,
    delta: float | None = None,
    mode: str = "feasible",
    extra_steps: int = 2,
    seed=None,
    engine: TruncatedEngine | None = None,
    artifacts=None,
    algorithm_name: str = "BiGreedy",
) -> Solution:
    """Run BiGreedy on a dataset (paper Algorithm 3).

    Args:
        dataset: the input :class:`Dataset` (per-group skyline recommended).
        constraint: fairness bounds; ``constraint.k`` is the solution size.
        epsilon: cap-search granularity (paper default 0.02).
        net: explicit ``(m, d)`` direction matrix (overrides sizing args).
        net_size: sample size ``m``; defaults to ``10 k d``.
        delta: alternatively, a target MHR error — the net gets the
            theoretical size for a ``delta/(d(2-delta))``-net (large!).
        mode: ``"feasible"`` (size-k fair set) or ``"bicriteria"`` (union
            of rounds, Theorem 4.6).
        extra_steps: how many further cap values to scan after the first
            success (0 reproduces pure first-success descent).
        seed: RNG seed for net sampling.
        engine: prebuilt :class:`TruncatedEngine` to reuse across calls
            (e.g. by BiGreedy+); must match ``dataset``.
        artifacts: optional :class:`repro.serving.SolverArtifacts` bound to
            ``dataset``; when given (and no explicit ``net``/``engine``),
            the delta-net and score-matrix engine are taken from its cache
            instead of being rebuilt — results are bit-identical because
            cache misses sample with the same seed-derived stream.
        algorithm_name: label recorded on the solution.

    Returns:
        A :class:`Solution`; ``mhr_estimate`` is the *net* estimate (an
        upper bound on the true MHR — use ``Solution.mhr()`` for exact).
    """
    if mode not in ("feasible", "bicriteria"):
        raise ValueError(f"mode must be 'feasible' or 'bicriteria', got {mode!r}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if constraint.num_groups != dataset.num_groups:
        raise ValueError("constraint and dataset disagree on the number of groups")
    if not constraint.is_feasible_for(dataset.group_sizes):
        raise ValueError(
            "fairness constraint is infeasible for this dataset: "
            + constraint.describe(dataset.group_names)
        )
    t0 = perf_counter()
    if engine is None:
        if net is not None:
            engine = TruncatedEngine(dataset.points, net)
        else:
            if delta is not None:
                resolution = net_parameter_for_mhr_error(delta, dataset.dim)
                m = delta_net_size(resolution, dataset.dim)
            else:
                m = net_size or default_net_size(constraint.k, dataset.dim)
            if artifacts is not None and artifacts.matches(dataset):
                engine = artifacts.engine(m, seed)
            else:
                net = sample_directions(m, dataset.dim, ensure_rng(seed))
                engine = TruncatedEngine(dataset.points, net)
    m = engine.m
    gamma = max(1, math.ceil(math.log2(2.0 * m / epsilon)))
    matroid = FairnessMatroid(constraint, dataset.labels)
    report = BiGreedyReport(net_size=m, gamma=gamma, mode=mode)
    t_engine = perf_counter() - t0

    t0 = perf_counter()
    tau = 1.0
    floor = 1.0 / m
    successes: list[MRGreedyOutcome] = []
    outcomes: list[MRGreedyOutcome] = []
    remaining_extra = extra_steps
    while tau >= floor:
        outcome = _mrgreedy(engine, matroid, dataset.labels, tau, gamma, epsilon)
        outcomes.append(outcome)
        report.tau_steps += 1
        if outcome.success:
            successes.append(outcome)
            if report.tau_success is None:
                report.tau_success = tau
            if remaining_extra <= 0:
                break
            remaining_extra -= 1
        tau *= 1.0 - epsilon / 2.0
    if not successes:
        # Degenerate data (e.g. k >= #useful points). Fall back to one
        # unconstrained-cap greedy round, which is always a fair base.
        fallback = _greedy_round(
            engine, matroid, dataset.labels, np.ones(engine.n, dtype=bool), 1.0
        )
        successes.append(
            MRGreedyOutcome(
                False,
                fallback,
                [fallback],
                engine.value_of_selection(fallback, 1.0),
                tau=0.0,
            )
        )
    t_search = perf_counter() - t0

    t0 = perf_counter()
    if mode == "bicriteria":
        best = max(
            successes, key=lambda o: engine.min_ratio_of_selection(o.union)
        )
        indices = sorted(best.union)
        report.rounds_used = len(best.rounds)
        estimate = engine.min_ratio_of_selection(best.union)
    else:
        # Feasible mode: among all rounds of all caps tried (every round is
        # a fair size-k set, whether or not its cap succeeded), the single
        # round with the best net MHR.
        best_round: list[int] | None = None
        best_value = -1.0
        best_outcome = successes[0]
        for outcome in outcomes or successes:
            for round_sel in outcome.rounds:
                if len(round_sel) != constraint.k:
                    continue  # exhausted-availability partial round
                value = engine.min_ratio_of_selection(round_sel)
                if value > best_value:
                    best_value, best_round, best_outcome = (
                        value,
                        round_sel,
                        outcome,
                    )
        if best_round is None:  # pragma: no cover - defensive
            best_round = successes[0].rounds[0]
        indices = sorted(best_round)
        report.rounds_used = len(best_outcome.rounds)
        estimate = engine.min_ratio_of_selection(best_round)

    solution = Solution(
        indices=np.asarray(indices, dtype=np.int64),
        dataset=dataset,
        algorithm=algorithm_name,
        constraint=constraint,
        mhr_estimate=float(estimate),
        stats=report.as_dict(),
    )
    # Same shape as IntCov's breakdown, feeding the service's per-phase
    # histograms: where did a slow solve spend its time — building (or
    # fetching) the net/engine, the cap descent, or the final selection.
    solution.stats["phases"] = {
        "engine": t_engine,
        "search": t_search,
        "finalize": perf_counter() - t0,
    }
    return solution
