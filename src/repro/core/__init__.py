"""Core FairHMS algorithms: IntCov (exact 2-D), BiGreedy, BiGreedy+."""

from .adaptive import bigreedy_plus
from .bigreedy import BiGreedyReport, MRGreedyOutcome, bigreedy, default_net_size
from .intcov import candidate_mhr_values, intcov
from .intervalcover import GroupIntervals, fair_interval_cover
from .solution import Solution
from .solve import CORE_ALGORITHMS, solve_fairhms
from .unconstrained import hms_exact_2d, hms_greedy

__all__ = [
    "BiGreedyReport",
    "CORE_ALGORITHMS",
    "GroupIntervals",
    "MRGreedyOutcome",
    "Solution",
    "bigreedy",
    "bigreedy_plus",
    "candidate_mhr_values",
    "default_net_size",
    "fair_interval_cover",
    "hms_exact_2d",
    "hms_greedy",
    "intcov",
    "solve_fairhms",
]
