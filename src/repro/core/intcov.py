"""IntCov: the exact two-dimensional FairHMS algorithm (paper Section 3).

Pipeline (Algorithm 1):

1. Enumerate every value the optimal MHR can take (array ``H``): the
   happiness ratios of single points at the axis directions and of point
   pairs at the direction where their scores tie ([Asudeh et al. 2017,
   Theorem 2] adapted to happiness ratios).
2. Binary-search the largest ``tau in H`` for which the decision problem —
   *is there a fair size-k set with mhr >= tau?* — answers yes.
3. Decide each ``tau`` by reducing to fair interval cover: a point helps at
   the directions where its score line clears ``tau`` times the upper
   envelope, a single sub-interval of ``[0, 1]``; a fair set of intervals
   must cover ``[0, 1]`` (Algorithm 2, :mod:`repro.core.intervalcover`).
4. Pad the covering set to exactly ``k`` respecting the group bounds (the
   fairness matroid guarantees a completion exists).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..fairness.matroid import FairnessMatroid
from ..geometry.envelope import Envelope, tau_intervals_bulk, upper_envelope
from .intervalcover import fair_interval_cover
from .solution import Solution

__all__ = ["intcov", "candidate_mhr_values"]

# Shared with repro.serving.candidates, whose incrementally maintained
# multiset must reproduce this enumeration bit for bit.
_PAIR_BLOCK = 512  # pairwise candidate enumeration block size (memory bound)
_VALUE_TOL = 1e-12  # candidate filter: keep values in [0, 1 + _VALUE_TOL]


def candidate_mhr_values(points: np.ndarray, envelope: Envelope | None = None) -> np.ndarray:
    """All possible optimal-MHR values ``H`` (ascending, deduplicated).

    For each point, its happiness ratio at the two axis directions; for
    each pair of points, their common happiness ratio at the direction
    where their scores tie (when that direction is nonnegative).  The
    optimum of FairHMS always equals one of these ``O(n^2)`` values.
    """
    if envelope is None:
        envelope = upper_envelope(points)
    x = points[:, 0]
    y = points[:, 1]
    slope = x - y
    top_at_0 = envelope.value(0.0)
    top_at_1 = envelope.value(1.0)
    chunks = [y / top_at_0, x / top_at_1]
    n = points.shape[0]
    for start in range(0, n, _PAIR_BLOCK):
        stop = min(start + _PAIR_BLOCK, n)
        # Pairs (i, j) with i in [start, stop) and j > i.
        slope_diff = slope[start:stop, None] - slope[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            lam = (y[None, :] - y[start:stop, None]) / slope_diff
        rows, cols = np.nonzero(
            (lam >= 0.0) & (lam <= 1.0) & np.isfinite(lam)
        )
        upper_pairs = cols > rows + start
        rows, cols = rows[upper_pairs], cols[upper_pairs]
        if rows.size == 0:
            continue
        lam_vals = lam[rows, cols]
        scores_at = y[rows + start] + slope[rows + start] * lam_vals
        tops = envelope.value(lam_vals)
        chunks.append(scores_at / np.asarray(tops))
    values = np.concatenate(chunks)
    values = values[(values >= 0.0) & (values <= 1.0 + _VALUE_TOL)]
    return np.unique(np.clip(values, 0.0, 1.0))


def _intervals_by_group(
    points: np.ndarray,
    labels: np.ndarray,
    envelope: Envelope,
    tau: float,
    num_groups: int,
) -> list[list[tuple[float, float, int]]]:
    """Compute ``I_tau(p)`` for every point, bucketed by group."""
    buckets: list[list[tuple[float, float, int]]] = [[] for _ in range(num_groups)]
    lo, hi, ok = tau_intervals_bulk(points, envelope, tau)
    for i in np.nonzero(ok)[0]:
        buckets[int(labels[i])].append((float(lo[i]), float(hi[i]), int(i)))
    return buckets


def _pad_to_k(
    selected: list[int],
    dataset: Dataset,
    constraint: FairnessConstraint,
) -> list[int]:
    """Extend a partial fair-independent selection to exactly ``k`` tuples.

    Adds the highest-coordinate-sum unused tuples group by group, filling
    lower-bound deficits first (the order the fairness matroid's completion
    routine prescribes).
    """
    matroid = FairnessMatroid(constraint, dataset.labels)
    counts = np.bincount(
        dataset.labels[np.asarray(selected, dtype=np.int64)]
        if selected
        else np.empty(0, dtype=np.int64),
        minlength=constraint.num_groups,
    )
    order = matroid.completion_groups(counts)
    chosen = set(selected)
    result = list(selected)
    sums = dataset.points.sum(axis=1)
    for group in order:
        members = dataset.group_indices(group)
        members = members[np.argsort(-sums[members], kind="stable")]
        for idx in members:
            if int(idx) not in chosen:
                chosen.add(int(idx))
                result.append(int(idx))
                break
        else:
            raise ValueError(
                f"group {group} has too few tuples to satisfy the constraint"
            )
    return result


def intcov(
    dataset: Dataset,
    constraint: FairnessConstraint,
    *,
    artifacts=None,
    tau_hint: float | None = None,
) -> Solution:
    """Exact FairHMS on a two-dimensional dataset (paper Algorithm 1).

    Args:
        dataset: a 2-D :class:`Dataset` (typically ``dataset.skyline()``;
            correctness does not require it, speed benefits from it).
        constraint: group bounds with ``constraint.k`` the solution size.
        artifacts: optional :class:`repro.serving.SolverArtifacts` bound to
            ``dataset``; reuses the upper envelope and the ``O(n^2)``
            candidate-MHR enumeration across calls — both depend only on
            the points, not on ``constraint``, so results are unchanged.
        tau_hint: optional guess for the optimal MHR (e.g. last epoch's
            optimum from a live index).  If the hint is a current
            candidate value, is feasible, and the next larger candidate is
            not, the binary search collapses to two decision evaluations;
            any mismatch falls back to the full search.  The returned
            solution is identical either way — only the
            ``decision_evaluations`` diagnostic differs.

    Returns:
        The optimal fair solution with ``mhr_estimate`` set to its exact
        minimum happiness ratio.

    Raises:
        ValueError: if the dataset is not 2-D or the constraint cannot be
            met by any size-``k`` subset.
    """
    if dataset.dim != 2:
        raise ValueError(f"IntCov requires d=2, got d={dataset.dim}")
    if constraint.num_groups != dataset.num_groups:
        raise ValueError(
            f"constraint has {constraint.num_groups} groups, dataset has "
            f"{dataset.num_groups}"
        )
    if not constraint.is_feasible_for(dataset.group_sizes):
        raise ValueError(
            "fairness constraint is infeasible for this dataset: "
            + constraint.describe(dataset.group_names)
        )
    points = dataset.points
    if artifacts is not None and artifacts.matches(dataset):
        envelope = artifacts.envelope()
        candidates = artifacts.mhr_candidates()
    else:
        envelope = upper_envelope(points)
        candidates = candidate_mhr_values(points, envelope)

    def decide(tau: float):
        buckets = _intervals_by_group(
            points, dataset.labels, envelope, tau, dataset.num_groups
        )
        return fair_interval_cover(buckets, constraint)

    best_set: list[int] | None = None
    best_tau = 0.0
    evaluations = 0
    solved = False
    lo, hi = 0, candidates.shape[0] - 1
    if tau_hint is not None and candidates.shape[0]:
        # Warm start: feasibility is monotone in tau, so "hint feasible
        # and the next larger candidate infeasible" certifies the hint as
        # the optimum — the exact value the binary search would return.
        # Either probe narrows [lo, hi] even when certification fails, so
        # a stale hint still pays for itself.
        after = int(np.searchsorted(candidates, tau_hint, side="right"))
        if after > 0 and candidates[after - 1] == tau_hint:
            cover = decide(float(tau_hint))
            evaluations += 1
            if cover is None:
                # Optimum < hint: every candidate >= hint is out.
                hi = int(np.searchsorted(candidates, tau_hint, side="left")) - 1
            else:
                best_set, best_tau = cover, float(tau_hint)
                lo = after
                if after == candidates.shape[0]:
                    solved = True
                else:
                    cover = decide(float(candidates[after]))
                    evaluations += 1
                    if cover is None:
                        solved = True
                    else:
                        best_set, best_tau = cover, float(candidates[after])
                        lo = after + 1

    while not solved and lo <= hi:
        mid = (lo + hi) // 2
        tau = float(candidates[mid])
        cover = decide(tau)
        evaluations += 1
        if cover is None:
            hi = mid - 1
        else:
            best_set, best_tau = cover, tau
            lo = mid + 1
    if best_set is None:
        # Every candidate failed; fall back to the smallest (tau = 0 cover
        # always succeeds with any fair set, so this means numerics — be
        # safe and return a padded fair set).
        best_set = []
    full = _pad_to_k(best_set, dataset, constraint)
    solution = Solution(
        indices=np.array(sorted(full), dtype=np.int64),
        dataset=dataset,
        algorithm="IntCov",
        constraint=constraint,
        stats={
            "num_candidates": int(candidates.shape[0]),
            "decision_evaluations": evaluations,
            "cover_size": len(best_set),
            "tau": best_tau,
        },
    )
    solution.mhr_estimate = solution.mhr()
    return solution
