"""IntCov: the exact two-dimensional FairHMS algorithm (paper Section 3).

Pipeline (Algorithm 1):

1. Enumerate every value the optimal MHR can take (array ``H``): the
   happiness ratios of single points at the axis directions and of point
   pairs at the direction where their scores tie ([Asudeh et al. 2017,
   Theorem 2] adapted to happiness ratios).
2. Binary-search the largest ``tau in H`` for which the decision problem —
   *is there a fair size-k set with mhr >= tau?* — answers yes.
3. Decide each ``tau`` by reducing to fair interval cover: a point helps at
   the directions where its score line clears ``tau`` times the upper
   envelope, a single sub-interval of ``[0, 1]``; a fair set of intervals
   must cover ``[0, 1]`` (Algorithm 2, :mod:`repro.core.intervalcover`).
4. Pad the covering set to exactly ``k`` respecting the group bounds (the
   fairness matroid guarantees a completion exists).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..fairness.matroid import FairnessMatroid
from ..geometry.envelope import Envelope, tau_intervals_bulk, upper_envelope
from .intervalcover import GroupIntervals, fair_interval_cover
from .solution import Solution

__all__ = ["intcov", "candidate_mhr_values"]

# Shared with repro.serving.candidates, whose incrementally maintained
# multiset must reproduce this enumeration bit for bit.
_PAIR_BLOCK = 512  # pairwise candidate enumeration block size (memory bound)
_VALUE_TOL = 1e-12  # candidate filter: keep values in [0, 1 + _VALUE_TOL]


def candidate_mhr_values(points: np.ndarray, envelope: Envelope | None = None) -> np.ndarray:
    """All possible optimal-MHR values ``H`` (ascending, deduplicated).

    For each point, its happiness ratio at the two axis directions; for
    each pair of points, their common happiness ratio at the direction
    where their scores tie (when that direction is nonnegative).  The
    optimum of FairHMS always equals one of these ``O(n^2)`` values.
    """
    if envelope is None:
        envelope = upper_envelope(points)
    x = points[:, 0]
    y = points[:, 1]
    slope = x - y
    top_at_0 = envelope.value(0.0)
    top_at_1 = envelope.value(1.0)
    chunks = [y / top_at_0, x / top_at_1]
    n = points.shape[0]
    for start in range(0, n, _PAIR_BLOCK):
        stop = min(start + _PAIR_BLOCK, n)
        # Pairs (i, j) with i in [start, stop) and j > i.
        slope_diff = slope[start:stop, None] - slope[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            lam = (y[None, :] - y[start:stop, None]) / slope_diff
        rows, cols = np.nonzero(
            (lam >= 0.0) & (lam <= 1.0) & np.isfinite(lam)
        )
        upper_pairs = cols > rows + start
        rows, cols = rows[upper_pairs], cols[upper_pairs]
        if rows.size == 0:
            continue
        lam_vals = lam[rows, cols]
        scores_at = y[rows + start] + slope[rows + start] * lam_vals
        tops = envelope.value(lam_vals)
        chunks.append(scores_at / np.asarray(tops))
    values = np.concatenate(chunks)
    values = values[(values >= 0.0) & (values <= 1.0 + _VALUE_TOL)]
    return np.unique(np.clip(values, 0.0, 1.0))


def _intervals_by_group(
    points: np.ndarray,
    envelope: Envelope,
    tau: float,
    group_masks: list[np.ndarray],
) -> list[GroupIntervals]:
    """Compute ``I_tau(p)`` for every point, indexed by group.

    Fully array-based: the old per-point tuple loop is replaced by masked
    slices of the bulk interval arrays, fed straight into the vectorized
    :meth:`GroupIntervals.from_arrays` constructor.  Within each group the
    points keep ascending index order, so the resulting interval indexes —
    and every cover computed from them — are bit-identical to the scalar
    construction.
    """
    lo, hi, ok = tau_intervals_bulk(points, envelope, tau)
    buckets: list[GroupIntervals] = []
    for mask in group_masks:
        sel = np.nonzero(ok & mask)[0]
        buckets.append(GroupIntervals.from_arrays(lo[sel], hi[sel], sel))
    return buckets


def _pad_to_k(
    selected: list[int],
    dataset: Dataset,
    constraint: FairnessConstraint,
) -> list[int]:
    """Extend a partial fair-independent selection to exactly ``k`` tuples.

    Adds the highest-coordinate-sum unused tuples group by group, filling
    lower-bound deficits first (the order the fairness matroid's completion
    routine prescribes).
    """
    matroid = FairnessMatroid(constraint, dataset.labels)
    counts = np.bincount(
        dataset.labels[np.asarray(selected, dtype=np.int64)]
        if selected
        else np.empty(0, dtype=np.int64),
        minlength=constraint.num_groups,
    )
    order = matroid.completion_groups(counts)
    chosen = set(selected)
    result = list(selected)
    sums = dataset.points.sum(axis=1)
    for group in order:
        members = dataset.group_indices(group)
        members = members[np.argsort(-sums[members], kind="stable")]
        for idx in members:
            if int(idx) not in chosen:
                chosen.add(int(idx))
                result.append(int(idx))
                break
        else:
            raise ValueError(
                f"group {group} has too few tuples to satisfy the constraint"
            )
    return result


def intcov(
    dataset: Dataset,
    constraint: FairnessConstraint,
    *,
    artifacts=None,
    tau_hint: float | None = None,
    bucket_cache: dict | None = None,
) -> Solution:
    """Exact FairHMS on a two-dimensional dataset (paper Algorithm 1).

    Args:
        dataset: a 2-D :class:`Dataset` (typically ``dataset.skyline()``;
            correctness does not require it, speed benefits from it).
        constraint: group bounds with ``constraint.k`` the solution size.
        artifacts: optional :class:`repro.serving.SolverArtifacts` bound to
            ``dataset``; reuses the upper envelope and the ``O(n^2)``
            candidate-MHR enumeration across calls — both depend only on
            the points, not on ``constraint``, so results are unchanged.
        tau_hint: optional guess for the optimal MHR (e.g. last epoch's
            optimum from a live index, or a neighboring ``k``'s optimum
            from a multi-k batch).  The search starts at the hint's rank
            in the candidate array: when the hint *is* the optimum it is
            certified in two decision evaluations, and otherwise a
            bracketed galloping (exponential) search homes in on the
            optimum in ``O(log(rank distance))`` evaluations instead of
            ``O(log n^2)``.  Feasibility is monotone in ``tau`` and every
            probe is a real decision evaluation, so the returned solution
            is identical with any hint — only the
            ``decision_evaluations`` diagnostic differs.
        bucket_cache: optional mutable mapping ``tau -> per-group interval
            indexes``, shared across calls over the *same* point set and
            envelope (e.g. the ks of one multi-k request).  The entries
            depend only on ``(points, envelope, tau)`` — never on the
            constraint — so sharing them across constraints is purely a
            cache and cannot change any answer.

    Returns:
        The optimal fair solution with ``mhr_estimate`` set to its exact
        minimum happiness ratio.

    Raises:
        ValueError: if the dataset is not 2-D or the constraint cannot be
            met by any size-``k`` subset.
    """
    if dataset.dim != 2:
        raise ValueError(f"IntCov requires d=2, got d={dataset.dim}")
    if constraint.num_groups != dataset.num_groups:
        raise ValueError(
            f"constraint has {constraint.num_groups} groups, dataset has "
            f"{dataset.num_groups}"
        )
    if not constraint.is_feasible_for(dataset.group_sizes):
        raise ValueError(
            "fairness constraint is infeasible for this dataset: "
            + constraint.describe(dataset.group_names)
        )
    t0 = perf_counter()
    points = dataset.points
    if artifacts is not None and artifacts.matches(dataset):
        envelope = artifacts.envelope()
        candidates = artifacts.mhr_candidates()
    else:
        envelope = upper_envelope(points)
        candidates = candidate_mhr_values(points, envelope)
    group_masks = [dataset.labels == g for g in range(dataset.num_groups)]
    t_geometry = perf_counter() - t0

    def decide(tau: float):
        buckets = None if bucket_cache is None else bucket_cache.get(tau)
        if buckets is None:
            buckets = _intervals_by_group(points, envelope, tau, group_masks)
            if bucket_cache is not None:
                bucket_cache[tau] = buckets
        return fair_interval_cover(buckets, constraint)

    t0 = perf_counter()
    best_set: list[int] | None = None
    best_tau = 0.0
    evaluations = 0
    n_cand = int(candidates.shape[0])
    lo, hi = 0, n_cand - 1

    def probe(rank: int) -> bool:
        """One decision evaluation at candidate ``rank``.

        Narrows the live bracket ``[lo, hi]`` using monotonicity of
        feasibility in ``tau`` and tracks the best cover seen, so any
        probe order that shrinks the bracket to empty finds exactly the
        optimum the plain binary search would.
        """
        nonlocal best_set, best_tau, lo, hi, evaluations
        tau = float(candidates[rank])
        cover = decide(tau)
        evaluations += 1
        if cover is None:
            hi = rank - 1
            return False
        best_set, best_tau = cover, tau
        lo = rank + 1
        return True

    if tau_hint is not None and n_cand:
        # Warm start: probe at the hint's rank, then gallop away from it.
        # When the hint is the optimum this certifies it in two decision
        # evaluations (hint feasible, next candidate not); when it is
        # merely near the optimum, the exponential bracket reaches it in
        # O(log(rank distance)) probes instead of O(log n_cand).
        after = int(np.searchsorted(candidates, tau_hint, side="right"))
        start = min(max(after - 1, 0), n_cand - 1)
        if probe(start):
            step = 1
            while lo <= hi:
                if not probe(min(start + step, hi)):
                    break
                step *= 2
        else:
            step = 1
            while lo <= hi:
                if probe(max(start - step, lo)):
                    break
                step *= 2

    while lo <= hi:
        mid = (lo + hi) // 2
        probe(mid)
    t_search = perf_counter() - t0

    t0 = perf_counter()
    if best_set is None:
        # Every candidate failed; fall back to the smallest (tau = 0 cover
        # always succeeds with any fair set, so this means numerics — be
        # safe and return a padded fair set).
        best_set = []
    full = _pad_to_k(best_set, dataset, constraint)
    solution = Solution(
        indices=np.array(sorted(full), dtype=np.int64),
        dataset=dataset,
        algorithm="IntCov",
        constraint=constraint,
        stats={
            "num_candidates": n_cand,
            "decision_evaluations": evaluations,
            "cover_size": len(best_set),
            "tau": best_tau,
        },
    )
    solution.mhr_estimate = solution.mhr()
    solution.stats["phases"] = {
        "geometry": t_geometry,
        "search": t_search,
        "finalize": perf_counter() - t0,
    }
    return solution
