"""Common result type returned by every FairHMS / RMS algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..fairness.metrics import fairness_violations
from ..hms.exact import mhr_exact

__all__ = ["Solution"]


@dataclass
class Solution:
    """A selected subset plus provenance.

    Attributes:
        indices: indices into ``dataset`` of the selected tuples.
        dataset: the dataset the algorithm ran on (usually the per-group
            skyline; MHR values against it equal those against the full
            database because skylines preserve all utility maximizers).
        algorithm: algorithm name for reports.
        constraint: the fairness constraint the algorithm targeted, or
            ``None`` for unconstrained baselines.
        mhr_estimate: the algorithm's own objective estimate, if any.
        stats: free-form diagnostics (timings, net size, rounds, ...).
    """

    indices: np.ndarray
    dataset: Dataset
    algorithm: str
    constraint: FairnessConstraint | None = None
    mhr_estimate: float | None = None
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indices.ndim != 1:
            raise ValueError("indices must be a 1-D array")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.dataset.n
        ):
            raise ValueError("indices out of range for the dataset")
        if np.unique(self.indices).size != self.indices.size:
            raise ValueError("solution contains duplicate tuples")

    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        return int(self.indices.size)

    @property
    def points(self) -> np.ndarray:
        """Coordinates of the selected tuples."""
        return self.dataset.points[self.indices]

    @property
    def ids(self) -> np.ndarray:
        """Row ids in the original (pre-skyline) database."""
        return self.dataset.ids[self.indices]

    def group_counts(self) -> np.ndarray:
        """Per-group member counts of the selection."""
        return np.bincount(
            self.dataset.labels[self.indices], minlength=self.dataset.num_groups
        )

    def violations(self, constraint: FairnessConstraint | None = None) -> int:
        """``err(S)`` against ``constraint`` (default: the targeted one)."""
        constraint = constraint or self.constraint
        if constraint is None:
            raise ValueError("no fairness constraint to evaluate against")
        return fairness_violations(constraint, self.dataset.labels, self.indices)

    def mhr(self, *, candidates=None) -> float:
        """Exact minimum happiness ratio of the selection over the dataset."""
        return mhr_exact(self.points, self.dataset.points, candidates=candidates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        est = f", mhr~{self.mhr_estimate:.4f}" if self.mhr_estimate is not None else ""
        return f"Solution({self.algorithm}, size={self.size}{est})"
