"""``FairHMSClient``: the stdlib-only SDK for the v1.1 HTTP API.

A small synchronous client over :mod:`http.client` that the benchmarks
(``bench_server.py``, ``bench_cluster.py``), the e2e cluster tests, and
external callers share instead of hand-rolled socket code:

* **connection reuse** — one keep-alive connection per endpoint
  (host:port), reconnected transparently when the server (or an
  intervening router failover) drops it;
* **typed exceptions** — envelope error codes map to
  :mod:`repro.client.errors` classes; callers catch
  :class:`~repro.client.errors.RequestShed`, never parse messages;
* **retry with jitter** — retryable failures (sheds, drains, router
  worker outages, connection errors) are retried up to ``retries``
  times with exponential backoff plus jitter, honoring a server-sent
  ``Retry-After`` when one arrives.  ``sleep`` and ``rng`` are
  injectable so tests run deterministically at full speed;
* **transparent cluster redirects** — a 307/308 with a ``Location``
  pointing at another host:port (a router running in redirect mode) is
  followed without consuming a retry, against a pooled connection to
  the new endpoint.

Legacy (pre-envelope) servers still work: a bare JSON body is wrapped
into the envelope shape client-side, with the error code recovered the
same way the server's own compatibility layer does.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from ..server.api import classify_error
from .errors import FairHMSError, ProtocolError, exception_for

__all__ = ["ApiResponse", "FairHMSClient"]

_RETRIABLE_TRANSPORT = (
    ConnectionError,
    http.client.BadStatusLine,
    http.client.RemoteDisconnected,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    socket.timeout,
    OSError,
)

_MAX_REDIRECTS = 4


@dataclass
class ApiResponse:
    """One parsed (enveloped) response."""

    status: int
    data: object
    error: dict | None
    meta: dict
    headers: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


class FairHMSClient:
    """Synchronous client for one server or cluster router endpoint.

    Args:
        host / port: the server (or router) to talk to.
        timeout: socket timeout per request, seconds.
        retries: additional attempts after the first, for *retryable*
            failures only (``error.retryable`` or a transport error).
        backoff: base backoff in seconds; attempt ``i`` sleeps
            ``backoff * 2**i`` plus uniform jitter of one ``backoff``,
            unless the server sent a larger ``Retry-After``.
        sleep / rng: injectable for deterministic tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
        sleep=time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        self.endpoint = (str(host), int(port))
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._conns: dict[tuple[str, int], http.client.HTTPConnection] = {}

    # -- transport ---------------------------------------------------

    def _conn(self, endpoint) -> http.client.HTTPConnection:
        conn = self._conns.get(endpoint)
        if conn is None:
            conn = http.client.HTTPConnection(
                endpoint[0], endpoint[1], timeout=self.timeout
            )
            self._conns[endpoint] = conn
        return conn

    def _drop(self, endpoint) -> None:
        conn = self._conns.pop(endpoint, None)
        if conn is not None:
            conn.close()

    def _roundtrip(self, endpoint, method, path, body, headers):
        """One HTTP exchange (no retries); returns (status, headers, body)."""
        conn = self._conn(endpoint)
        try:
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
        except _RETRIABLE_TRANSPORT:
            self._drop(endpoint)
            raise
        if resp.will_close:
            self._drop(endpoint)
        return resp.status, dict(resp.getheaders()), payload

    # -- envelope handling -------------------------------------------

    @staticmethod
    def _parse(status: int, headers: dict, raw: bytes) -> ApiResponse:
        try:
            body = json.loads(raw) if raw else None
        except ValueError as exc:
            raise ProtocolError(
                f"unparseable response body (status {status}): {exc}",
                status=status,
            ) from None
        if isinstance(body, dict) and "data" in body and "meta" in body:
            return ApiResponse(
                status=status,
                data=body.get("data"),
                error=body.get("error"),
                meta=body.get("meta") or {},
                headers=headers,
            )
        # Legacy bare body (pre-1.1 server, /healthz, ...): synthesize
        # the envelope client-side so callers see one shape everywhere.
        if status < 400:
            return ApiResponse(
                status=status, data=body, error=None, meta={}, headers=headers
            )
        message = body.get("error") if isinstance(body, dict) else None
        if not isinstance(message, str):
            message = f"HTTP {status}"
        code = classify_error(status, message)
        return ApiResponse(
            status=status,
            data=None,
            error={"code": code, "message": message, "retryable": False},
            meta={},
            headers=headers,
        )

    @staticmethod
    def _retry_after(resp: ApiResponse) -> float | None:
        for name, value in resp.headers.items():
            if name.lower() == "retry-after":
                try:
                    return max(0.0, float(value))
                except ValueError:
                    return None
        return None

    def _pause(self, attempt: int, retry_after: float | None) -> None:
        delay = self.backoff * (2**attempt) + self._rng.uniform(0, self.backoff)
        if retry_after is not None:
            delay = max(delay, retry_after)
        self._sleep(delay)

    # -- public API --------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        retry: bool = True,
        raise_for_error: bool = True,
    ) -> ApiResponse:
        """One API call with redirects, retries, and error mapping.

        Returns the :class:`ApiResponse` on success.  With
        ``raise_for_error`` (the default), an envelope error raises its
        typed exception instead of returning; with ``retry=False`` no
        attempt is ever repeated (benchmark closed loops count sheds
        themselves).
        """
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Connection": "keep-alive"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        attempts = (self.retries if retry else 0) + 1
        last_exc: FairHMSError | None = None
        for attempt in range(attempts):
            endpoint = self.endpoint
            response = None
            try:
                for _hop in range(_MAX_REDIRECTS):
                    status, resp_headers, raw = self._roundtrip(
                        endpoint, method, path, body, headers
                    )
                    if status in (307, 308):
                        location = resp_headers.get(
                            "Location", resp_headers.get("location", "")
                        )
                        target = urlsplit(location)
                        if not target.hostname:
                            raise ProtocolError(
                                f"redirect without a usable Location: "
                                f"{location!r}",
                                status=status,
                            )
                        # A cluster redirect: re-issue against the named
                        # worker on a pooled connection; the path (and
                        # body) are unchanged.
                        endpoint = (target.hostname, target.port or 80)
                        if target.path:
                            path = target.path + (
                                f"?{target.query}" if target.query else ""
                            )
                        continue
                    response = self._parse(status, resp_headers, raw)
                    break
                else:
                    raise ProtocolError(
                        f"redirect loop after {_MAX_REDIRECTS} hops", status=307
                    )
            except ProtocolError as exc:
                last_exc = exc
            except _RETRIABLE_TRANSPORT as exc:
                last_exc = ProtocolError(
                    f"connection to {endpoint[0]}:{endpoint[1]} failed: {exc}"
                )
            if response is not None:
                if response.error is None:
                    return response
                error = response.error
                last_exc = exception_for(
                    str(error.get("code", "internal")),
                    str(error.get("message", "")),
                    status=response.status,
                    retry_after=self._retry_after(response),
                )
                if not (error.get("retryable") or last_exc.retryable):
                    break  # a retry can't change the verdict
                if not raise_for_error and attempt + 1 >= attempts:
                    return response
            if attempt + 1 < attempts:
                self._pause(attempt, getattr(last_exc, "retry_after", None))
        if not raise_for_error and response is not None:
            return response
        assert last_exc is not None
        raise last_exc

    def query(
        self,
        dataset: str,
        k: int | None = None,
        *,
        constraint: dict | None = None,
        retry: bool = True,
        **params,
    ) -> dict:
        """One ``/v1/query``; returns the solution payload (``data``).

        ``constraint`` is the wire shape (``{"lower", "upper", "k"}``);
        remaining keyword arguments (``eps``, ``algorithm``, ``seed``,
        ``alpha``, ``scheme``, ``options``) pass through verbatim.
        """
        payload: dict = {"dataset": dataset, **params}
        if k is not None:
            payload["k"] = int(k)
        if constraint is not None:
            payload["constraint"] = constraint
        return self.request("POST", "/v1/query", payload, retry=retry).data

    def insert(
        self, dataset: str, key: int, point, group: int, *, retry: bool = True
    ) -> dict:
        """One live insert; returns the write ack (``data``)."""
        payload = {
            "dataset": dataset,
            "op": "insert",
            "key": int(key),
            "point": [float(x) for x in point],
            "group": int(group),
        }
        return self.request("POST", "/v1/write", payload, retry=retry).data

    def delete(self, dataset: str, key: int, *, retry: bool = True) -> dict:
        """One live delete; returns the write ack (``data``)."""
        payload = {"dataset": dataset, "op": "delete", "key": int(key)}
        return self.request("POST", "/v1/write", payload, retry=retry).data

    def datasets(self) -> list:
        return self.request("GET", "/v1/datasets").data["datasets"]

    def metrics(self) -> dict:
        return self.request("GET", "/v1/metrics").data

    def traces(self, *, limit: int | None = None) -> dict:
        path = "/v1/traces" if limit is None else f"/v1/traces?limit={int(limit)}"
        return self.request("GET", path).data

    def health(self) -> dict:
        """``/healthz`` (bare endpoint; wrapped client-side)."""
        return self.request("GET", "/healthz", retry=False).data

    def close(self) -> None:
        for endpoint in list(self._conns):
            self._drop(endpoint)

    def __enter__(self) -> "FairHMSClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
