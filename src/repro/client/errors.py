"""Typed client-side exceptions mapped from v1.1 error codes.

One exception class per stable error code (``docs/API.md``), all under
:class:`FairHMSError` so callers can catch broadly or precisely.  The
mapping is by ``error.code`` — never by message text — which is the
point of the envelope redesign: messages are for humans, codes are the
contract.
"""

from __future__ import annotations

__all__ = [
    "ClusterRoutingError",
    "DatasetNotFound",
    "FairHMSError",
    "InfeasibleConstraint",
    "InvalidRequest",
    "ProtocolError",
    "RequestShed",
    "ServerDraining",
    "ServerError",
    "WorkerUnavailable",
    "exception_for",
]


class FairHMSError(Exception):
    """Base for every client-visible failure.

    Attributes:
        code: the stable error code (``"internal"`` for transport-level
            failures that never produced an envelope).
        status: the HTTP status, or ``None`` when no response arrived.
        retryable: whether resending the same request verbatim may
            succeed (the server's verdict, not a client guess).
        retry_after: parsed ``Retry-After`` seconds, when sent.
    """

    code = "internal"
    retryable = False

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ProtocolError(FairHMSError):
    """Transport or wire-shape failure: no usable response envelope.

    Connection refused/reset after retries, unparseable bodies, or a
    redirect loop.  Retryable — the request itself was never judged.
    """

    code = "protocol"
    retryable = True


class DatasetNotFound(FairHMSError, KeyError):
    """``dataset_not_found``: the server does not know this dataset.

    Also a :class:`KeyError`, mirroring what the in-process registry
    raises for the same mistake.
    """

    code = "dataset_not_found"

    def __str__(self) -> str:  # KeyError would repr() the message
        return FairHMSError.__str__(self)


class InfeasibleConstraint(FairHMSError, ValueError):
    """``infeasible_constraint``: the fairness constraint has no answer.

    Also a :class:`ValueError`, mirroring the solvers' in-process
    behavior for infeasible group bounds.
    """

    code = "infeasible_constraint"


class InvalidRequest(FairHMSError, ValueError):
    """``invalid_argument`` (and other non-retryable 4xx codes)."""

    code = "invalid_argument"


class RequestShed(FairHMSError):
    """``shed``: admission control refused the request (HTTP 429)."""

    code = "shed"
    retryable = True


class ServerDraining(FairHMSError):
    """``draining``: the server is shutting down gracefully (HTTP 503)."""

    code = "draining"
    retryable = True


class WorkerUnavailable(FairHMSError):
    """``worker_unavailable``: the router could not reach any replica."""

    code = "worker_unavailable"
    retryable = True


class ClusterRoutingError(FairHMSError):
    """``bad_gateway``: a worker answered the router with garbage."""

    code = "bad_gateway"
    retryable = True


class ServerError(FairHMSError):
    """``internal`` (and any unrecognized code): the server failed."""

    code = "internal"


_BY_CODE = {
    "dataset_not_found": DatasetNotFound,
    "infeasible_constraint": InfeasibleConstraint,
    "invalid_argument": InvalidRequest,
    "not_found": InvalidRequest,
    "method_not_allowed": InvalidRequest,
    "payload_too_large": InvalidRequest,
    "shed": RequestShed,
    "draining": ServerDraining,
    "worker_unavailable": WorkerUnavailable,
    "bad_gateway": ClusterRoutingError,
    "internal": ServerError,
}


def exception_for(
    code: str,
    message: str,
    *,
    status: int | None = None,
    retry_after: float | None = None,
) -> FairHMSError:
    """The typed exception for one envelope error object."""
    cls = _BY_CODE.get(code, ServerError)
    exc = cls(message, status=status, retry_after=retry_after)
    if code not in _BY_CODE:
        exc.code = code  # preserve a future server's new code verbatim
    return exc
