"""``repro.client`` — the stdlib-only SDK for the v1.1 HTTP API.

:class:`FairHMSClient` talks to a standalone ``repro server`` or a
``repro cluster`` router identically: keep-alive connection reuse,
typed exceptions mapped from stable error codes, retry-with-jitter
honoring ``Retry-After``, and transparent cluster redirects.  See
``docs/API.md`` for the wire contract and usage examples.
"""

from .client import ApiResponse, FairHMSClient
from .errors import (
    ClusterRoutingError,
    DatasetNotFound,
    FairHMSError,
    InfeasibleConstraint,
    InvalidRequest,
    ProtocolError,
    RequestShed,
    ServerDraining,
    ServerError,
    WorkerUnavailable,
    exception_for,
)

__all__ = [
    "ApiResponse",
    "ClusterRoutingError",
    "DatasetNotFound",
    "FairHMSClient",
    "FairHMSError",
    "InfeasibleConstraint",
    "InvalidRequest",
    "ProtocolError",
    "RequestShed",
    "ServerDraining",
    "ServerError",
    "WorkerUnavailable",
    "exception_for",
]
