"""FairHMS: Happiness Maximizing Sets under Group Fairness Constraints.

A full reproduction of Zheng, Ma, Ma, Wang & Wang (VLDB 2022): the exact
two-dimensional algorithm IntCov, the bicriteria multi-dimensional
algorithms BiGreedy and BiGreedy+, the RMS/HMS baselines they are evaluated
against, the fairness substrate (constraints, matroid, violation metric),
and an experiment harness regenerating every table and figure of the
paper's evaluation.

Quickstart::

    import repro

    data = repro.lsac_example()                      # Table 1, normalized
    sky = data.skyline()
    constraint = repro.FairnessConstraint.exact([1, 1])   # one per gender
    solution = repro.solve_fairhms(sky, constraint)
    print(solution.ids, solution.mhr())              # {a5, a8}, 0.9834
"""

from .core import (
    Solution,
    bigreedy,
    bigreedy_plus,
    hms_exact_2d,
    hms_greedy,
    intcov,
    solve_fairhms,
)
from .data import (
    Dataset,
    anticorrelated_dataset,
    load_dataset,
    lsac_example,
    synthetic_dataset,
)
from .extensions import DynamicFairHMS, StreamingFairHMS, bigreedy_khms
from .fairness import FairnessConstraint, FairnessMatroid, fairness_violations
from .hms import mhr_exact, mhr_on_net
from .service import DatasetRegistry, Gateway, SnapshotStore, build_index_sharded
from .serving import FairHMSIndex, LiveFairHMSIndex, Query, SolverArtifacts

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "DatasetRegistry",
    "DynamicFairHMS",
    "FairHMSIndex",
    "FairnessConstraint",
    "FairnessMatroid",
    "Gateway",
    "LiveFairHMSIndex",
    "Query",
    "SnapshotStore",
    "Solution",
    "SolverArtifacts",
    "StreamingFairHMS",
    "__version__",
    "anticorrelated_dataset",
    "bigreedy",
    "bigreedy_khms",
    "bigreedy_plus",
    "build_index_sharded",
    "fairness_violations",
    "hms_exact_2d",
    "hms_greedy",
    "intcov",
    "load_dataset",
    "lsac_example",
    "mhr_exact",
    "mhr_on_net",
    "solve_fairhms",
    "synthetic_dataset",
]
