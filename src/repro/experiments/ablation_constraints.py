"""Ablation: how the fairness-constraint family shapes the solution.

Section 2 of the paper defines two standard bound constructions —
*proportional* and *balanced* representation — and its experiments use the
proportional one.  This ablation runs both (plus the strictest exact-quota
variant) across datasets, measuring MHR and the per-group composition, so
the "price" of each fairness notion is visible side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bigreedy import bigreedy
from ..core.intcov import intcov
from ..fairness.constraints import FairnessConstraint
from .common import Record, Series
from .workloads import anticor, real_dataset

__all__ = ["AblationConstraintsConfig", "run_ablation_constraints", "render_ablation_constraints"]

_PANELS = (
    ("Lawschs (Race)", {"real": ("Lawschs", "Race")}),
    ("Adult (Gender)", {"real": ("Adult", "Gender")}),
    ("AntiCor_6D", {"anticor": (6, 3)}),
)


@dataclass
class AblationConstraintsConfig:
    k: int = 8
    alpha: float = 0.1
    anticor_n: int = 1_000
    real_n: int | None = 4_000
    seed: int = 7
    panels: tuple = _PANELS


def _constraints(dataset, config) -> dict[str, FairnessConstraint]:
    k = config.k
    population = dataset.population_group_sizes
    available = dataset.group_sizes
    out: dict[str, FairnessConstraint] = {}

    proportional = FairnessConstraint.proportional(k, population, alpha=config.alpha)
    out["proportional"] = FairnessConstraint(
        lower=np.minimum(proportional.lower, available),
        upper=proportional.upper,
        k=k,
    )
    balanced = FairnessConstraint.balanced(
        k, dataset.num_groups, alpha=config.alpha
    )
    out["balanced"] = FairnessConstraint(
        lower=np.minimum(balanced.lower, available),
        upper=balanced.upper,
        k=k,
    )
    # Exact quota: the proportional midpoint, adjusted to sum to k.
    shares = np.asarray(population, dtype=float)
    quota = np.floor(k * shares / shares.sum()).astype(np.int64)
    quota = np.maximum(quota, 1)
    quota = np.minimum(quota, available)
    while quota.sum() > k:
        quota[int(np.argmax(quota))] -= 1
    while quota.sum() < k:
        room = np.nonzero(quota < available)[0]
        target = room[int(np.argmax(shares[room]))]
        quota[target] += 1
    out["exact-quota"] = FairnessConstraint.exact(quota)
    out["unconstrained"] = FairnessConstraint.unconstrained(k, dataset.num_groups)
    return out


def _panel_dataset(spec: dict, config: AblationConstraintsConfig):
    if "real" in spec:
        name, attribute = spec["real"]
        n = None if name == "Credit" else config.real_n
        return real_dataset(name, attribute, n=n)
    d, C = spec["anticor"]
    return anticor(config.anticor_n, d, C, seed=config.seed)


def run_ablation_constraints(
    config: AblationConstraintsConfig | None = None,
) -> dict[str, list[Record]]:
    """MHR of each constraint family per panel (IntCov in 2-D, else BiGreedy)."""
    config = config or AblationConstraintsConfig()
    results: dict[str, list[Record]] = {}
    for label, spec in config.panels:
        dataset = _panel_dataset(spec, config)
        records: list[Record] = []
        for family, constraint in _constraints(dataset, config).items():
            if not constraint.is_feasible_for(dataset.group_sizes):
                continue
            if dataset.dim == 2:
                solution = intcov(dataset, constraint)
                value = solution.mhr_estimate
            else:
                solution = bigreedy(dataset, constraint, seed=config.seed)
                value = solution.mhr()
            records.append(
                Record(
                    experiment="ablation-constraints",
                    dataset=label,
                    algorithm=family,
                    x_name="k",
                    x_value=config.k,
                    mhr=value,
                    violations=solution.violations(constraint),
                    extra={"counts": solution.group_counts().tolist()},
                )
            )
        results[label] = records
    return results


def render_ablation_constraints(results: dict[str, list[Record]]) -> str:
    parts = []
    for label, records in results.items():
        parts.append(
            Series(records, "mhr").render(
                f"Constraint-family ablation — MHR, {label}", sparklines=False
            )
        )
        composition = ", ".join(
            f"{r.algorithm}: {r.extra['counts']}" for r in records
        )
        parts.append(f"  group composition -> {composition}")
    return "\n".join(parts)
