"""Figure 4: two-dimensional results (MHR and running time).

Panels (a)-(e) report MHRs and (f)-(j) running times:

* Lawschs (Gender), k = 2..6;
* Lawschs (Race), k = 5..10 (k >= C is needed for the clamped bounds);
* AntiCor_2D, k = 5..10;
* AntiCor_2D varying C = 2..5 at k = 5;
* AntiCor_2D varying n at k = 5.

The black price-of-fairness line is the exact unconstrained 2-D optimum
(IntCov with a vacuous single group), recorded as algorithm
``"Unconstrained"``.  Expected shape: IntCov tops every MHR panel (it is
optimal) and is the slowest; the price of fairness stays within ~0.02 on
Lawschs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.unconstrained import hms_exact_2d
from .common import Record, Series, timed
from .runner import evaluator_for, run_fair_solvers
from .workloads import anticor, paper_constraint, real_dataset

__all__ = ["Fig4Config", "run_fig4", "render_fig4", "FIG4_ALGORITHMS"]

FIG4_ALGORITHMS = (
    "IntCov",
    "BiGreedy",
    "BiGreedy+",
    "F-Greedy",
    "G-Greedy",
    "G-DMM",
    "G-HS",
    "G-Sphere",
)


@dataclass
class Fig4Config:
    """Scaled-down defaults (full-paper sizes in comments)."""

    lawschs_gender_ks: tuple = (2, 3, 4, 5, 6)
    lawschs_race_ks: tuple = (5, 6, 7, 8, 9, 10)
    anticor_ks: tuple = (5, 6, 7, 8, 9, 10)
    anticor_n: int = 2_000          # paper: 10,000
    anticor_C: int = 3
    vary_C: tuple = (2, 3, 4, 5)
    vary_n: tuple = (100, 1_000, 10_000)   # paper: 1e2..1e6
    vary_k: int = 5
    lawschs_n: int | None = 20_000  # paper: 65,494
    alpha: float = 0.1
    seed: int = 7
    algorithms: tuple = FIG4_ALGORITHMS
    include_price_of_fairness: bool = True


def _sweep_k(config, experiment, label, dataset, ks) -> list[Record]:
    records: list[Record] = []
    for k in ks:
        constraint = paper_constraint(dataset, k, alpha=config.alpha)
        records.extend(
            run_fair_solvers(
                experiment,
                label,
                dataset,
                constraint,
                config.algorithms,
                x_name="k",
                x_value=k,
                seed=config.seed,
            )
        )
        if config.include_price_of_fairness:
            solution, ms = timed(hms_exact_2d, dataset, k)
            records.append(
                Record(
                    experiment=experiment,
                    dataset=label,
                    algorithm="Unconstrained",
                    x_name="k",
                    x_value=k,
                    mhr=evaluator_for(dataset).evaluate(solution.points).value,
                    time_ms=ms,
                )
            )
    return records


def run_fig4(config: Fig4Config | None = None) -> dict[str, list[Record]]:
    """Run all five panels; returns records keyed by panel label."""
    config = config or Fig4Config()
    results: dict[str, list[Record]] = {}

    law_gender = real_dataset("Lawschs", "Gender", n=config.lawschs_n)
    results["Lawschs (Gender)"] = _sweep_k(
        config, "fig4", "Lawschs (Gender)", law_gender, config.lawschs_gender_ks
    )
    law_race = real_dataset("Lawschs", "Race", n=config.lawschs_n)
    results["Lawschs (Race)"] = _sweep_k(
        config, "fig4", "Lawschs (Race)", law_race, config.lawschs_race_ks
    )
    ac = anticor(config.anticor_n, 2, config.anticor_C, seed=config.seed)
    results["AntiCor_2D"] = _sweep_k(
        config, "fig4", "AntiCor_2D", ac, config.anticor_ks
    )

    # Panel (d)/(i): vary the number of groups C at fixed k.
    records_c: list[Record] = []
    for C in config.vary_C:
        data = anticor(config.anticor_n, 2, C, seed=config.seed)
        constraint = paper_constraint(data, config.vary_k, alpha=config.alpha)
        records_c.extend(
            run_fair_solvers(
                "fig4",
                "AntiCor_2D (vary C)",
                data,
                constraint,
                config.algorithms,
                x_name="C",
                x_value=C,
                seed=config.seed,
            )
        )
        if config.include_price_of_fairness:
            solution, ms = timed(hms_exact_2d, data, config.vary_k)
            records_c.append(
                Record(
                    "fig4", "AntiCor_2D (vary C)", "Unconstrained", "C", C,
                    mhr=evaluator_for(data).evaluate(solution.points).value,
                    time_ms=ms,
                )
            )
    results["AntiCor_2D (vary C)"] = records_c

    # Panel (e)/(j): vary the dataset size n at fixed k.
    records_n: list[Record] = []
    for n in config.vary_n:
        data = anticor(n, 2, config.anticor_C, seed=config.seed)
        constraint = paper_constraint(data, config.vary_k, alpha=config.alpha)
        records_n.extend(
            run_fair_solvers(
                "fig4",
                "AntiCor_2D (vary n)",
                data,
                constraint,
                config.algorithms,
                x_name="n",
                x_value=n,
                seed=config.seed,
            )
        )
        if config.include_price_of_fairness:
            solution, ms = timed(hms_exact_2d, data, config.vary_k)
            records_n.append(
                Record(
                    "fig4", "AntiCor_2D (vary n)", "Unconstrained", "n", n,
                    mhr=evaluator_for(data).evaluate(solution.points).value,
                    time_ms=ms,
                )
            )
    results["AntiCor_2D (vary n)"] = records_n
    return results


def render_fig4(results: dict[str, list[Record]]) -> str:
    parts = []
    for label, records in results.items():
        parts.append(Series(records, "mhr").render(f"Figure 4 — MHR, {label}"))
        parts.append(Series(records, "time_ms").render(f"Figure 4 — time (ms), {label}"))
    return "\n\n".join(parts)
