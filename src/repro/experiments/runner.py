"""Shared execution helper: run a roster of solvers on one instance.

Handles the paper's conventions: solvers that cannot run a configuration
(DMM/Sphere with ``k_c < d``, DMM with ``d > 7``) are silently omitted from
that series, and every solution is scored with the dataset's cached
:class:`MhrEvaluator`.
"""

from __future__ import annotations

from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..hms.evaluation import MhrEvaluator
from .common import Record, timed
from .workloads import FAIR_SOLVERS

__all__ = ["run_fair_solvers", "evaluator_for"]

_EVALUATORS: dict[int, MhrEvaluator] = {}


def evaluator_for(dataset: Dataset) -> MhrEvaluator:
    """Cached MhrEvaluator keyed by the dataset's identity."""
    key = id(dataset)
    if key not in _EVALUATORS:
        _EVALUATORS[key] = MhrEvaluator(dataset.points)
    return _EVALUATORS[key]


def run_fair_solvers(
    experiment: str,
    label: str,
    dataset: Dataset,
    constraint: FairnessConstraint,
    algorithms,
    *,
    x_name: str,
    x_value,
    seed: int = 7,
    solver_kwargs: dict | None = None,
) -> list[Record]:
    """Run each named fair solver once and record MHR / time / err.

    Args:
        experiment / label: identifiers stamped on the records.
        dataset: per-group skyline input.
        constraint: the fairness constraint (carries ``k``).
        algorithms: iterable of solver names from ``FAIR_SOLVERS``.
        x_name / x_value: the sweep coordinate (k, C, n, d, m, ...).
        seed: forwarded to the stochastic core solvers.
        solver_kwargs: optional per-solver extra kwargs
            ``{name: {kw: value}}``.
    """
    solver_kwargs = solver_kwargs or {}
    evaluator = evaluator_for(dataset)
    records: list[Record] = []
    for name in algorithms:
        solver = FAIR_SOLVERS[name]
        kwargs = dict(solver_kwargs.get(name, {}))
        if name in ("BiGreedy", "BiGreedy+"):  # the stochastic core solvers
            kwargs.setdefault("seed", seed)
        try:
            solution, ms = timed(solver, dataset, constraint, **kwargs)
        except ValueError:
            continue  # configuration not runnable for this solver
        evaluation = evaluator.evaluate(solution.points)
        records.append(
            Record(
                experiment=experiment,
                dataset=label,
                algorithm=name,
                x_name=x_name,
                x_value=x_value,
                mhr=evaluation.value,
                time_ms=ms,
                violations=solution.violations(constraint),
                extra={"mhr_exact_method": evaluation.method},
            )
        )
    return records
