"""Shared infrastructure for the experiment harness.

Every figure/table runner produces a list of :class:`Record` rows and a
:class:`Series` table that can be rendered as text (the reproduction's
"figures"), compared against the paper's qualitative expectations, and
dumped into EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Record",
    "Series",
    "timed",
    "format_table",
    "geometric_range",
    "sparkline",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values, *, minimum=None, maximum=None) -> str:
    """Render a numeric series as a unicode sparkline (text "figure").

    ``None`` entries render as spaces.  A constant series renders at the
    middle level so it is visibly non-empty.
    """
    present = [v for v in values if v is not None]
    if not present:
        return " " * len(list(values))
    low = min(present) if minimum is None else minimum
    high = max(present) if maximum is None else maximum
    span = high - low
    chars = []
    for v in values:
        if v is None:
            chars.append(" ")
        elif span <= 0:
            chars.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
        else:
            level = int((v - low) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[max(0, min(level, len(_SPARK_LEVELS) - 1))])
    return "".join(chars)


@dataclass
class Record:
    """One measured cell: algorithm x workload-point -> metrics."""

    experiment: str
    dataset: str
    algorithm: str
    x_name: str
    x_value: float
    mhr: float | None = None
    time_ms: float | None = None
    violations: int | None = None
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        row = {
            "experiment": self.experiment,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.x_name: self.x_value,
            "mhr": self.mhr,
            "time_ms": self.time_ms,
            "violations": self.violations,
        }
        row.update(self.extra)
        return row


class Series:
    """A pivoted result table: rows = algorithms, columns = x values."""

    def __init__(self, records: list[Record], metric: str) -> None:
        if metric not in ("mhr", "time_ms", "violations"):
            raise ValueError(f"unknown metric {metric!r}")
        self.metric = metric
        self.records = records
        self.x_name = records[0].x_name if records else "x"
        self.x_values = sorted({r.x_value for r in records})
        self.algorithms = list(dict.fromkeys(r.algorithm for r in records))

    def cell(self, algorithm: str, x_value) -> float | None:
        for r in self.records:
            if r.algorithm == algorithm and r.x_value == x_value:
                return getattr(r, self.metric)
        return None

    def row(self, algorithm: str) -> list[float | None]:
        return [self.cell(algorithm, x) for x in self.x_values]

    def render(self, title: str = "", *, sparklines: bool = True) -> str:
        header = [self.x_name] + [_fmt_x(x) for x in self.x_values]
        if sparklines:
            header.append("trend")
        rows = []
        for algo in self.algorithms:
            row = [algo] + [_fmt(v, self.metric) for v in self.row(algo)]
            if sparklines:
                row.append(sparkline(self.row(algo)))
            rows.append(row)
        table = format_table(header, rows)
        return f"{title}\n{table}" if title else table


def _fmt_x(x) -> str:
    if isinstance(x, float) and x.is_integer():
        return str(int(x))
    return f"{x:g}"


def _fmt(value, metric: str) -> str:
    if value is None:
        return "-"
    if metric == "mhr":
        return f"{value:.4f}"
    if metric == "time_ms":
        return f"{value:.1f}"
    return str(int(value))


def format_table(header: list[str], rows: list[list[str]]) -> str:
    """Plain fixed-width text table (the harness's rendering primitive)."""
    columns = [header] + rows
    widths = [max(len(str(r[i])) for r in columns) for i in range(len(header))]
    def line(row):
        return "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([line(header), sep] + [line(r) for r in rows])


def timed(fn, *args, **kwargs):
    """Run ``fn`` returning ``(result, elapsed_ms)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, (time.perf_counter() - start) * 1e3


def geometric_range(start: float, stop: float, num: int) -> np.ndarray:
    """Geometrically spaced values including both endpoints."""
    if num < 2:
        return np.array([start])
    return np.geomspace(start, stop, num)
