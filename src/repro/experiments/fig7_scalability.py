"""Figure 7: scalability on anti-correlated data (vary d, C, n at k = 20).

Three column-pairs in the paper:

* (a) vary dimensionality d (paper 2..16; scaled default 2..8) with
  n = 10,000 (scaled), C = 3;
* (b) vary number of groups C = 2..10 with d = 6;
* (c) vary dataset size n (paper 1e2..1e6; scaled default 1e2..1e4)
  with d = 6, C = 3.

Expected shape: MHR decreases and time grows with every axis; the
advantage of BiGreedy/BiGreedy+ over the per-group baselines widens with
C and n; time grows near-linearly with n.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import Record, Series
from .runner import run_fair_solvers
from .workloads import anticor, paper_constraint

__all__ = ["Fig7Config", "run_fig7", "render_fig7", "FIG7_ALGORITHMS"]

FIG7_ALGORITHMS = (
    "BiGreedy",
    "BiGreedy+",
    "F-Greedy",
    "G-Greedy",
    "G-DMM",
    "G-HS",
    "G-Sphere",
)


@dataclass
class Fig7Config:
    """Scaled-down defaults (paper sizes in comments)."""

    k: int = 20
    base_n: int = 2_000             # paper: 10,000
    base_d: int = 6
    base_C: int = 3
    dims: tuple = (2, 3, 4, 6, 8)   # paper: 2..16
    Cs: tuple = (2, 4, 6, 8, 10)    # paper: 2..10
    ns: tuple = (100, 1_000, 10_000)  # paper: 1e2..1e6
    alpha: float = 0.1
    seed: int = 7
    algorithms: tuple = FIG7_ALGORITHMS


def run_fig7(config: Fig7Config | None = None) -> dict[str, list[Record]]:
    """Run the three sweeps; returns records keyed by sweep label."""
    config = config or Fig7Config()
    results: dict[str, list[Record]] = {}

    records_d: list[Record] = []
    for d in config.dims:
        data = anticor(config.base_n, d, config.base_C, seed=config.seed)
        constraint = paper_constraint(data, config.k, alpha=config.alpha)
        records_d.extend(
            run_fair_solvers(
                "fig7", "AntiCor (vary d)", data, constraint,
                config.algorithms, x_name="d", x_value=d, seed=config.seed,
            )
        )
    results["AntiCor (vary d)"] = records_d

    records_c: list[Record] = []
    for C in config.Cs:
        data = anticor(config.base_n, config.base_d, C, seed=config.seed)
        constraint = paper_constraint(data, config.k, alpha=config.alpha)
        records_c.extend(
            run_fair_solvers(
                "fig7", "AntiCor_6D (vary C)", data, constraint,
                config.algorithms, x_name="C", x_value=C, seed=config.seed,
            )
        )
    results["AntiCor_6D (vary C)"] = records_c

    records_n: list[Record] = []
    for n in config.ns:
        data = anticor(n, config.base_d, config.base_C, seed=config.seed)
        constraint = paper_constraint(data, config.k, alpha=config.alpha)
        records_n.extend(
            run_fair_solvers(
                "fig7", "AntiCor_6D (vary n)", data, constraint,
                config.algorithms, x_name="n", x_value=n, seed=config.seed,
            )
        )
    results["AntiCor_6D (vary n)"] = records_n
    return results


def render_fig7(results: dict[str, list[Record]]) -> str:
    parts = []
    for label, records in results.items():
        parts.append(Series(records, "mhr").render(f"Figure 7 — MHR, {label}"))
        parts.append(Series(records, "time_ms").render(f"Figure 7 — time (ms), {label}"))
    return "\n\n".join(parts)
