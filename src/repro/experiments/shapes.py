"""Qualitative "paper shape" checks.

The reproduction's substrate is pure Python on simulated data, so absolute
numbers differ from the paper; what must carry over is *who wins, by
roughly what factor, and which way the curves bend*.  Each check below
encodes one such claim from the paper's evaluation; ``run_all`` prints the
verdicts and the test suite asserts the critical ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from .common import Record

__all__ = ["ShapeCheck", "check_all_shapes"]


@dataclass
class ShapeCheck:
    name: str
    passed: bool
    detail: str


def _cells(records: list[Record], algorithm: str) -> list[Record]:
    return [r for r in records if r.algorithm == algorithm]


def _check_example22(results) -> list[ShapeCheck]:
    checks = []
    for r in results:
        checks.append(
            ShapeCheck(
                f"example22/{r.name}",
                r.matches,
                f"got {sorted(r.selected)} mhr={r.mhr:.4f}",
            )
        )
    return checks


def _check_fig3(results: dict[str, list[Record]]) -> list[ShapeCheck]:
    checks = []
    fair_names = {"IntCov", "BiGreedy", "BiGreedy+"}
    for label, records in results.items():
        fair = [r for r in records if r.algorithm in fair_names]
        unfair = [r for r in records if r.algorithm not in fair_names]
        fair_ok = all(r.violations == 0 for r in fair)
        if unfair:
            frac = sum(1 for r in unfair if (r.violations or 0) > 0) / len(unfair)
        else:
            frac = 0.0
        checks.append(
            ShapeCheck(
                f"fig3/{label}/fair-always-zero", fair_ok,
                f"{len(fair)} fair cells",
            )
        )
        checks.append(
            ShapeCheck(
                f"fig3/{label}/baselines-violate", frac >= 0.5,
                f"{frac:.0%} of baseline cells violate",
            )
        )
    return checks


def _check_fig4(results: dict[str, list[Record]]) -> list[ShapeCheck]:
    checks = []
    for label, records in results.items():
        intcov = _cells(records, "IntCov")
        others = [
            r
            for r in records
            if r.algorithm not in ("IntCov", "Unconstrained") and r.mhr is not None
        ]
        optimal = all(
            r.mhr + 1e-6 >= max(
                (o.mhr for o in others if o.x_value == r.x_value), default=0.0
            )
            for r in intcov
        )
        checks.append(
            ShapeCheck(f"fig4/{label}/intcov-optimal", optimal, f"{len(intcov)} cells")
        )
        unconstrained = _cells(records, "Unconstrained")
        if unconstrained and intcov:
            price = max(
                (u.mhr - i.mhr)
                for u in unconstrained
                for i in intcov
                if i.x_value == u.x_value
            )
            checks.append(
                ShapeCheck(
                    f"fig4/{label}/price-of-fairness-bounded",
                    price <= 0.25,
                    f"max price {price:.4f}",
                )
            )
    return checks


def _check_fig56(results: dict[str, list[Record]]) -> list[ShapeCheck]:
    checks = []
    wins = 0
    comparisons = 0
    for label, records in results.items():
        fair = [
            r for r in records if r.algorithm != "Unconstrained" and r.mhr is not None
        ]
        err_ok = all((r.violations or 0) == 0 for r in fair)
        checks.append(
            ShapeCheck(f"fig56/{label}/all-fair", err_ok, f"{len(fair)} cells")
        )
        big = _cells(records, "BiGreedy")
        for r in big:
            rivals = [
                o.mhr
                for o in records
                if o.x_value == r.x_value
                and o.algorithm in ("G-Greedy", "G-DMM", "G-HS", "G-Sphere")
                and o.mhr is not None
            ]
            if rivals:
                comparisons += 1
                if r.mhr + 1e-9 >= max(rivals):
                    wins += 1
        big_t = [r.time_ms for r in big if r.time_ms is not None]
        plus_t = [
            r.time_ms for r in _cells(records, "BiGreedy+") if r.time_ms is not None
        ]
        if big_t and plus_t:
            checks.append(
                ShapeCheck(
                    f"fig56/{label}/bigreedy+-faster",
                    median(plus_t) <= median(big_t) * 1.2,
                    f"median {median(plus_t):.0f}ms vs {median(big_t):.0f}ms",
                )
            )
    if comparisons:
        checks.append(
            ShapeCheck(
                "fig56/bigreedy-beats-adapted-mostly",
                wins / comparisons >= 0.6,
                f"{wins}/{comparisons} cells won",
            )
        )
    return checks


def _check_fig7(results: dict[str, list[Record]]) -> list[ShapeCheck]:
    checks = []
    by_d = results.get("AntiCor (vary d)", [])
    big = sorted(_cells(by_d, "BiGreedy"), key=lambda r: r.x_value)
    if len(big) >= 2:
        checks.append(
            ShapeCheck(
                "fig7/mhr-decreases-with-d",
                big[-1].mhr <= big[0].mhr + 1e-6,
                f"{big[0].mhr:.4f} (d={big[0].x_value:g}) -> "
                f"{big[-1].mhr:.4f} (d={big[-1].x_value:g})",
            )
        )
    by_n = results.get("AntiCor_6D (vary n)", [])
    big_n = sorted(_cells(by_n, "BiGreedy"), key=lambda r: r.x_value)
    if len(big_n) >= 2:
        checks.append(
            ShapeCheck(
                "fig7/time-grows-with-n",
                big_n[-1].time_ms >= big_n[0].time_ms,
                f"{big_n[0].time_ms:.0f}ms -> {big_n[-1].time_ms:.0f}ms",
            )
        )
    return checks


def _check_fig89(results: dict[str, list[Record]]) -> list[ShapeCheck]:
    checks = []
    for label, records in results.items():
        big = sorted(_cells(records, "BiGreedy"), key=lambda r: r.x_value)
        if len(big) >= 2:
            checks.append(
                ShapeCheck(
                    f"fig89/{label}/mhr-saturates",
                    big[-1].mhr >= big[0].mhr - 0.05,
                    f"{big[0].mhr:.4f} (m={big[0].x_value:g}) -> "
                    f"{big[-1].mhr:.4f} (m={big[-1].x_value:g})",
                )
            )
            checks.append(
                ShapeCheck(
                    f"fig89/{label}/time-grows-with-m",
                    big[-1].time_ms >= big[0].time_ms,
                    f"{big[0].time_ms:.0f}ms -> {big[-1].time_ms:.0f}ms",
                )
            )
    return checks


def check_all_shapes(
    *,
    example22=None,
    fig3=None,
    fig4=None,
    fig56=None,
    fig7=None,
    fig89=None,
) -> list[ShapeCheck]:
    """Run every applicable shape check over the supplied results."""
    checks: list[ShapeCheck] = []
    if example22 is not None:
        checks.extend(_check_example22(example22))
    if fig3 is not None:
        checks.extend(_check_fig3(fig3))
    if fig4 is not None:
        checks.extend(_check_fig4(fig4))
    if fig56 is not None:
        checks.extend(_check_fig56(fig56))
    if fig7 is not None:
        checks.extend(_check_fig7(fig7))
    if fig89 is not None:
        checks.extend(_check_fig89(fig89))
    return checks
