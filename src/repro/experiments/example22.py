"""Example 2.2 / Table 1: the paper's running LSAC example, end to end.

Reproduced exactly (same sets, MHR matching to four decimals):

* HMS with ``k = 3``: ``{a4, a5, a7}``, MHR 0.9984 — all male.
* HMS with ``k = 2``: ``{a4, a5}``, MHR 0.9846 — all male.
* FairHMS with ``k = 2``, one per gender: ``{a5, a8}``, MHR 0.9834.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.intcov import intcov
from ..core.unconstrained import hms_exact_2d
from ..data.lsac import lsac_example
from ..fairness.constraints import FairnessConstraint

__all__ = ["run_example22", "EXAMPLE22_EXPECTED"]

EXAMPLE22_EXPECTED = {
    "hms_k3": ({"a4", "a5", "a7"}, 0.9984),
    "hms_k2": ({"a4", "a5"}, 0.9846),
    "fair_k2": ({"a5", "a8"}, 0.9834),
}


@dataclass
class Example22Result:
    name: str
    selected: set
    mhr: float
    expected_selected: set
    expected_mhr: float

    @property
    def matches(self) -> bool:
        return (
            self.selected == self.expected_selected
            and abs(self.mhr - self.expected_mhr) < 5e-5
        )


def run_example22() -> list[Example22Result]:
    """Run the three solves of Example 2.2 and compare with the paper."""
    data = lsac_example("Gender")
    sky = data.skyline()

    def names(solution) -> set:
        return {f"a{int(i) + 1}" for i in solution.ids}

    results = []
    hms3 = hms_exact_2d(sky, 3)
    results.append(
        Example22Result(
            "hms_k3", names(hms3), hms3.mhr_estimate, *EXAMPLE22_EXPECTED["hms_k3"]
        )
    )
    hms2 = hms_exact_2d(sky, 2)
    results.append(
        Example22Result(
            "hms_k2", names(hms2), hms2.mhr_estimate, *EXAMPLE22_EXPECTED["hms_k2"]
        )
    )
    fair = intcov(sky, FairnessConstraint.exact([1, 1]))
    results.append(
        Example22Result(
            "fair_k2", names(fair), fair.mhr_estimate, *EXAMPLE22_EXPECTED["fair_k2"]
        )
    )
    return results
