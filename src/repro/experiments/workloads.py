"""Workload builders shared by the experiment runners.

Centralizes (a) dataset construction + per-group skyline extraction with
caching, (b) the paper's proportional fairness constraint (alpha = 0.1,
clamped — Section 5.1), and (c) the algorithm rosters of each figure.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.adaptive import bigreedy_plus
from ..core.bigreedy import bigreedy
from ..core.intcov import intcov
from ..baselines.adapted import FAIR_BASELINES
from ..baselines.dmm import dmm
from ..baselines.greedy import rdp_greedy
from ..baselines.hs import hitting_set
from ..baselines.sphere import sphere
from ..data.dataset import Dataset
from ..data.realworld import load_dataset
from ..data.synthetic import anticorrelated_dataset
from ..fairness.constraints import FairnessConstraint

__all__ = [
    "skyline_of",
    "real_dataset",
    "anticor",
    "paper_constraint",
    "CORE_SOLVERS",
    "UNFAIR_SOLVERS",
    "FAIR_SOLVERS",
]

#: Fair solvers: name -> callable(dataset, constraint, **kw) -> Solution.
CORE_SOLVERS = {
    "IntCov": intcov,
    "BiGreedy": bigreedy,
    "BiGreedy+": bigreedy_plus,
}

#: Unconstrained solvers: name -> callable(dataset, k, **kw) -> Solution.
UNFAIR_SOLVERS = {
    "Greedy": rdp_greedy,
    "DMM": dmm,
    "Sphere": sphere,
    "HS": hitting_set,
}

#: All fairness-aware solvers compared in Figures 4-7.
FAIR_SOLVERS = dict(CORE_SOLVERS)
FAIR_SOLVERS.update(FAIR_BASELINES)


@lru_cache(maxsize=64)
def _real_skyline(name: str, group_attribute: str, n: int | None) -> Dataset:
    data = load_dataset(name, group_attribute, n=n).normalized()
    return data.skyline(per_group=True)


def real_dataset(name: str, group_attribute: str, *, n: int | None = None) -> Dataset:
    """Normalized per-group skyline of a (simulated) real dataset, cached."""
    return _real_skyline(name, group_attribute, n)


@lru_cache(maxsize=64)
def _anticor_skyline(n: int, d: int, C: int, seed: int) -> Dataset:
    data = anticorrelated_dataset(n, d, C, seed=seed).normalized()
    return data.skyline(per_group=True)


def anticor(n: int, d: int, C: int, *, seed: int = 42) -> Dataset:
    """Normalized per-group skyline of an anti-correlated dataset, cached."""
    return _anticor_skyline(n, d, C, seed)


def paper_constraint(dataset: Dataset, k: int, *, alpha: float = 0.1) -> FairnessConstraint:
    """The paper's proportional constraint with its Section 5.1 clamping.

    Proportions reference the *population* group sizes (recorded by
    ``Dataset.skyline()``); lower bounds are additionally capped by the
    skyline's per-group availability, since no algorithm can select tuples
    that do not exist in its input.
    """
    constraint = FairnessConstraint.proportional(
        k, dataset.population_group_sizes, alpha=alpha, clamp=True
    )
    return constraint.capped_by_availability(dataset.group_sizes)
