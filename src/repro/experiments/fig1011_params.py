"""Figures 10 & 11 (Appendix B): BiGreedy+ sensitivity to epsilon and lambda.

A grid over ``epsilon`` (cap-search granularity) and ``lambda``
(stabilization threshold): Figure 10 reports the MHR surface, Figure 11
the running-time surface.  Paper grid: ``{0.00125, ..., 0.64}`` (powers of
2); the scaled default uses a coarser sub-grid.  Expected shape: MHR rises
then plateaus as either parameter shrinks; time rises as they shrink.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.adaptive import bigreedy_plus
from .common import Record, format_table, timed
from .runner import evaluator_for
from .workloads import anticor, paper_constraint, real_dataset

__all__ = ["Fig1011Config", "run_fig1011", "render_fig1011", "FIG1011_PANELS"]

FIG1011_PANELS = (
    ("Adult (Gender)", {"real": ("Adult", "Gender")}),
    ("AntiCor_6D", {"anticor": (6, 3)}),
    ("Credit (Job)", {"real": ("Credit", "Job")}),
)


@dataclass
class Fig1011Config:
    k: int = 10
    epsilons: tuple = (0.01, 0.04, 0.16, 0.64)  # paper: 0.00125..0.64
    lambdas: tuple = (0.01, 0.04, 0.16, 0.64)
    anticor_n: int = 2_000
    real_n: int | None = 4_000
    alpha: float = 0.1
    seed: int = 7
    panels: tuple = FIG1011_PANELS


def _panel_dataset(spec: dict, config: Fig1011Config):
    if "real" in spec:
        name, attribute = spec["real"]
        n = None if name == "Credit" else config.real_n
        return real_dataset(name, attribute, n=n)
    d, C = spec["anticor"]
    return anticor(config.anticor_n, d, C, seed=config.seed)


def run_fig1011(config: Fig1011Config | None = None) -> dict[str, list[Record]]:
    """Grid-sweep (epsilon, lambda) per panel for BiGreedy+."""
    config = config or Fig1011Config()
    results: dict[str, list[Record]] = {}
    for label, spec in config.panels:
        dataset = _panel_dataset(spec, config)
        evaluator = evaluator_for(dataset)
        constraint = paper_constraint(dataset, config.k, alpha=config.alpha)
        records: list[Record] = []
        for eps in config.epsilons:
            for lam in config.lambdas:
                solution, ms = timed(
                    bigreedy_plus,
                    dataset,
                    constraint,
                    epsilon=eps,
                    lam=lam,
                    seed=config.seed,
                )
                records.append(
                    Record(
                        "fig1011", label, "BiGreedy+", "eps", eps,
                        mhr=evaluator.evaluate(solution.points).value,
                        time_ms=ms,
                        extra={"lambda": lam},
                    )
                )
        results[label] = records
    return results


def _grid(records: list[Record], metric: str) -> str:
    epsilons = sorted({r.x_value for r in records})
    lambdas = sorted({r.extra["lambda"] for r in records})
    header = ["eps \\ lam"] + [f"{l:g}" for l in lambdas]
    rows = []
    for eps in epsilons:
        row = [f"{eps:g}"]
        for lam in lambdas:
            cell = next(
                (
                    r
                    for r in records
                    if r.x_value == eps and r.extra["lambda"] == lam
                ),
                None,
            )
            if cell is None:
                row.append("-")
            elif metric == "mhr":
                row.append(f"{cell.mhr:.4f}")
            else:
                row.append(f"{cell.time_ms:.0f}")
        rows.append(row)
    return format_table(header, rows)


def render_fig1011(results: dict[str, list[Record]]) -> str:
    parts = []
    for label, records in results.items():
        parts.append(f"Figure 10 — MHR grid, {label}\n" + _grid(records, "mhr"))
    for label, records in results.items():
        parts.append(f"Figure 11 — time (ms) grid, {label}\n" + _grid(records, "time"))
    return "\n\n".join(parts)
