"""Experiment harness: one runner per table/figure of the paper.

See DESIGN.md section 4 for the per-experiment index and
``python -m repro.experiments.run_all`` to regenerate EXPERIMENTS.md.
"""

from .ablation_constraints import (
    AblationConstraintsConfig,
    run_ablation_constraints,
)
from .common import Record, Series, format_table, sparkline, timed
from .example22 import EXAMPLE22_EXPECTED, run_example22
from .fig3_violations import Fig3Config, run_fig3
from .fig4_twod import Fig4Config, run_fig4
from .fig56_md import Fig56Config, run_fig56
from .fig7_scalability import Fig7Config, run_fig7
from .fig89_samplesize import Fig89Config, run_fig89
from .fig1011_params import Fig1011Config, run_fig1011
from .runner import run_fair_solvers
from .run_all import run_all
from .shapes import ShapeCheck, check_all_shapes
from .table2 import TABLE2_PAPER, run_table2
from .workloads import (
    CORE_SOLVERS,
    FAIR_SOLVERS,
    UNFAIR_SOLVERS,
    anticor,
    paper_constraint,
    real_dataset,
)

__all__ = [
    "AblationConstraintsConfig",
    "CORE_SOLVERS",
    "EXAMPLE22_EXPECTED",
    "FAIR_SOLVERS",
    "Fig1011Config",
    "Fig3Config",
    "Fig4Config",
    "Fig56Config",
    "Fig7Config",
    "Fig89Config",
    "Record",
    "Series",
    "ShapeCheck",
    "TABLE2_PAPER",
    "UNFAIR_SOLVERS",
    "anticor",
    "check_all_shapes",
    "format_table",
    "paper_constraint",
    "real_dataset",
    "run_ablation_constraints",
    "run_all",
    "run_example22",
    "sparkline",
    "run_fair_solvers",
    "run_fig3",
    "run_fig4",
    "run_fig56",
    "run_fig7",
    "run_fig89",
    "run_fig1011",
    "run_table2",
    "timed",
]
