"""Figure 3: fairness violations of unconstrained algorithms vs k.

The paper runs the original (fairness-blind) implementations of Greedy,
DMM, HS and Sphere — plus BiGreedy/BiGreedy+ with the constraint — on five
panels and counts ``err(S)`` (Eq. 3) under the proportional constraint
(alpha = 0.1).  Expected shape: the baselines violate fairness almost
everywhere; the proposed algorithms never do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fairness.metrics import fairness_violations
from .common import Record, Series, timed
from .workloads import CORE_SOLVERS, UNFAIR_SOLVERS, anticor, paper_constraint, real_dataset

__all__ = ["Fig3Config", "run_fig3", "FIG3_PANELS"]

#: The paper's five panels: (label, dataset builder kwargs).
FIG3_PANELS = (
    ("Adult (Gender)", {"real": ("Adult", "Gender")}),
    ("Adult (Race)", {"real": ("Adult", "Race")}),
    ("AntiCor_6D", {"anticor": (6, 3)}),
    ("Compas (Gender)", {"real": ("Compas", "Gender")}),
    ("Credit (Job)", {"real": ("Credit", "Job")}),
)


@dataclass
class Fig3Config:
    """Scaled-down defaults; pass bigger numbers to match the paper."""

    ks: tuple = (10, 12, 14, 16, 18, 20)
    anticor_n: int = 2_000
    real_n: int | None = 4_000  # row-count cap for simulated real data
    alpha: float = 0.1
    seed: int = 7
    panels: tuple = FIG3_PANELS
    algorithms: tuple = ("BiGreedy", "BiGreedy+", "Greedy", "DMM", "HS", "Sphere")
    extra: dict = field(default_factory=dict)


def _panel_dataset(spec: dict, config: Fig3Config):
    if "real" in spec:
        name, attribute = spec["real"]
        n = config.real_n
        if name == "Credit":  # already only 1,000 rows
            n = None
        return real_dataset(name, attribute, n=n)
    d, C = spec["anticor"]
    return anticor(config.anticor_n, d, C, seed=config.seed)


def run_fig3(config: Fig3Config | None = None) -> dict[str, list[Record]]:
    """Measure err(S) per panel; returns records keyed by panel label."""
    config = config or Fig3Config()
    results: dict[str, list[Record]] = {}
    for label, spec in config.panels:
        dataset = _panel_dataset(spec, config)
        records: list[Record] = []
        for k in config.ks:
            constraint = paper_constraint(dataset, k, alpha=config.alpha)
            for name in config.algorithms:
                if name in CORE_SOLVERS:
                    solver = CORE_SOLVERS[name]
                    kwargs = {} if name == "IntCov" else {"seed": config.seed}
                    try:
                        solution, ms = timed(solver, dataset, constraint, **kwargs)
                    except ValueError:
                        continue
                    err = solution.violations()
                else:
                    solver = UNFAIR_SOLVERS[name]
                    try:
                        solution, ms = timed(solver, dataset, k)
                    except ValueError:
                        continue  # e.g. DMM with k < d or d > 7
                    err = fairness_violations(
                        constraint, dataset.labels, solution.indices
                    )
                records.append(
                    Record(
                        experiment="fig3",
                        dataset=label,
                        algorithm=name,
                        x_name="k",
                        x_value=k,
                        violations=err,
                        time_ms=ms,
                    )
                )
        results[label] = records
    return results


def render_fig3(results: dict[str, list[Record]]) -> str:
    parts = []
    for label, records in results.items():
        parts.append(Series(records, "violations").render(f"Figure 3 — err(S), {label}"))
    return "\n\n".join(parts)
