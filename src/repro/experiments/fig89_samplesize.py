"""Figures 8 & 9 (Appendix B): effect of the net sample size.

BiGreedy's net size ``m`` and BiGreedy+'s cap ``M`` sweep
``{1.25, 2.5, 5, 10, 20, 40} * k * d`` on the multi-dimensional panels;
Figure 8 reports MHR, Figure 9 running time.  Expected shape: MHR mostly
saturates by ``m = 10 k d`` (the paper's default) while time grows near
linearly with ``m``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.adaptive import bigreedy_plus
from ..core.bigreedy import bigreedy
from .common import Record, Series, timed
from .runner import evaluator_for
from .workloads import anticor, paper_constraint, real_dataset

__all__ = ["Fig89Config", "run_fig89", "render_fig89", "FIG89_PANELS"]

#: Panels reused from Figures 5/6 (subset by default for speed).
FIG89_PANELS = (
    ("Adult (Gender)", {"real": ("Adult", "Gender")}),
    ("Adult (Race)", {"real": ("Adult", "Race")}),
    ("AntiCor_6D", {"anticor": (6, 3)}),
    ("Compas (Gender)", {"real": ("Compas", "Gender")}),
    ("Credit (Job)", {"real": ("Credit", "Job")}),
)


@dataclass
class Fig89Config:
    k: int = 10                     # paper: 20-ish per panel
    factors: tuple = (1.25, 2.5, 5.0, 10.0, 20.0, 40.0)
    anticor_n: int = 2_000
    real_n: int | None = 4_000
    alpha: float = 0.1
    seed: int = 7
    panels: tuple = FIG89_PANELS
    initial_fraction: float = 0.05  # BiGreedy+ m0 = fraction * M
    lam: float = 0.0                # paper sets lam so BiGreedy+ reaches M


def _panel_dataset(spec: dict, config: Fig89Config):
    if "real" in spec:
        name, attribute = spec["real"]
        n = None if name == "Credit" else config.real_n
        return real_dataset(name, attribute, n=n)
    d, C = spec["anticor"]
    return anticor(config.anticor_n, d, C, seed=config.seed)


def run_fig89(config: Fig89Config | None = None) -> dict[str, list[Record]]:
    """Sweep the sample size on each panel for BiGreedy and BiGreedy+."""
    config = config or Fig89Config()
    results: dict[str, list[Record]] = {}
    for label, spec in config.panels:
        dataset = _panel_dataset(spec, config)
        evaluator = evaluator_for(dataset)
        constraint = paper_constraint(dataset, config.k, alpha=config.alpha)
        records: list[Record] = []
        for factor in config.factors:
            m = max(4, int(round(factor * config.k * dataset.dim)))
            solution, ms = timed(
                bigreedy, dataset, constraint, net_size=m, seed=config.seed
            )
            records.append(
                Record(
                    "fig89", label, "BiGreedy", "m", m,
                    mhr=evaluator.evaluate(solution.points).value,
                    time_ms=ms,
                )
            )
            # BiGreedy+ with max size M = m; lam ~ 0 forces it to reach M,
            # matching the paper's protocol for this experiment.
            m0 = max(4, int(round(config.initial_fraction * m)))
            solution, ms = timed(
                bigreedy_plus,
                dataset,
                constraint,
                initial_size=m0,
                max_size=m,
                lam=max(config.lam, 1e-9),
                seed=config.seed,
            )
            records.append(
                Record(
                    "fig89", label, "BiGreedy+", "m", m,
                    mhr=evaluator.evaluate(solution.points).value,
                    time_ms=ms,
                )
            )
        results[label] = records
    return results


def render_fig89(results: dict[str, list[Record]]) -> str:
    parts = []
    for label, records in results.items():
        parts.append(Series(records, "mhr").render(f"Figure 8 — MHR vs m, {label}"))
    for label, records in results.items():
        parts.append(
            Series(records, "time_ms").render(f"Figure 9 — time (ms) vs m, {label}")
        )
    return "\n\n".join(parts)
