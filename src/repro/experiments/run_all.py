"""Run every experiment and write EXPERIMENTS.md.

Usage::

    python -m repro.experiments.run_all [--fast] [--out EXPERIMENTS.md]

``--fast`` shrinks every workload further (a couple of minutes end to
end); the default scaled configuration takes tens of minutes; the paper's
full sizes can be reproduced by editing the per-figure configs.
"""

from __future__ import annotations

import argparse
import sys
import time

from .ablation_constraints import (
    AblationConstraintsConfig,
    render_ablation_constraints,
    run_ablation_constraints,
)
from .common import format_table
from .example22 import run_example22
from .fig3_violations import Fig3Config, render_fig3, run_fig3
from .fig4_twod import Fig4Config, render_fig4, run_fig4
from .fig56_md import Fig56Config, render_fig56, run_fig56
from .fig7_scalability import Fig7Config, render_fig7, run_fig7
from .fig89_samplesize import Fig89Config, render_fig89, run_fig89
from .fig1011_params import Fig1011Config, render_fig1011, run_fig1011
from .shapes import check_all_shapes
from .table2 import render_table2, run_table2

__all__ = ["run_all", "main"]


def _fast_configs() -> dict:
    return {
        "fig3": Fig3Config(
            ks=(10, 14, 18),
            anticor_n=800,
            real_n=2_000,
            panels=(
                ("Adult (Gender)", {"real": ("Adult", "Gender")}),
                ("AntiCor_6D", {"anticor": (6, 3)}),
                ("Credit (Job)", {"real": ("Credit", "Job")}),
            ),
        ),
        "fig4": Fig4Config(
            lawschs_gender_ks=(2, 4, 6),
            lawschs_race_ks=(5, 7, 10),
            anticor_ks=(5, 7, 10),
            anticor_n=600,
            vary_C=(2, 3, 4),
            vary_n=(100, 1_000),
            lawschs_n=8_000,
        ),
        "fig56": Fig56Config(
            default_ks=(10, 14, 20),
            anticor_n=800,
            real_n=2_000,
            panels=(
                ("Adult (Gender)", {"real": ("Adult", "Gender"), "ks": (6, 10, 16)}),
                ("Adult (Race)", {"real": ("Adult", "Race")}),
                ("AntiCor_6D", {"anticor": (6, 3)}),
                ("Compas (Gender)", {"real": ("Compas", "Gender")}),
                ("Credit (Job)", {"real": ("Credit", "Job")}),
            ),
        ),
        "fig7": Fig7Config(
            base_n=800, dims=(2, 4, 6), Cs=(2, 4, 6), ns=(100, 1_000)
        ),
        "fig89": Fig89Config(
            k=8,
            factors=(1.25, 5.0, 10.0, 20.0),
            anticor_n=800,
            real_n=2_000,
            panels=(
                ("Adult (Gender)", {"real": ("Adult", "Gender")}),
                ("AntiCor_6D", {"anticor": (6, 3)}),
            ),
        ),
        "fig1011": Fig1011Config(
            k=8,
            epsilons=(0.04, 0.16, 0.64),
            lambdas=(0.04, 0.16, 0.64),
            anticor_n=800,
            real_n=2_000,
            panels=(
                ("Adult (Gender)", {"real": ("Adult", "Gender")}),
                ("AntiCor_6D", {"anticor": (6, 3)}),
            ),
        ),
        "ablation": AblationConstraintsConfig(
            k=6,
            anticor_n=400,
            real_n=1_500,
            panels=(
                ("Adult (Gender)", {"real": ("Adult", "Gender")}),
                ("AntiCor_6D", {"anticor": (6, 3)}),
            ),
        ),
        "table2_scale": 0.1,
    }


def run_all(*, fast: bool = False, out: str | None = None) -> str:
    """Run every experiment; returns (and optionally writes) the report."""
    configs = _fast_configs() if fast else {}
    sections: list[str] = []
    started = time.time()

    def log(msg: str) -> None:
        print(f"[{time.time() - started:7.1f}s] {msg}", file=sys.stderr, flush=True)

    log("Example 2.2 ...")
    ex = run_example22()
    rows = [
        [
            r.name,
            ",".join(sorted(r.selected)),
            f"{r.mhr:.4f}",
            ",".join(sorted(r.expected_selected)),
            f"{r.expected_mhr:.4f}",
            "MATCH" if r.matches else "MISMATCH",
        ]
        for r in ex
    ]
    sections.append(
        "## Example 2.2 (Table 1)\n\n```\n"
        + format_table(
            ["case", "selected", "mhr", "paper selected", "paper mhr", "status"], rows
        )
        + "\n```"
    )

    log("Table 2 ...")
    t2 = run_table2(scale=configs.get("table2_scale", 0.25))
    sections.append("## Table 2 (dataset statistics)\n\n```\n" + render_table2(t2) + "\n```")

    log("Figure 3 (fairness violations) ...")
    f3 = run_fig3(configs.get("fig3"))
    sections.append("## Figure 3 (fairness violations)\n\n```\n" + render_fig3(f3) + "\n```")

    log("Figure 4 (2-D) ...")
    f4 = run_fig4(configs.get("fig4"))
    sections.append("## Figure 4 (two-dimensional)\n\n```\n" + render_fig4(f4) + "\n```")

    log("Figures 5/6 (multi-dimensional) ...")
    f56 = run_fig56(configs.get("fig56"))
    sections.append("## Figures 5 & 6 (multi-dimensional)\n\n```\n" + render_fig56(f56) + "\n```")

    log("Figure 7 (scalability) ...")
    f7 = run_fig7(configs.get("fig7"))
    sections.append("## Figure 7 (scalability)\n\n```\n" + render_fig7(f7) + "\n```")

    log("Figures 8/9 (sample size) ...")
    f89 = run_fig89(configs.get("fig89"))
    sections.append("## Figures 8 & 9 (sample size)\n\n```\n" + render_fig89(f89) + "\n```")

    log("Figures 10/11 (epsilon/lambda) ...")
    f1011 = run_fig1011(configs.get("fig1011"))
    sections.append(
        "## Figures 10 & 11 (epsilon / lambda)\n\n```\n" + render_fig1011(f1011) + "\n```"
    )

    log("Constraint-family ablation ...")
    ablation_cfg = configs.get("ablation")
    ablation = run_ablation_constraints(ablation_cfg)
    sections.append(
        "## Constraint-family ablation (proportional / balanced / exact)\n\n```\n"
        + render_ablation_constraints(ablation)
        + "\n```"
    )

    log("Shape checks ...")
    shapes = check_all_shapes(
        example22=ex, fig3=f3, fig4=f4, fig56=f56, fig7=f7, fig89=f89
    )
    shape_rows = [[s.name, "PASS" if s.passed else "FAIL", s.detail] for s in shapes]
    sections.append(
        "## Paper-shape checks\n\n```\n"
        + format_table(["check", "status", "detail"], shape_rows)
        + "\n```"
    )

    header = (
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Generated by `python -m repro.experiments.run_all"
        + (" --fast" if fast else "")
        + "`.\n\n"
        "Workloads are scaled down from the paper's sizes (see DESIGN.md,\n"
        "substitution 2); qualitative shapes, not absolute numbers, are the\n"
        "reproduction target. Times are pure-Python milliseconds.\n"
    )
    report = header + "\n" + "\n\n".join(sections) + "\n"
    if out:
        with open(out, "w") as fh:
            fh.write(report)
        log(f"wrote {out}")
    log("done")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smallest workloads")
    parser.add_argument("--out", default=None, help="write the report here")
    args = parser.parse_args(argv)
    report = run_all(fast=args.fast, out=args.out)
    if not args.out:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
