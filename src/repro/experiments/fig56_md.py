"""Figures 5 & 6: multi-dimensional MHRs (Fig. 5) and running time (Fig. 6).

Ten panels, one per (dataset, group attribute):

* Adult by Gender (k = 6..16), Race and G+R (k = 10..20);
* AntiCor_6D (k = 10..20);
* Compas by Gender, isRecid, G+iR (k = 10..20);
* Credit by Job, Housing, WY (k = 10..20).

Algorithms: BiGreedy, BiGreedy+, F-Greedy, G-Greedy, G-DMM, G-HS, G-Sphere
(G-DMM absent on Compas where d = 9 > 7; G-DMM/G-Sphere absent wherever
some group quota is below d).  The black line is the best unconstrained
baseline solution ("Unconstrained").  Expected shape: BiGreedy >=
BiGreedy+ >= adapted baselines on MHR in most panels; BiGreedy+ faster
than BiGreedy; G-Sphere fastest but worst.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import Record, Series, timed
from .runner import evaluator_for, run_fair_solvers
from .workloads import UNFAIR_SOLVERS, anticor, paper_constraint, real_dataset

__all__ = ["Fig56Config", "run_fig56", "render_fig56", "FIG56_PANELS", "FIG56_ALGORITHMS"]

FIG56_ALGORITHMS = (
    "BiGreedy",
    "BiGreedy+",
    "F-Greedy",
    "G-Greedy",
    "G-DMM",
    "G-HS",
    "G-Sphere",
)

#: (label, spec); "real" -> (name, attribute), "anticor" -> (d, C).
FIG56_PANELS = (
    ("Adult (Gender)", {"real": ("Adult", "Gender"), "ks": (6, 8, 10, 12, 14, 16)}),
    ("Adult (Race)", {"real": ("Adult", "Race")}),
    ("Adult (G+R)", {"real": ("Adult", "G+R")}),
    ("AntiCor_6D", {"anticor": (6, 3)}),
    ("Compas (Gender)", {"real": ("Compas", "Gender")}),
    ("Compas (isRecid)", {"real": ("Compas", "isRecid")}),
    ("Compas (G+iR)", {"real": ("Compas", "G+iR")}),
    ("Credit (Job)", {"real": ("Credit", "Job")}),
    ("Credit (Housing)", {"real": ("Credit", "Housing")}),
    ("Credit (WY)", {"real": ("Credit", "WY")}),
)


@dataclass
class Fig56Config:
    """Scaled-down defaults (paper sizes in comments)."""

    default_ks: tuple = (10, 12, 14, 16, 18, 20)
    anticor_n: int = 2_000          # paper: 10,000
    real_n: int | None = 4_000     # paper: full sizes
    alpha: float = 0.1
    seed: int = 7
    panels: tuple = FIG56_PANELS
    algorithms: tuple = FIG56_ALGORITHMS
    include_unconstrained: bool = True


def _panel_dataset(spec: dict, config: Fig56Config):
    if "real" in spec:
        name, attribute = spec["real"]
        n = None if name == "Credit" else config.real_n
        return real_dataset(name, attribute, n=n)
    d, C = spec["anticor"]
    return anticor(config.anticor_n, d, C, seed=config.seed)


def _best_unconstrained(dataset, k: int, evaluator) -> tuple[float, float]:
    """Best MHR over the unconstrained baselines, and total time (ms)."""
    best = 0.0
    total_ms = 0.0
    for solver in UNFAIR_SOLVERS.values():
        try:
            solution, ms = timed(solver, dataset, k)
        except ValueError:
            continue
        total_ms += ms
        best = max(best, evaluator.evaluate(solution.points).value)
    return best, total_ms


def run_fig56(config: Fig56Config | None = None) -> dict[str, list[Record]]:
    """Run all panels; returns records keyed by panel label."""
    config = config or Fig56Config()
    results: dict[str, list[Record]] = {}
    for label, spec in config.panels:
        dataset = _panel_dataset(spec, config)
        evaluator = evaluator_for(dataset)
        ks = spec.get("ks", config.default_ks)
        records: list[Record] = []
        for k in ks:
            constraint = paper_constraint(dataset, k, alpha=config.alpha)
            records.extend(
                run_fair_solvers(
                    "fig56",
                    label,
                    dataset,
                    constraint,
                    config.algorithms,
                    x_name="k",
                    x_value=k,
                    seed=config.seed,
                )
            )
            if config.include_unconstrained:
                best, ms = _best_unconstrained(dataset, k, evaluator)
                records.append(
                    Record(
                        "fig56", label, "Unconstrained", "k", k,
                        mhr=best, time_ms=ms,
                        violations=None,
                    )
                )
        results[label] = records
    return results


def render_fig56(results: dict[str, list[Record]]) -> str:
    parts = []
    for label, records in results.items():
        parts.append(Series(records, "mhr").render(f"Figure 5 — MHR, {label}"))
    for label, records in results.items():
        parts.append(Series(records, "time_ms").render(f"Figure 6 — time (ms), {label}"))
    return "\n\n".join(parts)
