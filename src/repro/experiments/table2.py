"""Table 2: dataset statistics, including per-group skyline sizes.

The reproduction mirrors the table's columns (d, n, C, #skylines where
``#skylines`` is the sum of the per-group skyline sizes used as algorithm
input) for the simulated real datasets and an anti-correlated family.
Paper values are included for side-by-side comparison: the simulated
datasets are tuned so skyline sizes land in the same order of magnitude
(the property the experiments exercise), not to match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.realworld import DATASET_GROUPS
from .common import format_table
from .workloads import anticor, real_dataset

__all__ = ["run_table2", "TABLE2_PAPER", "Table2Row"]

#: Paper-reported #skylines per (dataset, group attribute).
TABLE2_PAPER = {
    ("Lawschs", "Gender"): 19,
    ("Lawschs", "Race"): 42,
    ("Adult", "Gender"): 130,
    ("Adult", "Race"): 206,
    ("Adult", "G+R"): 339,
    ("Compas", "Gender"): 195,
    ("Compas", "isRecid"): 229,
    ("Compas", "G+iR"): 296,
    ("Credit", "Housing"): 120,
    ("Credit", "Job"): 126,
    ("Credit", "WY"): 185,
}


@dataclass
class Table2Row:
    dataset: str
    group: str
    d: int
    n: int
    C: int
    skylines: int
    paper_skylines: int | None


def run_table2(*, scale: float = 1.0, include_synthetic: bool = True) -> list[Table2Row]:
    """Measure the Table 2 statistics.

    Args:
        scale: row-count scale factor (1.0 = the paper's full sizes; the
            benches use smaller scales to stay fast).
        include_synthetic: append an AntiCor_6D row like the paper's first.
    """
    rows: list[Table2Row] = []
    if include_synthetic:
        n = max(100, int(10_000 * scale))
        sky = anticor(n, 6, 3)
        rows.append(
            Table2Row("AntiCor_6D", "sum-quantile", 6, n, 3, sky.n, None)
        )
    full_sizes = {"Lawschs": 65_494, "Adult": 32_561, "Compas": 4_743, "Credit": 1_000}
    for name, attributes in DATASET_GROUPS.items():
        n = max(100, int(full_sizes[name] * scale)) if scale != 1.0 else None
        for attribute in attributes:
            sky = real_dataset(name, attribute, n=n)
            rows.append(
                Table2Row(
                    dataset=name,
                    group=attribute,
                    d=sky.dim,
                    n=n or full_sizes[name],
                    C=sky.num_groups,
                    skylines=sky.n,
                    paper_skylines=TABLE2_PAPER.get((name, attribute)),
                )
            )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    header = ["Dataset", "Group", "d", "n", "C", "#skylines", "paper #skylines"]
    body = [
        [
            r.dataset,
            r.group,
            str(r.d),
            str(r.n),
            str(r.C),
            str(r.skylines),
            "-" if r.paper_skylines is None else str(r.paper_skylines),
        ]
        for r in rows
    ]
    return format_table(header, body)
