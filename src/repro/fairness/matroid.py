"""The fairness matroid (paper Section 2).

Following El Halabi et al. (NeurIPS 2020), the group-fairness constraint
induces a matroid ``M = (D, I)`` with independent sets

    I = { S :  sum_c max(|S ∩ D_c|, l_c) <= k   and   |S ∩ D_c| <= h_c }.

Facts used by the algorithms (tested property-based in the suite):

* every feasible size-``k`` fair subset is independent;
* every independent set with ``|S| < k`` extends to a feasible fair
  size-``k`` set (augmentation), so greedy can always finish;
* maximal independent sets (bases) have exactly ``min(k, sum_c min(h_c,
  |D_c|))`` elements when the constraint is feasible.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_group_labels
from .constraints import FairnessConstraint

__all__ = ["FairnessMatroid"]


class FairnessMatroid:
    """Independence oracle for the group-fairness matroid.

    Designed for greedy algorithms: :meth:`addable_groups` answers "which
    groups may contribute one more element" in O(C) given the current
    per-group counts, so a greedy step is O(C) plus the gain computation.
    """

    def __init__(self, constraint: FairnessConstraint, labels) -> None:
        self.constraint = constraint
        self.labels = check_group_labels(labels, len(labels))
        num_groups = int(self.labels.max()) + 1
        if num_groups > constraint.num_groups:
            raise ValueError(
                f"labels reference {num_groups} groups but the constraint has "
                f"{constraint.num_groups}"
            )

    # ------------------------------------------------------------------ #

    @property
    def k(self) -> int:
        return self.constraint.k

    @property
    def num_groups(self) -> int:
        return self.constraint.num_groups

    def slack(self, counts: np.ndarray) -> int:
        """``k - sum_c max(counts_c, l_c)`` — remaining unreserved capacity."""
        counts = np.asarray(counts, dtype=np.int64)
        return int(self.k - np.maximum(counts, self.constraint.lower).sum())

    def is_independent_counts(self, counts) -> bool:
        """Independence test from per-group counts alone."""
        counts = np.asarray(counts, dtype=np.int64)
        if (counts > self.constraint.upper).any():
            return False
        return self.slack(counts) >= 0

    def is_independent(self, selection) -> bool:
        """Independence test for an index set (must be duplicate-free)."""
        selection = np.asarray(selection, dtype=np.int64)
        if selection.size != np.unique(selection).size:
            return False
        counts = np.bincount(self.labels[selection], minlength=self.num_groups)
        return self.is_independent_counts(counts)

    def addable_groups(self, counts) -> np.ndarray:
        """Groups whose count may grow by one while staying independent.

        Group ``c`` is addable iff ``counts_c < h_c`` and the reservation
        total stays within ``k``.  Adding to a group below its lower bound
        does not consume new reserved capacity (the slot was reserved
        already), hence the two-case test.
        """
        counts = np.asarray(counts, dtype=np.int64)
        slack = self.slack(counts)
        below_upper = counts < self.constraint.upper
        # If counts_c < l_c the increment is absorbed by the reservation;
        # otherwise it needs one unit of slack.
        free_increment = counts < self.constraint.lower
        return np.nonzero(below_upper & (free_increment | (slack >= 1)))[0]

    def can_add(self, counts, group: int) -> bool:
        """May one more element of ``group`` be added?"""
        counts = np.asarray(counts, dtype=np.int64)
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        if counts[group] >= self.constraint.upper[group]:
            return False
        if counts[group] < self.constraint.lower[group]:
            return True
        return self.slack(counts) >= 1

    # ------------------------------------------------------------------ #
    # completion to a feasible fair set
    # ------------------------------------------------------------------ #

    def completion_groups(self, counts) -> list[int]:
        """Greedy order of groups to fill so a partial set reaches size k.

        Returns a list of group ids (with repetition) whose members should
        be added — groups below their lower bound first, then any group
        with spare upper-bound capacity.  Raises if the counts are not
        independent (no completion exists).
        """
        counts = np.asarray(counts, dtype=np.int64).copy()
        if not self.is_independent_counts(counts):
            raise ValueError("counts are not independent; cannot complete")
        order: list[int] = []
        group_sizes = np.bincount(self.labels, minlength=self.num_groups)
        while counts.sum() < self.k:
            deficits = np.nonzero(
                (counts < self.constraint.lower) & (counts < group_sizes)
            )[0]
            if deficits.size:
                c = int(deficits[0])
            else:
                addable = [
                    c
                    for c in self.addable_groups(counts)
                    if counts[c] < group_sizes[c]
                ]
                if not addable:
                    raise ValueError(
                        "constraint infeasible for these group sizes: "
                        f"cannot reach k={self.k} from counts={counts.tolist()}"
                    )
                c = int(addable[0])
            counts[c] += 1
            order.append(c)
        return order
