"""Fairness-violation metric (paper Equation 3).

``err(S) = sum_c max(|S ∩ D_c| - h_c, l_c - |S ∩ D_c|, 0)`` counts how many
members a solution is away from satisfying every group bound; 0 means fair.
Used throughout the Figure 3 experiment to show that unconstrained RMS/HMS
algorithms violate group fairness almost everywhere.
"""

from __future__ import annotations

import numpy as np

from .constraints import FairnessConstraint

__all__ = ["fairness_violations", "violation_breakdown"]


def fairness_violations(constraint: FairnessConstraint, labels, selection) -> int:
    """``err(S)`` of Equation 3 for an index selection."""
    counts = constraint.counts_of(labels, selection)
    over = counts - constraint.upper
    under = constraint.lower - counts
    return int(np.maximum(np.maximum(over, under), 0).sum())


def violation_breakdown(
    constraint: FairnessConstraint, labels, selection
) -> list[dict]:
    """Per-group diagnostic rows: count, bounds, violation.

    Handy for reports and the examples; one dict per group with keys
    ``group``, ``count``, ``lower``, ``upper``, ``violation``.
    """
    counts = constraint.counts_of(labels, selection)
    rows = []
    for c in range(constraint.num_groups):
        over = int(counts[c] - constraint.upper[c])
        under = int(constraint.lower[c] - counts[c])
        rows.append(
            {
                "group": c,
                "count": int(counts[c]),
                "lower": int(constraint.lower[c]),
                "upper": int(constraint.upper[c]),
                "violation": max(over, under, 0),
            }
        )
    return rows
