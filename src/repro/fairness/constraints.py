"""Group fairness constraints (paper Section 2, "Fairness Model").

A constraint assigns each group ``c`` a lower bound ``l_c`` and upper bound
``h_c`` on how many solution members may come from it.  Two standard
constructions (following El Halabi et al., NeurIPS 2020):

* proportional representation:
  ``l_c = floor((1 - alpha) k |D_c| / |D|)``,
  ``h_c = ceil((1 + alpha) k |D_c| / |D|)``;
* balanced representation:
  ``l_c = floor((1 - alpha) k / C)``, ``h_c = ceil((1 + alpha) k / C)``.

The experiments additionally clamp ``l_c`` to at least 1 and ``h_c`` to at
most ``k - C + 1`` (Section 5.1), which we expose as ``clamp=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int

__all__ = ["FairnessConstraint"]


@dataclass(frozen=True)
class FairnessConstraint:
    """Per-group selection bounds for a solution of size ``k``.

    Attributes:
        lower: int64 array of per-group lower bounds ``l_c >= 0``.
        upper: int64 array of per-group upper bounds ``h_c >= l_c``.
        k: target solution size.
    """

    lower: np.ndarray
    upper: np.ndarray
    k: int

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=np.int64).copy()
        upper = np.asarray(self.upper, dtype=np.int64).copy()
        k = check_positive_int(self.k, name="k")
        if lower.ndim != 1 or upper.shape != lower.shape:
            raise ValueError("lower and upper must be 1-D arrays of equal length")
        if lower.shape[0] == 0:
            raise ValueError("need at least one group")
        if (lower < 0).any():
            raise ValueError("lower bounds must be nonnegative")
        if (upper < lower).any():
            raise ValueError("every upper bound must be >= its lower bound")
        lower.setflags(write=False)
        upper.setflags(write=False)
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "k", k)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def proportional(
        cls, k: int, group_sizes, *, alpha: float = 0.1, clamp: bool = True
    ) -> "FairnessConstraint":
        """Proportional-representation bounds (the paper's default).

        With ``clamp=True`` (Section 5.1): ``l_c`` is at least 1 and ``h_c``
        at most ``k - C + 1``.
        """
        k = check_positive_int(k, name="k")
        sizes = np.asarray(group_sizes, dtype=np.float64)
        if sizes.ndim != 1 or (sizes <= 0).any():
            raise ValueError("group_sizes must be a 1-D array of positive sizes")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
        shares = k * sizes / sizes.sum()
        lower = np.floor((1.0 - alpha) * shares).astype(np.int64)
        upper = np.ceil((1.0 + alpha) * shares).astype(np.int64)
        if clamp:
            # Section 5.1: l_c at least 1, h_c at most k - C + 1.  The upper
            # cap is hard (it is what leaves room for one tuple from every
            # other group), so a dominant group's lower bound must yield.
            num_groups = sizes.shape[0]
            lower = np.maximum(lower, 1)
            upper = np.minimum(upper, max(k - num_groups + 1, 1))
            lower = np.minimum(lower, upper)
        return cls(lower=lower, upper=upper, k=k)

    @classmethod
    def balanced(
        cls, k: int, num_groups: int, *, alpha: float = 0.1, clamp: bool = True
    ) -> "FairnessConstraint":
        """Balanced-representation bounds: every group gets ~``k / C``."""
        k = check_positive_int(k, name="k")
        num_groups = check_positive_int(num_groups, name="num_groups")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
        share = k / num_groups
        lower = np.full(num_groups, math.floor((1.0 - alpha) * share), dtype=np.int64)
        upper = np.full(num_groups, math.ceil((1.0 + alpha) * share), dtype=np.int64)
        if clamp:
            lower = np.maximum(lower, 1)
            upper = np.minimum(upper, max(k - num_groups + 1, 1))
            lower = np.minimum(lower, upper)
        return cls(lower=lower, upper=upper, k=k)

    @classmethod
    def exact(cls, counts) -> "FairnessConstraint":
        """Fixed per-group quota (``l_c = h_c``), e.g. one per gender."""
        counts = np.asarray(counts, dtype=np.int64)
        return cls(lower=counts, upper=counts, k=int(counts.sum()))

    @classmethod
    def unconstrained(cls, k: int, num_groups: int) -> "FairnessConstraint":
        """Vacuous bounds turning FairHMS into vanilla HMS."""
        k = check_positive_int(k, name="k")
        num_groups = check_positive_int(num_groups, name="num_groups")
        return cls(
            lower=np.zeros(num_groups, dtype=np.int64),
            upper=np.full(num_groups, k, dtype=np.int64),
            k=k,
        )

    def capped_by_availability(self, group_sizes) -> "FairnessConstraint":
        """Bounds achievable on a dataset with these per-group sizes.

        No algorithm can select tuples a group does not have (e.g. after
        skyline extraction), so lower bounds are capped by availability;
        upper bounds rise where needed to stay >= the lower bounds.  This
        is the paper's Section 5.1 recipe as applied by the experiment
        harness and the serving layer.
        """
        sizes = np.asarray(group_sizes, dtype=np.int64)
        if sizes.shape != self.lower.shape:
            raise ValueError("group_sizes must have one entry per group")
        lower = np.minimum(self.lower, sizes)
        upper = np.maximum(self.upper, lower)
        return FairnessConstraint(lower=lower, upper=upper, k=self.k)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_groups(self) -> int:
        return self.lower.shape[0]

    def is_feasible_for(self, group_sizes) -> bool:
        """Can any size-``k`` subset of a dataset with these group sizes
        satisfy the constraint?"""
        sizes = np.asarray(group_sizes, dtype=np.int64)
        if sizes.shape != self.lower.shape:
            return False
        if (sizes < self.lower).any():
            return False
        capacity = np.minimum(self.upper, sizes)
        return int(self.lower.sum()) <= self.k <= int(capacity.sum())

    def counts_of(self, labels, selection) -> np.ndarray:
        """Per-group counts ``|S ∩ D_c|`` of a selection (index array)."""
        labels = np.asarray(labels, dtype=np.int64)
        selection = np.asarray(selection, dtype=np.int64)
        return np.bincount(labels[selection], minlength=self.num_groups)

    def satisfied_by(self, labels, selection) -> bool:
        """True iff the selection has size ``k`` and meets every bound."""
        selection = np.asarray(selection, dtype=np.int64)
        if selection.shape[0] != self.k:
            return False
        counts = self.counts_of(labels, selection)
        return bool(
            (counts >= self.lower).all() and (counts <= self.upper).all()
        )

    def describe(self, group_names=None) -> str:
        """Human-readable rendering, e.g. ``Female:1..3, Male:2..4``."""
        parts = []
        for c in range(self.num_groups):
            name = group_names[c] if group_names else f"g{c}"
            parts.append(f"{name}:{int(self.lower[c])}..{int(self.upper[c])}")
        return ", ".join(parts)
