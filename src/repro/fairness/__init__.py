"""Fairness substrate: constraints, the fairness matroid, and metrics."""

from .constraints import FairnessConstraint
from .matroid import FairnessMatroid
from .metrics import fairness_violations, violation_breakdown

__all__ = [
    "FairnessConstraint",
    "FairnessMatroid",
    "fairness_violations",
    "violation_breakdown",
]
