"""Per-tenant SLO tracking: latency/availability attainment + budget burn.

Each dataset is a tenant.  :class:`SloObjectives` declares the targets
(default: p99 latency <= 100 ms, error rate <= 0.1%) — either the
defaults or an ``[slo]`` section in the server config.  :class:`SloTracker`
keeps a count-based rolling window of ``(latency, ok)`` samples per
dataset and derives:

* **latency attainment** — the observed objective-quantile latency over
  the window vs. the target, plus the fraction of requests under target;
* **availability** — the windowed error rate vs. the objective;
* **error-budget burn** — observed error rate divided by the allowed
  rate (1.0 = burning exactly the budget, >1.0 = out of SLO).

A *count*-based window (last N admitted requests) rather than a wall
-clock one keeps the math deterministic under test and bench load and
means an idle tenant's status freezes instead of decaying to vacuous
attainment.  Shed requests (429) never enter the window: admission
control refusing work by design is not an SLO violation by the work
that was admitted (documented in ``docs/OBSERVABILITY.md``).

The window is a few hundred samples, so snapshots sort raw latencies
for an *exact* quantile — no histogram bucketing error on the number
operators alert on.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, fields

__all__ = ["SloObjectives", "SloTracker"]


@dataclass(frozen=True)
class SloObjectives:
    """Declared per-tenant objectives; immutable once parsed.

    ``latency_quantile``/``latency_target_s``: the latency objective
    ("p99 <= 100 ms" is ``0.99`` / ``0.1``).  ``error_rate``: allowed
    fraction of failed (5xx) requests.  ``window``: rolling-window size
    in requests per dataset.
    """

    latency_quantile: float = 0.99
    latency_target_s: float = 0.1
    error_rate: float = 0.001
    window: int = 512

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_quantile < 1.0:
            raise ValueError(
                f"latency_quantile must be in (0, 1), got {self.latency_quantile!r}"
            )
        if not self.latency_target_s > 0.0:
            raise ValueError(
                f"latency_target_s must be positive, got {self.latency_target_s!r}"
            )
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError(
                f"error_rate must be in [0, 1), got {self.error_rate!r}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window!r}")

    @classmethod
    def from_dict(cls, raw: dict) -> "SloObjectives":
        """Build from a parsed ``[slo]`` config section; rejects unknowns."""
        if not isinstance(raw, dict):
            raise ValueError(f"[slo] section must be a table, got {type(raw).__name__}")
        valid = {f.name: f.type for f in fields(cls)}
        unknown = set(raw) - set(valid)
        if unknown:
            raise ValueError(
                f"unknown [slo] keys: {sorted(unknown)}; valid: {sorted(valid)}"
            )
        kwargs = {}
        for name, value in raw.items():
            if name == "window":
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ValueError(f"[slo] window must be an integer, got {value!r}")
                kwargs[name] = value
            else:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(f"[slo] {name} must be a number, got {value!r}")
                kwargs[name] = float(value)
        return cls(**kwargs)

    def to_dict(self) -> dict:
        return {
            "latency_quantile": self.latency_quantile,
            "latency_target_s": self.latency_target_s,
            "error_rate": self.error_rate,
            "window": self.window,
        }


class SloTracker:
    """Rolling-window SLO attainment per dataset, thread-safe.

    ``record(dataset, seconds, ok=...)`` appends one admitted request's
    outcome; :meth:`snapshot` derives attainment and budget burn for
    every dataset seen.  One plain lock guards the windows — recording
    is an O(1) deque append, far below request cost.
    """

    def __init__(self, objectives: SloObjectives | None = None) -> None:
        self.objectives = objectives if objectives is not None else SloObjectives()
        self._lock = threading.Lock()
        self._windows: dict[str, deque] = {}

    def record(self, dataset: str, seconds: float, *, ok: bool = True) -> None:
        """One admitted request: end-to-end latency + success flag."""
        with self._lock:
            window = self._windows.get(dataset)
            if window is None:
                window = self._windows.setdefault(
                    dataset, deque(maxlen=self.objectives.window)
                )
            window.append((max(0.0, float(seconds)), bool(ok)))

    def _status(self, samples: list) -> dict:
        obj = self.objectives
        n = len(samples)
        latencies = sorted(s for s, _ in samples)
        errors = sum(1 for _, ok in samples if not ok)
        # Nearest-rank quantile over the raw window — exact, not bucketed.
        rank = min(n, max(1, math.ceil(obj.latency_quantile * n)))
        observed = latencies[rank - 1]
        ok_rate = sum(1 for s in latencies if s <= obj.latency_target_s) / n
        error_rate = errors / n
        if obj.error_rate > 0.0:
            burn = error_rate / obj.error_rate
        else:
            # A zero-error objective has no budget to burn; undefined
            # once an error lands (attainment already says "violated").
            burn = 0.0 if errors == 0 else None
        latency_attained = observed <= obj.latency_target_s
        availability_attained = error_rate <= obj.error_rate
        return {
            "window": n,
            "latency_observed_s": round(observed, 6),
            "latency_ok_rate": round(ok_rate, 6),
            "latency_attained": latency_attained,
            "errors": errors,
            "error_rate": round(error_rate, 6),
            "error_budget_burn": None if burn is None else round(burn, 4),
            "availability_attained": availability_attained,
            "attained": latency_attained and availability_attained,
        }

    def snapshot(self) -> dict:
        """JSON-ready: objectives + per-dataset attainment blocks."""
        with self._lock:
            windows = {name: list(win) for name, win in self._windows.items()}
        datasets = {
            name: self._status(samples)
            for name, samples in sorted(windows.items())
            if samples
        }
        return {"objectives": self.objectives.to_dict(), "datasets": datasets}
