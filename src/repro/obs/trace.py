"""Request tracing: spans, traces, context propagation, and the ring buffer.

One :class:`Trace` explains one request end-to-end.  The HTTP server
opens a trace per ``/v1/query`` / ``/v1/write`` (honoring a
caller-supplied ``x-repro-trace`` id), the gateway adds queue-wait and
coalescing annotations, the registry adds build/spill-load/evict spans,
and the solver index turns its per-phase timings into child spans — so a
slow answer decomposes into *which stage* was slow instead of a single
opaque latency sample.

Design constraints, in order:

* **Lock-cheap.**  A span is a plain ``__slots__`` object mutated only
  by the thread currently executing that part of the request (the
  gateway serializes per-dataset work, and the server only touches a
  trace after its future resolves), so spans themselves carry **no
  lock**.  The only synchronized structure is the :class:`TraceStore`
  ring buffer, touched once per *completed* request.
* **Zero cost when off.**  Stage code asks :func:`current_span` /
  :func:`child_of_current`; with no active trace those return ``None`` /
  :data:`NULL_SPAN` without allocating, so the solve hot path pays one
  contextvar read and nothing else.
* **Bounded.**  A trace caps its span count (runaway instrumentation
  degrades to dropped spans, tagged, never unbounded memory) and the
  store is a fixed-size ring plus a bounded slowest list.

Clocks: span ``start``/``stop`` are ``time.perf_counter()`` readings
(monotonic; what every latency number in this repo uses); each trace
additionally records one wall-clock anchor so exported traces can be
placed in real time.
"""

from __future__ import annotations

import contextlib
import logging
import secrets
import threading
import time
from collections import deque

__all__ = [
    "NULL_SPAN",
    "Span",
    "Trace",
    "TraceStore",
    "child_of_current",
    "current_span",
    "current_trace",
    "format_trace",
    "use_trace",
]

logger = logging.getLogger("repro.obs")

#: Hard cap on spans per trace; past it, children become NULL_SPAN and
#: the root is tagged ``spans_dropped``.
MAX_SPANS_PER_TRACE = 512

#: Caller-supplied trace ids are clamped to this length and must be
#: printable ASCII without whitespace (they round-trip through an HTTP
#: header and the exposition endpoints).
_MAX_TRACE_ID = 128


class _NullSpan:
    """The no-op span: every mutator is a cheap pass, children are itself.

    Returned wherever tracing is off or a trace hit its span cap, so
    instrumented code never branches on "is tracing on" — it just talks
    to a span that happens to discard everything.
    """

    __slots__ = ()

    def child(self, name, *, start=None, **tags):  # noqa: ARG002
        return self

    def annotate(self, **tags):  # noqa: ARG002
        return self

    def end(self, at=None):  # noqa: ARG002
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def __repr__(self):  # pragma: no cover - cosmetic
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class Span:
    """One timed stage of a trace: name, tags, children, monotonic bounds.

    Mutated only by the thread executing the stage (see module
    docstring); ``end()`` is idempotent.  Usable as a context manager —
    ``with parent.child("build") as sp:`` ends the span on exit.
    """

    __slots__ = ("name", "start", "stop", "tags", "children", "_trace")

    def __init__(self, name: str, *, trace: "Trace", start=None, tags=None) -> None:
        self.name = str(name)
        self.start = time.perf_counter() if start is None else float(start)
        self.stop: float | None = None
        self.tags: dict = dict(tags) if tags else {}
        self.children: list[Span] = []
        self._trace = trace

    def child(self, name: str, *, start=None, **tags) -> "Span | _NullSpan":
        """Open a child span (ended by the caller or a ``with`` block)."""
        trace = self._trace
        if trace.spans >= MAX_SPANS_PER_TRACE:
            trace.root.tags["spans_dropped"] = (
                trace.root.tags.get("spans_dropped", 0) + 1
            )
            return NULL_SPAN
        trace.spans += 1
        span = Span(name, trace=trace, start=start, tags=tags or None)
        self.children.append(span)
        return span

    def annotate(self, **tags) -> "Span":
        self.tags.update(tags)
        return self

    def end(self, at=None) -> "Span":
        if self.stop is None:
            self.stop = time.perf_counter() if at is None else float(at)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and "error" not in self.tags:
            self.tags["error"] = exc_type.__name__
        self.end()
        return False

    @property
    def duration(self) -> float:
        stop = self.stop if self.stop is not None else time.perf_counter()
        return max(0.0, stop - self.start)

    def to_dict(self, origin: float) -> dict:
        """JSON-ready view; times become offsets from ``origin`` seconds."""
        out = {
            "name": self.name,
            "start_s": round(self.start - origin, 6),
            "duration_s": round(self.duration, 6),
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.children:
            out["children"] = [c.to_dict(origin) for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration * 1e3:.2f}ms)"


def _clean_trace_id(trace_id) -> str | None:
    """A caller-supplied id, validated; ``None`` when unusable."""
    if not isinstance(trace_id, str):
        return None
    trace_id = trace_id.strip()
    if not trace_id or len(trace_id) > _MAX_TRACE_ID:
        return None
    if not all(33 <= ord(c) <= 126 for c in trace_id):
        return None
    return trace_id


class Trace:
    """One request's span tree plus its identity and wall-clock anchor.

    Args:
        name: root span name (e.g. ``"POST /v1/query"``).
        trace_id: caller-supplied id (the ``x-repro-trace`` header);
            invalid or missing ids are replaced by a fresh random one.
        tags: initial root-span tags.
    """

    __slots__ = ("trace_id", "root", "wall_start", "spans")

    def __init__(self, name: str = "request", *, trace_id=None, **tags) -> None:
        self.trace_id = _clean_trace_id(trace_id) or secrets.token_hex(8)
        self.wall_start = time.time()
        self.spans = 1
        self.root = Span(name, trace=self, tags=tags or None)

    # Delegates so holders of a Trace never reach into .root for the
    # common operations (the gateway and registry only ever need these).
    def child(self, name: str, *, start=None, **tags):
        return self.root.child(name, start=start, **tags)

    def annotate(self, **tags) -> "Trace":
        self.root.annotate(**tags)
        return self

    def finish(self, at=None) -> "Trace":
        self.root.end(at)
        return self

    @property
    def duration(self) -> float:
        return self.root.duration

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "start_unix": round(self.wall_start, 6),
            "duration_s": round(self.duration, 6),
            "spans": self.spans,
            "root": self.root.to_dict(self.root.start),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace({self.trace_id!r}, {self.root.name!r}, "
            f"{self.duration * 1e3:.2f}ms, spans={self.spans})"
        )


# --------------------------------------------------------------------- #
# context propagation
# --------------------------------------------------------------------- #

# Thread/task-local active trace.  Each thread starts with None; the
# gateway worker sets it around exactly the stretch of work belonging to
# one request, so downstream code (registry builds, solver phases) finds
# the right trace without plumbing arguments through every layer.
_ACTIVE = threading.local()


def current_trace() -> Trace | None:
    """The trace the calling thread is currently working for, if any."""
    return getattr(_ACTIVE, "trace", None)


def current_span() -> Span | None:
    """The active trace's root span, or ``None`` (tracing off / no trace)."""
    trace = getattr(_ACTIVE, "trace", None)
    return None if trace is None else trace.root


@contextlib.contextmanager
def use_trace(trace: Trace | None):
    """Make ``trace`` the calling thread's active trace for the block.

    Always sets (even to ``None``): a worker thread reused across
    requests must never leak one request's trace into the next untraced
    op.  Restores the previous value on exit, so nesting works.
    """
    previous = getattr(_ACTIVE, "trace", None)
    _ACTIVE.trace = trace
    try:
        yield trace
    finally:
        _ACTIVE.trace = previous


def child_of_current(name: str, *, start=None, **tags):
    """A child span under the active trace, or :data:`NULL_SPAN`.

    The annotation entry point for code that may or may not run inside a
    request (registry builds, spill loads, evictions): with no active
    trace this is one attribute read and no allocation.
    """
    trace = getattr(_ACTIVE, "trace", None)
    if trace is None:
        return NULL_SPAN
    return trace.root.child(name, start=start, **tags)


# --------------------------------------------------------------------- #
# the ring buffer
# --------------------------------------------------------------------- #


class TraceStore:
    """Bounded store of completed traces: recent ring + slowest list.

    Traces are serialized to plain dicts at :meth:`record` time (they
    are immutable afterwards), so readers never share mutable state with
    request threads.  A trace slower than ``slow_threshold`` seconds is
    additionally counted and logged through the ``repro.obs`` logger —
    the slow-trace log an operator tails.

    Args:
        capacity: recent-ring size (completed traces kept, FIFO).
        slow_threshold: seconds past which a trace is logged as slow.
        keep_slowest: how many all-time-slowest traces are retained.
    """

    def __init__(
        self,
        *,
        capacity: int = 256,
        slow_threshold: float = 1.0,
        keep_slowest: int = 32,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if keep_slowest < 1:
            raise ValueError(f"keep_slowest must be >= 1, got {keep_slowest}")
        if not slow_threshold > 0.0:
            raise ValueError(
                f"slow_threshold must be positive, got {slow_threshold}"
            )
        self.capacity = int(capacity)
        self.slow_threshold = float(slow_threshold)
        self.keep_slowest = int(keep_slowest)
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=self.capacity)
        self._slowest: list[dict] = []  # sorted by duration, descending
        self._recorded = 0
        self._slow = 0

    def record(self, trace: Trace) -> dict:
        """Finish (if needed) and store one trace; returns its dict form."""
        trace.finish()
        entry = trace.to_dict()
        duration = entry["duration_s"]
        slow = duration >= self.slow_threshold
        with self._lock:
            self._recorded += 1
            self._recent.append(entry)
            if (
                len(self._slowest) < self.keep_slowest
                or duration > self._slowest[-1]["duration_s"]
            ):
                self._slowest.append(entry)
                self._slowest.sort(key=lambda t: t["duration_s"], reverse=True)
                del self._slowest[self.keep_slowest :]
            if slow:
                self._slow += 1
        if slow:
            logger.warning(
                "slow trace %s (%s): %.1fms >= %.1fms threshold",
                entry["trace_id"],
                entry["root"]["name"],
                duration * 1e3,
                self.slow_threshold * 1e3,
            )
        return entry

    def recent(self, limit: int | None = None) -> list[dict]:
        """Most recently completed traces, newest first."""
        with self._lock:
            entries = list(self._recent)
        entries.reverse()
        return entries if limit is None else entries[: max(0, int(limit))]

    def slowest(self, limit: int | None = None) -> list[dict]:
        """The slowest recorded traces, slowest first."""
        with self._lock:
            entries = list(self._slowest)
        return entries if limit is None else entries[: max(0, int(limit))]

    def stats(self) -> dict:
        """JSON-ready store state (recorded/slow counts, configuration)."""
        with self._lock:
            return {
                "recorded": self._recorded,
                "slow": self._slow,
                "buffered": len(self._recent),
                "capacity": self.capacity,
                "slow_threshold_s": self.slow_threshold,
            }

    def snapshot(self, *, limit: int = 20) -> dict:
        """The ``GET /v1/traces`` payload: recent + slowest + stats."""
        return {
            "recent": self.recent(limit),
            "slowest": self.slowest(limit),
            "stats": self.stats(),
        }


# --------------------------------------------------------------------- #
# rendering (the ``repro trace`` CLI)
# --------------------------------------------------------------------- #


def _format_tags(tags: dict) -> str:
    return " ".join(f"{k}={tags[k]}" for k in sorted(tags))


def _format_span(span: dict, *, depth: int, lines: list[str]) -> None:
    pad = "  " * depth
    ms = span["duration_s"] * 1e3
    at = span["start_s"] * 1e3
    tags = span.get("tags")
    suffix = f"  [{_format_tags(tags)}]" if tags else ""
    lines.append(f"{pad}{span['name']:<24s} +{at:8.2f}ms  {ms:9.2f}ms{suffix}")
    for child in span.get("children", ()):
        _format_span(child, depth=depth + 1, lines=lines)


def format_trace(entry: dict) -> str:
    """Pretty-print one serialized trace as an indented span tree."""
    root = entry["root"]
    lines = [
        f"trace {entry['trace_id']}  {root['name']}  "
        f"{entry['duration_s'] * 1e3:.2f}ms  ({entry['spans']} spans)"
    ]
    _format_span(root, depth=1, lines=lines)
    return "\n".join(lines)
