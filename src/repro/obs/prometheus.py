"""Prometheus text exposition: renderer, parser, and format validator.

:func:`render_prometheus` turns one consistent
:meth:`~repro.service.metrics.ServiceMetrics.exposition_data` snapshot
(plus the server's gauges, SLO status, process stats, and trace-store
counters) into the Prometheus text exposition format (version 0.0.4):

* every per-dataset counter becomes ``repro_<name>_total{dataset=...}``
  (plus a ``scenario`` label when the metrics sink carries one);
* every latency histogram becomes cumulative
  ``repro_*_seconds_bucket{le=...}`` / ``_sum`` / ``_count`` series
  straight from the log-scaled buckets — no resampling;
* derived quantiles (via the shared
  :func:`~repro.service.metrics.merge_quantile`) and server state
  become gauges.

:func:`parse_prometheus` / :func:`validate_exposition` are the other
half: a small strict parser used by the tests and the CI perf gate to
prove the endpoint emits what a real scraper would accept — TYPE-
declared families, grouped samples, cumulative monotone buckets, and a
``+Inf`` bucket equal to ``_count``.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "PrometheusRenderer",
    "parse_prometheus",
    "render_prometheus",
    "validate_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels.items())
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


def _format_le(edge: float) -> str:
    """Bucket boundary label — stable shortest form (e.g. ``0.000128``)."""
    return format(float(edge), ".12g")


class PrometheusRenderer:
    """Accumulates metric families, renders grouped exposition text.

    Samples are grouped per family at render time (the exposition format
    requires all lines of a metric in one block), with ``# HELP`` and
    ``# TYPE`` emitted once per family in first-use order.  Re-declaring
    a family with a different type is a programming error and raises.
    """

    def __init__(self, *, namespace: str = "repro") -> None:
        if namespace and not _NAME_RE.match(namespace):
            raise ValueError(f"invalid metric namespace {namespace!r}")
        self._namespace = namespace
        self._families: dict[str, dict] = {}

    def _family(self, name: str, mtype: str, help_text: str) -> dict:
        full = f"{self._namespace}_{name}" if self._namespace else name
        if not _NAME_RE.match(full):
            raise ValueError(f"invalid metric name {full!r}")
        family = self._families.get(full)
        if family is None:
            family = self._families.setdefault(
                full,
                {"name": full, "type": mtype, "help": help_text or full, "samples": []},
            )
        elif family["type"] != mtype:
            raise ValueError(
                f"metric {full} declared as {family['type']}, re-used as {mtype}"
            )
        return family

    def counter(self, name: str, value, labels=None, *, help: str = "") -> None:
        family = self._family(name, "counter", help)
        family["samples"].append(
            f"{family['name']}{_format_labels(labels)} {_format_value(value)}"
        )

    def gauge(self, name: str, value, labels=None, *, help: str = "") -> None:
        family = self._family(name, "gauge", help)
        family["samples"].append(
            f"{family['name']}{_format_labels(labels)} {_format_value(value)}"
        )

    def histogram(self, name: str, export: dict, labels=None, *, help: str = "") -> None:
        """One histogram series from a :meth:`LatencyHistogram.export` dict."""
        family = self._family(name, "histogram", help)
        full = family["name"]
        labels = dict(labels) if labels else {}
        edges = export["edges"]
        counts = export["counts"]
        cumulative = 0
        for edge, count in zip(edges, counts):
            cumulative += count
            bucket_labels = {**labels, "le": _format_le(edge)}
            family["samples"].append(
                f"{full}_bucket{_format_labels(bucket_labels)} {cumulative}"
            )
        cumulative += counts[len(edges)]  # open-ended overflow bucket
        family["samples"].append(
            f"{full}_bucket{_format_labels({**labels, 'le': '+Inf'})} {cumulative}"
        )
        family["samples"].append(
            f"{full}_sum{_format_labels(labels)} {_format_value(float(export['total']))}"
        )
        family["samples"].append(
            f"{full}_count{_format_labels(labels)} {export['count']}"
        )

    def render(self) -> str:
        lines: list[str] = []
        for family in self._families.values():
            lines.append(f"# HELP {family['name']} {family['help']}")
            lines.append(f"# TYPE {family['name']} {family['type']}")
            lines.extend(family["samples"])
        return "\n".join(lines) + "\n"


_COUNTER_HELP = {
    "requests": "Requests submitted to the gateway.",
    "solves": "Actual solver runs (coalesced peers share one).",
    "coalesced": "Requests answered by a solve they shared.",
    "multi_shared": "Requests served from a shared multi-k prefix solve.",
    "updates": "Write operations applied.",
    "shed": "Requests refused by admission control (429).",
    "errors": "Requests that failed with an error.",
    "builds": "Dataset index builds.",
    "evictions": "Dataset indexes evicted from the registry.",
    "cache_clears": "Pinned live indexes reclaimed in place.",
    "spills": "Index snapshots written on eviction.",
    "spill_loads": "Indexes reloaded from a spill snapshot.",
    "wal_appends": "Live writes made durable in the write-ahead log.",
    "wal_replays": "WAL records re-applied during index recovery.",
    "fence_violations": "Solves retired because a write fenced them.",
    "warmups": "Speculative warm-up primes.",
}


def render_prometheus(
    metrics=None,
    *,
    gauges: dict | None = None,
    slo: dict | None = None,
    process: dict | None = None,
    traces: dict | None = None,
    plans: list | None = None,
    namespace: str = "repro",
) -> str:
    """Render the full exposition for one scrape.

    Args:
        metrics: a :class:`~repro.service.metrics.ServiceMetrics` sink
            (counters + histograms + derived quantile gauges), optional.
        gauges: flat ``name -> number`` server gauges (inflight, registry
            bytes, warm-up backlog, ...); ``None`` values are skipped.
        slo: a :meth:`SloTracker.snapshot` dict -> per-dataset SLO gauges.
        process: a :func:`process_stats` dict -> ``repro_process_*`` gauges.
        traces: a :meth:`TraceStore.stats` dict -> trace-store series.
        plans: a :meth:`Planner.counters_export` list -> the
            ``repro_plan_total{algorithm,reason}`` decision counter.
    """
    r = PrometheusRenderer(namespace=namespace)
    if metrics is not None:
        data = metrics.exposition_data()
        scenario = data.get("scenario")
        base = {"scenario": scenario} if scenario else {}
        for dataset, block in sorted(data["datasets"].items()):
            labels = {"dataset": dataset, **base}
            for cname, value in block["counters"].items():
                r.counter(
                    f"{cname}_total",
                    value,
                    labels,
                    help=_COUNTER_HELP.get(cname, f"ServiceMetrics counter {cname}."),
                )
            r.histogram(
                "request_latency_seconds",
                block["request_latency"],
                labels,
                help="End-to-end request latency (enqueue to result).",
            )
            r.histogram(
                "solve_latency_seconds",
                block["solve_latency"],
                labels,
                help="Wall time of actual solver runs.",
            )
            for phase, export in sorted(block["phases"].items()):
                r.histogram(
                    "solve_phase_seconds",
                    export,
                    {**labels, "phase": phase},
                    help="Solver-internal phase timings.",
                )
        r.counter(
            "gateway_batches_total",
            data["batches"],
            base,
            help="Gateway dispatch cycles.",
        )
        r.counter(
            "gateway_batched_requests_total",
            data["batched_requests"],
            base,
            help="Requests covered by gateway dispatch cycles.",
        )
        # Derived cross-dataset quantiles through the one shared
        # merge_quantile path (same numbers solve_quantile serves).
        for q, qname in ((0.5, "p50"), (0.99, "p99")):
            solve_q = metrics.solve_quantile(q)
            if solve_q is not None:
                r.gauge(
                    f"solve_latency_{qname}_seconds",
                    solve_q,
                    base,
                    help=f"Merged cross-dataset solve-latency {qname}.",
                )
            request_q = metrics.request_quantile(q)
            if request_q is not None:
                r.gauge(
                    f"request_latency_{qname}_seconds",
                    request_q,
                    base,
                    help=f"Merged cross-dataset request-latency {qname}.",
                )
    if gauges:
        for name, value in gauges.items():
            if value is None:
                continue
            r.gauge(name, value, help=f"Server gauge {name}.")
    if slo:
        objectives = slo.get("objectives", {})
        for key, value in sorted(objectives.items()):
            r.gauge(
                f"slo_objective_{key}",
                value,
                help=f"Configured SLO objective {key}.",
            )
        for dataset, status in sorted(slo.get("datasets", {}).items()):
            labels = {"dataset": dataset}
            r.gauge(
                "slo_window_requests",
                status["window"],
                labels,
                help="Requests in the rolling SLO window.",
            )
            r.gauge(
                "slo_latency_observed_seconds",
                status["latency_observed_s"],
                labels,
                help="Observed objective-quantile latency over the window.",
            )
            r.gauge(
                "slo_latency_ok_ratio",
                status["latency_ok_rate"],
                labels,
                help="Fraction of windowed requests under the latency target.",
            )
            r.gauge(
                "slo_error_ratio",
                status["error_rate"],
                labels,
                help="Windowed error rate.",
            )
            if status.get("error_budget_burn") is not None:
                r.gauge(
                    "slo_error_budget_burn",
                    status["error_budget_burn"],
                    labels,
                    help="Observed error rate over the allowed rate (1.0 = at budget).",
                )
            r.gauge(
                "slo_attained",
                status["attained"],
                labels,
                help="1 when both latency and availability objectives hold.",
            )
    if plans:
        for row in plans:
            r.counter(
                "plan_total",
                row["count"],
                {"algorithm": row["algorithm"], "reason": row["reason"]},
                help="Planner dispatch decisions by algorithm and reason.",
            )
    if process:
        renames = {
            "uptime_s": "uptime_seconds",
            "max_rss_bytes": "max_rss_bytes",
        }
        for key, value in process.items():
            if value is None:
                continue
            r.gauge(
                f"process_{renames.get(key, key)}",
                value,
                help=f"Process gauge {key}.",
            )
    if traces:
        r.counter(
            "traces_recorded_total",
            traces["recorded"],
            help="Completed traces recorded to the ring buffer.",
        )
        r.counter(
            "traces_slow_total",
            traces["slow"],
            help="Traces that crossed the slow-trace threshold.",
        )
        r.gauge(
            "traces_buffered",
            traces["buffered"],
            help="Traces currently held in the recent ring.",
        )
    return r.render()


# --------------------------------------------------------------------- #
# parsing + validation (tests and the CI perf gate)
# --------------------------------------------------------------------- #


def _parse_labels(raw: str, lineno: int) -> dict:
    labels: dict[str, str] = {}
    i, n = 0, len(raw)
    while i < n:
        match = re.match(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"', raw[i:])
        if not match:
            raise ValueError(f"line {lineno}: bad label syntax in {{{raw}}}")
        key = match.group(1)
        i += match.end()
        value_chars: list[str] = []
        while True:
            if i >= n:
                raise ValueError(f"line {lineno}: unterminated label value")
            ch = raw[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise ValueError(f"line {lineno}: dangling escape")
                nxt = raw[i + 1]
                value_chars.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                )
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                value_chars.append(ch)
                i += 1
        if key in labels:
            raise ValueError(f"line {lineno}: duplicate label {key!r}")
        labels[key] = "".join(value_chars)
        rest = raw[i:].lstrip()
        if rest.startswith(","):
            i = n - len(rest) + 1
        elif rest:
            raise ValueError(f"line {lineno}: junk after label value: {rest!r}")
        else:
            break
    return labels


def _family_of(name: str, types: dict) -> str:
    """Map a sample name to its family (histogram samples use suffixes)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{family: {type, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``
    tuples.  Raises :class:`ValueError` on any syntax error — this is a
    strict parser for validating our own output, not a lenient scraper.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            if not parts or not _NAME_RE.match(parts[0]):
                raise ValueError(f"line {lineno}: bad HELP line")
            helps[parts[0]] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2 or not _NAME_RE.match(parts[0]):
                raise ValueError(f"line {lineno}: bad TYPE line")
            name, mtype = parts
            if mtype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {mtype!r}")
            if name in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = mtype
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        labels = (
            _parse_labels(match.group("labels"), lineno)
            if match.group("labels") is not None
            else {}
        )
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            ) from None
        samples.append((match.group("name"), labels, value))

    families: dict[str, dict] = {}
    for name, mtype in types.items():
        families[name] = {"type": mtype, "help": helps.get(name, ""), "samples": []}
    for name, labels, value in samples:
        family = _family_of(name, types)
        if family not in families:
            families[family] = {"type": None, "help": helps.get(family, ""), "samples": []}
        families[family]["samples"].append((name, labels, value))
    return families


def _series_key(labels: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def validate_exposition(text: str) -> dict:
    """Parse *and* semantically validate exposition text; returns families.

    Beyond syntax, checks what a real scraper would enforce:

    * every sample belongs to a ``# TYPE``-declared family;
    * counters are finite, non-negative, and named ``*_total``;
    * each histogram series has monotone non-decreasing cumulative
      buckets, a ``+Inf`` bucket, and ``+Inf`` == ``_count``;
    * histogram ``_sum``/``_count`` present per series.
    """
    families = parse_prometheus(text)
    for family, info in families.items():
        if info["type"] is None:
            raise ValueError(f"family {family} has samples but no # TYPE line")
        if info["type"] == "counter":
            for name, _labels, value in info["samples"]:
                if not name.endswith("_total"):
                    raise ValueError(f"counter sample {name} not named *_total")
                if not math.isfinite(value) or value < 0:
                    raise ValueError(f"counter {name} has invalid value {value}")
        elif info["type"] == "histogram":
            series: dict[tuple, dict] = {}
            for name, labels, value in info["samples"]:
                entry = series.setdefault(
                    _series_key(labels), {"buckets": [], "sum": None, "count": None}
                )
                if name.endswith("_bucket"):
                    if "le" not in labels:
                        raise ValueError(f"{family}: bucket sample missing le label")
                    entry["buckets"].append((labels["le"], value))
                elif name.endswith("_sum"):
                    entry["sum"] = value
                elif name.endswith("_count"):
                    entry["count"] = value
                else:
                    raise ValueError(
                        f"{family}: unexpected histogram sample name {name}"
                    )
            for key, entry in series.items():
                if entry["sum"] is None or entry["count"] is None:
                    raise ValueError(f"{family}{dict(key)}: missing _sum or _count")
                if not entry["buckets"]:
                    raise ValueError(f"{family}{dict(key)}: no buckets")
                previous = -1.0
                inf_value = None
                for le, value in entry["buckets"]:
                    boundary = float(le)
                    if value < previous:
                        raise ValueError(
                            f"{family}{dict(key)}: non-cumulative bucket at le={le}"
                        )
                    previous = value
                    if math.isinf(boundary) and boundary > 0:
                        inf_value = value
                if inf_value is None:
                    raise ValueError(f"{family}{dict(key)}: missing le=\"+Inf\" bucket")
                if inf_value != entry["count"]:
                    raise ValueError(
                        f"{family}{dict(key)}: +Inf bucket {inf_value} != "
                        f"_count {entry['count']}"
                    )
    return families
