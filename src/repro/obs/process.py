"""Process-level gauges: RSS, uptime, GC generation counts, threads.

Bench regressions are easiest to diagnose when the perf trajectory can
be correlated with memory growth — a p99 that creeps up alongside RSS
points at cache bloat, not solver work.  These gauges ride along in
``/v1/metrics`` (JSON) and the Prometheus exposition.

Stdlib only: ``resource.getrusage`` for the resident set (``ru_maxrss``
is the peak RSS — kilobytes on Linux, bytes on macOS), ``gc.get_count``
for per-generation pending-object counts, ``threading.active_count``
for live threads.  Uptime is measured from process start when the
platform exposes it (``/proc/self`` on Linux) and from first import of
this module otherwise.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time

try:  # POSIX; absent on Windows — gauges degrade, never fail.
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None

__all__ = ["process_stats"]


def _start_time() -> float:
    """Best-effort process start (unix seconds)."""
    try:  # Linux: /proc/self mtime is the process creation time.
        return os.stat("/proc/self").st_mtime
    except OSError:  # pragma: no cover - non-Linux fallback
        return _IMPORT_TIME


_IMPORT_TIME = time.time()
_START_TIME = _start_time()


def _max_rss_bytes() -> int | None:
    """Peak resident set size in bytes, or ``None`` when unavailable."""
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss unit is platform-defined: kilobytes on Linux, bytes on
    # macOS.  Normalize to bytes.
    if sys.platform == "darwin":  # pragma: no cover - CI runs Linux
        return int(rss)
    return int(rss) * 1024


def process_stats() -> dict:
    """JSON-ready process gauges (keys stable; missing values are None)."""
    gen0, gen1, gen2 = gc.get_count()
    return {
        "max_rss_bytes": _max_rss_bytes(),
        "uptime_s": round(max(0.0, time.time() - _START_TIME), 3),
        "gc_gen0": gen0,
        "gc_gen1": gen1,
        "gc_gen2": gen2,
        "gc_collections": sum(s["collections"] for s in gc.get_stats()),
        "threads": threading.active_count(),
    }
