"""``repro.obs``: request tracing, Prometheus exposition, SLO tracking.

The serving stack (gateway, registry, warmer, HTTP server) reports
*aggregate* health through :class:`~repro.service.metrics.ServiceMetrics`
— that says a p99 regressed, never *why* one request was slow.  This
package adds the per-request layer:

* :mod:`repro.obs.trace` — a lock-cheap :class:`Span`/:class:`Trace` API
  (one trace per request, monotonic-clock spans with tags), a bounded
  :class:`TraceStore` ring buffer with a slow-trace log, and the
  context-propagation helpers (:func:`use_trace`, :func:`current_span`,
  :func:`child_of_current`) the gateway, registry, warmer, and solver
  index use to annotate without holding references to each other.
* :mod:`repro.obs.prometheus` — renders every ``ServiceMetrics``
  counter, histogram, and the server's gauges in the Prometheus text
  exposition format (``GET /v1/metrics?format=prometheus`` and the
  ``/metrics`` alias), plus the parser the tests and the CI perf gate
  validate that output with.
* :mod:`repro.obs.slo` — per-tenant latency/availability objectives
  declared in :class:`~repro.server.config.ServerConfig`, tracked over a
  rolling window with attainment and error-budget burn.
* :mod:`repro.obs.process` — process-level gauges (RSS, uptime, GC
  generation counts, thread count) for correlating bench regressions
  with memory growth.

See ``docs/OBSERVABILITY.md`` for the span model, exposition names, and
the ``repro trace`` CLI.
"""

from .process import process_stats
from .prometheus import (
    PrometheusRenderer,
    parse_prometheus,
    render_prometheus,
    validate_exposition,
)
from .slo import SloObjectives, SloTracker
from .trace import (
    NULL_SPAN,
    Span,
    Trace,
    TraceStore,
    child_of_current,
    current_span,
    current_trace,
    format_trace,
    use_trace,
)

__all__ = [
    "NULL_SPAN",
    "PrometheusRenderer",
    "SloObjectives",
    "SloTracker",
    "Span",
    "Trace",
    "TraceStore",
    "child_of_current",
    "current_span",
    "current_trace",
    "format_trace",
    "parse_prometheus",
    "process_stats",
    "render_prometheus",
    "use_trace",
    "validate_exposition",
]
