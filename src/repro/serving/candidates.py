"""Incrementally maintained IntCov candidate-MHR values (2-D live serving).

IntCov binary-searches the set ``H`` of values the optimal MHR can take:
per point its happiness ratio at the two axis directions, per point pair
their common ratio at the direction where their score lines tie (see
:func:`repro.core.intcov.candidate_mhr_values`).  Recomputing ``H`` is
the dominant per-epoch cost of live 2-D serving — ``O(n^2)`` pair
enumeration — yet a single insert or delete only adds or removes
``O(n)`` values.  Every candidate is

    ``value(pair) = score_at_tie / envelope(lam_at_tie)``

where the tie direction ``lam`` and the numerator ``score`` depend only
on the two points, while the denominator is the current upper envelope.
:class:`LiveCandidateCache` therefore splits the state:

* **envelope-independent**: per alive point (a *slot*), the matrices
  ``lam[i, j]`` and ``score[i, j]`` over all pairs (``NaN`` = the tie
  direction falls outside ``[0, 1]``), plus each point's coordinates for
  the two axis candidates;
* **envelope-dependent**: ``H``, a **sorted array with duplicates** of
  the priced values under the current envelope.

Inserting a point computes one ``O(n)`` row and merges its priced values
into ``H``; deleting re-prices the stored row (bit-exact — same IEEE
operations on the same stored inputs) and removes exactly those values;
an envelope change (detected by exact comparison of the envelope's
breaks and lines) re-prices all pairs and re-sorts — no ``O(n^2)`` tie
re-enumeration — while the matrices stand.

Bit-compatibility with the batch path: pair values depend on which
endpoint's line is evaluated at the tie direction; the batch enumeration
uses the lower *row*, and rows are ordered by ``(group, key)`` — an
ordering stable across epochs — so the cache orients every pair by
``(group, key)`` and reproduces the batch floats bit for bit.  ``H``
differs from ``np.unique(candidate_mhr_values(...))`` only by containing
duplicates; IntCov's binary search over a sorted array returns the
largest *feasible value*, which duplicates cannot change, so served
solutions are bit-identical to cold solves (only the ``num_candidates``
/ ``decision_evaluations`` diagnostics differ).
"""

from __future__ import annotations

import numpy as np

# The cache must reproduce the batch enumeration bit for bit, so the
# block size and value filter are the enumeration's own constants.
from ..core.intcov import _PAIR_BLOCK, _VALUE_TOL
from ..geometry.envelope import Envelope

__all__ = ["LiveCandidateCache"]


class LiveCandidateCache:
    """Sorted candidate-MHR multiset under point inserts and deletes."""

    def __init__(self) -> None:
        self._cap = 0
        self._next_slot = 0
        self._slot_of: dict[int, int] = {}  # key -> slot
        self._free: list[int] = []
        self._x = np.empty(0)
        self._y = np.empty(0)
        self._slope = np.empty(0)
        self._group = np.empty(0, dtype=np.int64)
        self._key = np.empty(0, dtype=np.int64)
        self._lam = np.empty((0, 0))  # tie direction per pair, NaN outside [0,1]
        self._score = np.empty((0, 0))  # lower-(group,key) line value at the tie
        self._values = np.empty(0)  # H: sorted, with duplicates
        self._envelope: Envelope | None = None
        self.rebuilds = 0
        self.reprices = 0
        self.incremental_inserts = 0
        self.incremental_deletes = 0

    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Alive points tracked by the cache."""
        return len(self._slot_of)

    @property
    def num_values(self) -> int:
        """Current candidate count (duplicates included)."""
        return int(self._values.shape[0])

    def sync(self, points, keys, groups, envelope: Envelope) -> np.ndarray:
        """Update to a new alive set; return the sorted candidate array.

        Args:
            points: ``(n, 2)`` coordinates of the alive (skyline) points.
            keys: stable integer identity per row (caller keys).
            groups: *original* group id per row.  A key re-appearing with
                different coordinates or group is re-slotted (removed and
                re-inserted), so reuse is safe; while a key is alive its
                group must not change, keeping pair orientation stable.
            envelope: the upper envelope of ``points``.

        The returned array is freshly allocated each call (safe to hand
        to a solver and keep across future syncs).
        """
        points = np.asarray(points, dtype=np.float64)
        keys = [int(k) for k in np.asarray(keys)]
        groups = [int(g) for g in np.asarray(groups)]
        if self._envelope is None:
            self._rebuild(points, keys, groups, envelope)
            return self._values
        if not (
            np.array_equal(self._envelope.breaks, envelope.breaks)
            and np.array_equal(self._envelope.lines, envelope.lines)
        ):
            # New denominators: re-price every stored pair, keep matrices.
            self._envelope = envelope
            self._values = self._price_all()
            self.reprices += 1
        new_keys = set(keys)
        stale = [k for k in self._slot_of if k not in new_keys]
        for row, key in enumerate(keys):
            # A key re-inserted with different coordinates or group must be
            # re-slotted, or its stored pair rows would price stale points.
            slot = self._slot_of.get(key)
            if slot is not None and (
                self._x[slot] != points[row, 0]
                or self._y[slot] != points[row, 1]
                or self._group[slot] != groups[row]
            ):
                stale.append(key)
        for key in stale:
            self._remove(key)
        known = self._slot_of
        for row, key in enumerate(keys):
            if key not in known:
                self._insert(key, points[row], groups[row])
        return self._values

    # ------------------------------------------------------------------ #
    # pricing: envelope-dependent values from the stored matrices
    # ------------------------------------------------------------------ #

    def _env_eval(self, lam: np.ndarray) -> np.ndarray:
        """Lean ``Envelope.value`` for lams already known to lie in [0, 1].

        Identical piece selection and arithmetic as the public method
        (whose input validation and clip are identity here), so priced
        values match the batch enumeration bit for bit.
        """
        env = self._envelope
        piece = np.clip(
            np.searchsorted(env.breaks, lam, side="right") - 1,
            0,
            env.num_pieces - 1,
        )
        return env.lines[piece, 0] * lam + env.lines[piece, 1]

    def _price(self, lam: np.ndarray, score: np.ndarray) -> np.ndarray:
        """values = score / envelope(lam), filtered to [0, 1] (NaN = none)."""
        out = np.full(lam.shape, np.nan)
        valid = ~np.isnan(lam)
        if valid.any():
            lam_v = lam[valid]
            vals = score[valid] / self._env_eval(lam_v)
            keep = (vals >= 0.0) & (vals <= 1.0 + _VALUE_TOL)
            vals = np.clip(vals, 0.0, 1.0)
            vals[~keep] = np.nan
            out[valid] = vals
        return out

    def _axis_values(self, slot) -> np.ndarray:
        """The slot's two axis candidates (vectorized over slot arrays)."""
        top0 = self._envelope.value(0.0)
        top1 = self._envelope.value(1.0)
        vals = np.stack([self._y[slot] / top0, self._x[slot] / top1], axis=-1)
        bad = ~((vals >= 0.0) & (vals <= 1.0 + _VALUE_TOL))
        vals = np.clip(vals, 0.0, 1.0)
        vals[bad] = np.nan
        return vals

    def _alive_slots(self) -> np.ndarray:
        return np.fromiter(
            self._slot_of.values(), dtype=np.int64, count=len(self._slot_of)
        )

    def _values_of(self, slot: int) -> np.ndarray:
        """This point's candidate contributions (sorted): axis + pairs."""
        alive = self._alive_slots()
        others = alive[alive != slot]
        vals = np.concatenate(
            [
                self._axis_values(np.array([slot])).ravel(),
                self._price(self._lam[slot, others], self._score[slot, others]),
            ]
        )
        return np.sort(vals[~np.isnan(vals)])

    def _price_all(self) -> np.ndarray:
        """Sorted H over all alive slots under the current envelope."""
        alive = np.sort(self._alive_slots())
        axis_vals = self._axis_values(alive).ravel()
        chunks = [axis_vals[~np.isnan(axis_vals)]]
        # Block over rows; price each pair once (later-position columns).
        for start in range(0, alive.size, _PAIR_BLOCK):
            stop = min(start + _PAIR_BLOCK, alive.size)
            cols = alive[start + 1 :]
            if cols.size == 0:
                break
            lam = self._lam[alive[start:stop, None], cols[None, :]]
            score = self._score[alive[start:stop, None], cols[None, :]]
            # Keep strictly-upper entries: column position > row position.
            mask = np.arange(start + 1, alive.size)[None, :] > np.arange(
                start, stop
            )[:, None]
            vals = self._price(lam[mask], score[mask])
            chunks.append(vals[~np.isnan(vals)])
        return np.sort(np.concatenate(chunks))

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #

    def _remove(self, key: int) -> None:
        slot = self._slot_of[key]
        vals = self._values_of(slot)
        self._values = _multiset_remove(self._values, vals)
        del self._slot_of[key]
        self._free.append(slot)
        self._lam[slot, :] = np.nan
        self._lam[:, slot] = np.nan
        self._score[slot, :] = np.nan
        self._score[:, slot] = np.nan
        self.incremental_deletes += 1

    def _insert(self, key: int, point: np.ndarray, group: int) -> None:
        slot = self._take_slot()
        self._x[slot] = point[0]
        self._y[slot] = point[1]
        self._slope[slot] = point[0] - point[1]
        self._group[slot] = group
        self._key[slot] = key
        alive = self._alive_slots()
        if alive.size:
            lam, score = self._pair_rows(slot, alive)
            self._lam[slot, alive] = lam
            self._lam[alive, slot] = lam
            self._score[slot, alive] = score
            self._score[alive, slot] = score
        self._slot_of[key] = slot
        self._values = _multiset_insert(self._values, self._values_of(slot))
        self.incremental_inserts += 1

    def _pair_rows(self, slot: int, others: np.ndarray):
        """Tie directions and numerators of the pairs (slot, other).

        Bit-identical to the batch enumeration: the endpoint that sorts
        first by ``(group, key)`` — i.e. would occupy the lower dataset
        row — provides the line evaluated at the tie direction.
        """
        first = (self._group[others] < self._group[slot]) | (
            (self._group[others] == self._group[slot])
            & (self._key[others] < self._key[slot])
        )
        slope_f = np.where(first, self._slope[others], self._slope[slot])
        y_f = np.where(first, self._y[others], self._y[slot])
        slope_s = np.where(first, self._slope[slot], self._slope[others])
        y_s = np.where(first, self._y[slot], self._y[others])
        with np.errstate(divide="ignore", invalid="ignore"):
            lam = (y_s - y_f) / (slope_f - slope_s)
        valid = np.isfinite(lam) & (lam >= 0.0) & (lam <= 1.0)
        lam = np.where(valid, lam, np.nan)
        score = np.where(valid, y_f + slope_f * lam, np.nan)
        return lam, score

    def _take_slot(self) -> int:
        if self._free:
            return self._free.pop()
        slot = self._next_slot
        if slot >= self._cap:
            # Modest headroom: the matrices are O(cap^2) memory.
            self._grow(max(64, self._cap + self._cap // 2, slot + 1))
        self._next_slot += 1
        return slot

    def _grow(self, cap: int) -> None:
        def bigger(arr, shape, fill):
            out = np.full(shape, fill, dtype=arr.dtype)
            if arr.size:
                out[tuple(slice(0, s) for s in arr.shape)] = arr
            return out

        self._x = bigger(self._x, (cap,), 0.0)
        self._y = bigger(self._y, (cap,), 0.0)
        self._slope = bigger(self._slope, (cap,), 0.0)
        self._group = bigger(self._group, (cap,), 0)
        self._key = bigger(self._key, (cap,), 0)
        self._lam = bigger(self._lam, (cap, cap), np.nan)
        self._score = bigger(self._score, (cap, cap), np.nan)
        self._cap = cap

    # ------------------------------------------------------------------ #
    # full rebuild (first sync only; later epochs stay incremental)
    # ------------------------------------------------------------------ #

    def _rebuild(self, points, keys, groups, envelope: Envelope) -> None:
        n = points.shape[0]
        # Discard all slot state so _grow starts from clean NaN matrices.
        self._cap = 0
        self._next_slot = 0
        self._free = []
        self._x = np.empty(0)
        self._y = np.empty(0)
        self._slope = np.empty(0)
        self._group = np.empty(0, dtype=np.int64)
        self._key = np.empty(0, dtype=np.int64)
        self._lam = np.empty((0, 0))
        self._score = np.empty((0, 0))
        self._grow(max(64, n + max(64, n // 8)))
        self._next_slot = n
        self._slot_of = {key: row for row, key in enumerate(keys)}
        self._x[:n] = points[:, 0]
        self._y[:n] = points[:, 1]
        self._slope[:n] = points[:, 0] - points[:, 1]
        self._group[:n] = groups
        self._key[:n] = keys
        self._envelope = envelope
        y = self._y[:n]
        slope = self._slope[:n]
        # Full (i, j) matrix per block, both orientations in one pass: lam
        # is exactly symmetric (negating numerator and denominator is an
        # exact float operation) and the evaluated line is the lower row's
        # — rows arrive (group, key)-sorted, matching the batch order —
        # so cell (i, j) == cell (j, i) bit for bit without a mirror pass.
        for start in range(0, n, _PAIR_BLOCK):
            stop = min(start + _PAIR_BLOCK, n)
            slope_diff = slope[start:stop, None] - slope[None, :]
            with np.errstate(divide="ignore", invalid="ignore"):
                lam = (y[None, :] - y[start:stop, None]) / slope_diff
            valid = (lam >= 0.0) & (lam <= 1.0) & np.isfinite(lam)
            lam = np.where(valid, lam, np.nan)
            rows_abs = np.arange(start, stop)[:, None]
            cols = np.arange(n)[None, :]
            first_is_col = cols < rows_abs
            y_f = np.where(first_is_col, y[None, :], y[start:stop, None])
            slope_f = np.where(first_is_col, slope[None, :], slope[start:stop, None])
            self._lam[start:stop, :n] = lam
            self._score[start:stop, :n] = np.where(
                valid, y_f + slope_f * lam, np.nan
            )
        self._values = self._price_all()
        self.rebuilds += 1


def _multiset_insert(sorted_values: np.ndarray, new_sorted: np.ndarray) -> np.ndarray:
    """Merge ``new_sorted`` into ``sorted_values`` (both ascending)."""
    if new_sorted.size == 0:
        return sorted_values
    positions = np.searchsorted(sorted_values, new_sorted)
    return np.insert(sorted_values, positions, new_sorted)


def _multiset_remove(sorted_values: np.ndarray, victims: np.ndarray) -> np.ndarray:
    """Remove one occurrence per entry of ``victims`` (both ascending).

    Every victim is guaranteed present (stored bits are re-priced through
    the same operations, never recomputed differently); equal victims map
    to consecutive occurrences.
    """
    if victims.size == 0:
        return sorted_values
    positions = np.searchsorted(sorted_values, victims, side="left")
    if victims.size > 1:
        run_start = np.r_[0, np.nonzero(victims[1:] != victims[:-1])[0] + 1]
        run_id = np.cumsum(np.r_[0, victims[1:] != victims[:-1]])
        positions = positions + (np.arange(victims.size) - run_start[run_id])
    return np.delete(sorted_values, positions)
