"""``FairHMSIndex``: answer many FairHMS queries over one dataset fast.

The one-shot API (``solve_fairhms``) redoes skyline extraction, delta-net
sampling, and score-matrix construction on every call.  In a serving
setting a single dataset is queried repeatedly with varying ``k``,
fairness constraints, and ``eps``; the index performs the dataset-level
work once at build time and shares the rest through a
:class:`~repro.serving.artifacts.SolverArtifacts` cache:

* **build time** — normalization and per-group skyline extraction;
* **first use** — the 2-D envelope + candidate-MHR values (IntCov), and
  one delta-net + truncated-MHR engine per distinct ``(m, seed)``
  (BiGreedy / BiGreedy+);
* **every repeat** — fully solved queries are memoized, so identical
  queries (the common case under real traffic) are answered from the
  result cache without running the solver at all.

Warm answers are *bit-identical* to the corresponding cold
``solve_fairhms`` call with the same seed: cache misses draw from exactly
the seed-derived stream the cold path would use.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..core.solution import Solution
from ..core.solve import solve_fairhms
from ..planner import Plan, Planner
from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..hms.evaluation import MhrEvaluation, MhrEvaluator
from ..obs.trace import current_span
from .artifacts import SolverArtifacts

__all__ = ["FairHMSIndex", "Query"]

_CONSTRAINT_SCHEMES = ("proportional", "balanced", "unconstrained")


def _trace_solve(parent, started, algorithm, constraint, solution) -> None:
    """Attach a ``solve`` span (with per-phase children) to a request trace.

    The solver already timed its phases into ``Solution.stats["phases"]``
    (recorded in execution order); they are replayed as back-to-back
    child spans offset from the solve's start — same numbers the phase
    histograms aggregate, now visible per request.  Only called when a
    trace is active, so the untraced hot path never allocates here.
    """
    span = parent.child(
        "solve", start=started, algorithm=str(algorithm), k=int(constraint.k)
    )
    stats = getattr(solution, "stats", None)
    phases = stats.get("phases") if isinstance(stats, dict) else None
    if isinstance(phases, dict):
        cursor = started
        for phase, seconds in phases.items():
            try:
                seconds = max(0.0, float(seconds))
            except (TypeError, ValueError):
                continue
            child = span.child(str(phase), start=cursor)
            cursor += seconds
            child.end(cursor)
    span.end()


@dataclass(frozen=True)
class Query:
    """One FairHMS query, for :meth:`FairHMSIndex.query_batch`.

    Either ``constraint`` or ``k`` must be set; with only ``k`` the index
    builds the constraint from ``scheme``/``alpha``.  ``seed=None`` means
    the index default.  ``options`` is forwarded verbatim to the solver
    (e.g. ``{"mode": "bicriteria"}``).
    """

    k: int | None = None
    constraint: FairnessConstraint | None = None
    eps: float = 0.02
    algorithm: str = "auto"
    seed: int | None = None
    alpha: float = 0.1
    scheme: str = "proportional"
    options: dict = field(default_factory=dict)


class FairHMSIndex:
    """Reusable query-serving index over one dataset.

    Args:
        dataset: the raw database.  Normalization and per-group skyline
            extraction (the paper's standard preprocessing) run once here;
            disable with ``normalize=False`` / ``per_group_skyline=None``
            if the dataset is already preprocessed.
        normalize: max-normalize each attribute before indexing.
        per_group_skyline: ``True`` for the union of per-group skylines
            (the paper's setting), ``False`` for the global skyline,
            ``None`` to index ``dataset`` as-is.
        default_seed: seed used when a query does not specify one; an
            integer so that default queries hit the deterministic caches.
        cache_results: memoize fully solved queries (keyed by algorithm,
            constraint, and solver options).  Cached hits return the same
            :class:`Solution` object — treat solutions as read-only.
        max_cached_results: bound on the result memo, evicted LRU — a
            cache hit refreshes an entry's recency, so the hottest
            repeated queries survive one-off bursts of distinct ones.
            The artifact (net/engine) caches are not
            auto-evicted — each distinct ``(m, seed)`` key holds an
            ``(m, n)`` score matrix, so serve with a fixed seed policy
            and call :meth:`clear_caches` if clients control seeds.

    Concurrency model: every public entry point (queries, cache
    management, evaluation — and, on the live subclass, mutations)
    serializes on one internal reentrant lock (:attr:`lock`), because
    cached :class:`TruncatedEngine` objects memoize per-``tau`` state in
    place.  Concurrent callers are therefore *safe* but see serialized
    throughput on a single index; for cross-dataset parallelism and
    request coalescing put ``repro.service.Gateway`` in front (it fences
    reads and writes per dataset), or give each worker its own index —
    indexes over the same dataset return identical answers.

    The static index is the *frozen* special case of live serving: its
    dataset never changes, so :meth:`_refresh` is a no-op and the epoch
    stays 0 forever.  ``repro.serving.LiveFairHMSIndex`` subclasses it to
    accept inserts/deletes/streams between queries.
    """

    #: Whether the indexed dataset is immutable.  The live subclass sets
    #: this to False; everything keyed on it (epochs, refresh) is shared.
    frozen = True

    def __init__(
        self,
        dataset: Dataset,
        *,
        normalize: bool = True,
        per_group_skyline: bool | None = True,
        default_seed: int = 7,
        cache_results: bool = True,
        max_cached_results: int = 1024,
    ) -> None:
        data = dataset.normalized() if normalize else dataset
        if per_group_skyline is None:
            sky = data
        else:
            sky = data.skyline(per_group=per_group_skyline)
        self._init_state(
            data,
            sky,
            default_seed=default_seed,
            cache_results=cache_results,
            max_cached_results=max_cached_results,
        )

    def _init_state(
        self,
        dataset: Dataset | None,
        skyline: Dataset | None,
        *,
        default_seed: int,
        cache_results: bool,
        max_cached_results: int,
    ) -> None:
        """Shared serving-state setup (also used by the live subclass,
        which preprocesses its data through a ``DynamicFairHMS`` instead
        of the one-shot normalize+skyline pipeline)."""
        # Reentrant so internal calls (query -> constraint_for) nest; see
        # the class docstring for the concurrency model.
        self._serve_lock = threading.RLock()
        self._dataset = dataset
        self._skyline = skyline
        # Dispatch policy in one place: every query plans through this.
        # The default static planner reproduces ``resolve_algorithm``
        # exactly; the service registry swaps in its shared (possibly
        # adaptive) planner via :meth:`set_planner`.
        self._planner = Planner()
        self._artifacts = SolverArtifacts(skyline) if skyline is not None else None
        self._default_seed = int(default_seed)
        self._cache_results = bool(cache_results)
        self._max_cached_results = max(1, int(max_cached_results))
        self._results: OrderedDict[tuple, Solution] = OrderedDict()
        self._result_hits = 0
        self._result_misses = 0
        self._constraints: dict[tuple, FairnessConstraint] = {}
        self._evaluator: MhrEvaluator | None = None
        # Last known optimal tau per IntCov query key.  Deliberately NOT
        # dropped on epoch changes: a hint is only ever *verified* by the
        # solver (two decision evaluations), so a stale hint costs a
        # galloping fallback search, never a wrong answer.  Evicted LRU
        # (like ``_results``): hits refresh recency, so the hot working
        # set survives a burst of one-off keys instead of being wiped
        # wholesale and paying a full-search latency cliff for every key.
        self._tau_hints: OrderedDict[tuple, float] = OrderedDict()
        self._max_tau_hints = 4 * self._max_cached_results
        # Multi-k sharing diagnostics (see query_multi): how many ks paid
        # a full anchored-from-nothing search, how many rode a neighboring
        # k's optimum, and how many fell back to independent solves.
        self._multi_growths = 0
        self._multi_prefix_hits = 0
        self._multi_fallbacks = 0

    @classmethod
    def from_preprocessed(
        cls,
        dataset: Dataset,
        skyline: Dataset,
        *,
        default_seed: int = 7,
        cache_results: bool = True,
        max_cached_results: int = 1024,
    ) -> "FairHMSIndex":
        """Index over an already normalized dataset and extracted skyline.

        The entry point of the sharded parallel builder
        (``repro.service.build_index_sharded``), which computes exactly
        what ``FairHMSIndex(dataset)`` would — the max-normalized
        database and its per-group skyline — across a process pool, then
        hands both here.  No validation beyond a dimension check is done:
        the caller guarantees ``skyline`` is the per-group skyline of
        ``dataset`` (answers are wrong, not just slow, otherwise).

        Only meaningful for the frozen index; the live subclass owns its
        preprocessing pipeline.
        """
        if not cls.frozen:
            raise TypeError(
                "from_preprocessed builds frozen indexes only; construct "
                f"{cls.__name__} from a dataset instead"
            )
        if dataset.dim != skyline.dim:
            raise ValueError(
                f"dataset and skyline dimensions differ "
                f"({dataset.dim} != {skyline.dim})"
            )
        index = cls.__new__(cls)
        index._init_state(
            dataset,
            skyline,
            default_seed=default_seed,
            cache_results=cache_results,
            max_cached_results=max_cached_results,
        )
        return index

    # ------------------------------------------------------------------ #
    # refresh / epochs
    # ------------------------------------------------------------------ #

    def _refresh(self) -> None:
        """Sync serving state with the underlying data (no-op: frozen).

        The live subclass overrides this to apply pending inserts/deletes
        — advancing the epoch, staging artifact invalidation, and
        dropping the result memo — before any query is answered.
        """

    @property
    def epoch(self) -> int:
        """Data version being served (always 0 for a frozen index)."""
        return 0 if self._artifacts is None else self._artifacts.epoch

    def _start_epoch(self) -> None:
        """Drop per-epoch serving state after a data change.

        The result memo and the constraint cache go unconditionally: any
        insert or delete moves the population group sizes that
        proportional constraints (and therefore memoized answers) depend
        on.  The evaluator is rebuilt lazily over the new database.
        Artifact invalidation is staged separately by the caller
        (``bump_epoch``/``rebind``) so skyline-unchanged epochs keep
        nets, engines, and geometry warm.
        """
        self._results.clear()
        self._constraints.clear()
        self._evaluator = None

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def lock(self) -> threading.RLock:
        """The reentrant lock every public entry point serializes on.

        Exposed so an external scheduler (e.g. the service gateway) can
        fence a multi-call sequence — refresh, then a batch of queries —
        against concurrent mutations of a live index.
        """
        return self._serve_lock

    @property
    def dataset(self) -> Dataset:
        """The (normalized) full database queries are answered about."""
        self._refresh()
        return self._dataset

    @property
    def skyline(self) -> Dataset:
        """The solver-input dataset all solutions index into."""
        self._refresh()
        return self._skyline

    @property
    def artifacts(self) -> SolverArtifacts:
        """The shared per-dataset artifact cache (nets, engines, envelope)."""
        self._refresh()
        return self._artifacts

    def cache_info(self) -> dict:
        """Artifact hit/miss counters plus result-cache statistics."""
        with self._serve_lock:
            self._refresh()
            if self._artifacts is None:  # empty live: keep the shape stable
                info = {"epoch": self.epoch, "dirty_components": ()}
            else:
                info = self._artifacts.cache_info()
            info["result_hits"] = self._result_hits
            info["result_misses"] = self._result_misses
            info["results_cached"] = len(self._results)
            info["cache_bytes"] = self.cache_bytes()
            info["multi_growths"] = self._multi_growths
            info["multi_prefix_hits"] = self._multi_prefix_hits
            info["multi_fallbacks"] = self._multi_fallbacks
            return info

    def cache_bytes(self) -> int:
        """Estimated resident bytes of this index's cached state.

        Counts the dataset and skyline arrays, the artifact caches (nets,
        engine score matrices, 2-D geometry), memoized solution points,
        and the evaluator — the byte account ``repro.service.
        DatasetRegistry`` budgets its LRU eviction with.  An estimate:
        python object overhead and small scalars are ignored.

        Deliberately does **not** take the serve lock: the registry
        accounts memory while other datasets (and possibly this one) are
        mid-solve, and an accounting pass must never wait on a busy
        index.  Snapshots tolerate concurrent cache mutation; a race can
        only skew the estimate, never corrupt state.
        """
        total = 0
        for data in (self._dataset, self._skyline):
            if data is not None:
                total += (
                    data.points.nbytes + data.labels.nbytes + data.ids.nbytes
                )
        artifacts = self._artifacts
        if artifacts is not None:
            total += artifacts.cache_bytes()
        try:
            for solution in list(self._results.values()):
                total += solution.points.nbytes + solution.indices.nbytes
        except RuntimeError:  # resized mid-snapshot: partial count is fine
            pass
        evaluator = self._evaluator
        if evaluator is not None:
            for value in list(vars(evaluator).values()):
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        return int(total)

    def serving_config(self) -> dict:
        """The construction-time serving parameters (snapshot persistence).

        Exactly the keyword arguments a restore must pass so the reloaded
        index keys its caches — and draws its default randomness — the
        same way this one does.
        """
        return {
            "default_seed": self._default_seed,
            "cache_results": self._cache_results,
            "max_cached_results": self._max_cached_results,
        }

    def memoized_results(self) -> dict[tuple, Solution]:
        """Copy of the result memo, LRU order preserved (persistence)."""
        with self._serve_lock:
            return dict(self._results)

    def prime_result(self, key: tuple, solution: Solution) -> None:
        """Install a memoized solution under ``key`` (snapshot restore).

        The caller guarantees ``key`` is exactly what :meth:`query` would
        compute for the solution's parameters — snapshot load replays
        keys captured from :meth:`memoized_results`, never synthesizes
        them.  No-op when result caching is disabled.
        """
        if not self._cache_results:
            return
        with self._serve_lock:
            while len(self._results) >= self._max_cached_results:
                self._results.popitem(last=False)
            self._results[tuple(key)] = solution

    def clear_result_cache(self) -> None:
        """Drop memoized solutions (artifact caches are kept)."""
        with self._serve_lock:
            self._results.clear()

    def clear_caches(self) -> None:
        """Drop memoized solutions AND the net/engine artifact caches.

        For long-running servers whose clients control seeds: each
        distinct ``(m, seed)`` engine holds an ``(m, n)`` score matrix,
        so periodic clearing bounds memory at the cost of warm-up.
        """
        with self._serve_lock:
            self._results.clear()
            self._tau_hints.clear()
            self._evaluator = None
            if self._artifacts is not None:
                self._artifacts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FairHMSIndex({self._dataset.name!r}, n={self._dataset.n}, "
            f"skyline={self._skyline.n}, d={self._dataset.dim}, "
            f"C={self._dataset.num_groups})"
        )

    # ------------------------------------------------------------------ #
    # constraints
    # ------------------------------------------------------------------ #

    def constraint_for(
        self, k: int, *, alpha: float = 0.1, scheme: str = "proportional"
    ) -> FairnessConstraint:
        """Standard constraint for solution size ``k``, cached per key.

        ``proportional`` follows the paper's Section 5.1 recipe: shares of
        the *population* group sizes (pre-skyline), clamped, with lower
        bounds capped by per-group skyline availability.  ``balanced``
        gives every group ~``k / C``; ``unconstrained`` turns FairHMS into
        vanilla HMS.
        """
        if scheme not in _CONSTRAINT_SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of {_CONSTRAINT_SCHEMES}"
            )
        with self._serve_lock:
            self._refresh()
            if self._skyline is None:
                raise ValueError("no tuples alive; insert data before querying")
            key = (scheme, int(k), float(alpha))
            cached = self._constraints.get(key)
            if cached is not None:
                return cached
            sky = self._skyline
            if scheme == "proportional":
                base = FairnessConstraint.proportional(
                    k, sky.population_group_sizes, alpha=alpha, clamp=True
                )
            elif scheme == "balanced":
                base = FairnessConstraint.balanced(
                    k, sky.num_groups, alpha=alpha, clamp=True
                )
            else:
                base = FairnessConstraint.unconstrained(k, sky.num_groups)
            constraint = base.capped_by_availability(sky.group_sizes)
            self._constraints[key] = constraint
            return constraint

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def planner(self) -> Planner:
        """The :class:`~repro.planner.Planner` dispatching this index."""
        return self._planner

    def set_planner(self, planner: Planner) -> None:
        """Install a (possibly shared, possibly adaptive) planner.

        The service registry calls this after every build and spill
        reload so all tenants feed one estimator and one set of plan
        counters; a bare index keeps its private static planner.
        """
        with self._serve_lock:
            self._planner = planner

    def _dataset_label(self, dataset: str | None) -> str:
        if dataset is not None:
            return str(dataset)
        if self._dataset is not None and getattr(self._dataset, "name", None):
            return str(self._dataset.name)
        return ""

    def plan_query(
        self,
        query: "Query",
        *,
        dataset: str | None = None,
        queue_depth: int = 0,
        record: bool = True,
    ) -> Plan:
        """Plan one query without running it.

        The gateway calls this once per request, keys its coalescing on
        the returned plan, and passes the same plan back into
        :meth:`query` — so an adaptive decision can never flip between
        scheduling and execution.

        Args:
            query: the request (a :class:`Query`).
            dataset: estimator label; defaults to the dataset's name.
                The gateway passes its registry name so planning and its
                :meth:`~repro.planner.Planner.observe` feedback share keys.
            queue_depth: requests currently queued on this dataset.
            record: count this decision in the planner's plan counters
                (pass ``False`` for inspection-only calls).
        """
        with self._serve_lock:
            self._refresh()
            if self._skyline is None:
                raise ValueError("no tuples alive; insert data before querying")
            constraint = query.constraint
            if constraint is None:
                if query.k is None:
                    raise ValueError(
                        "provide either k or an explicit constraint"
                    )
                constraint = self.constraint_for(
                    query.k, alpha=query.alpha, scheme=query.scheme
                )
            seed = query.seed if query.seed is not None else self._default_seed
            return self._planner.plan(
                self._skyline,
                constraint,
                algorithm=query.algorithm,
                dataset=self._dataset_label(dataset),
                eps=query.eps,
                seed=seed,
                options=query.options,
                artifacts=self._artifacts,
                queue_depth=queue_depth,
                record=record,
            )

    def resolve_query(self, query: "Query") -> str:
        """The concrete algorithm name ``query`` will run under.

        Applies exactly the dispatch rule :meth:`query` applies — a
        planner decision over the current skyline and the query's
        (possibly constructed) constraint — so schedulers in front of the
        index (the service gateway) can treat ``"auto"`` and its
        resolution as the same request, and drop knobs the resolved
        algorithm ignores (IntCov takes neither ``eps`` nor ``seed``).
        """
        return self.plan_query(query, record=False).algorithm

    def query(
        self,
        k: int | None = None,
        *,
        constraint: FairnessConstraint | None = None,
        eps: float = 0.02,
        algorithm: str = "auto",
        seed: int | None = None,
        alpha: float = 0.1,
        scheme: str = "proportional",
        plan: Plan | None = None,
        **options,
    ) -> Solution:
        """Solve one FairHMS query against the index.

        Equivalent to ``solve_fairhms(index.skyline, constraint,
        algorithm=..., epsilon=eps, seed=seed, **options)`` — same
        solution, bit for bit — but served from the index's caches.
        Dispatch flows through the index's :class:`~repro.planner.Planner`;
        running the plan is always ``solve_fairhms(skyline, constraint,
        algorithm=plan.algorithm, **plan.solver_kwargs())``, so a planned
        answer is bit-identical to the same configuration run by hand.

        Args:
            k: solution size; builds a ``scheme`` constraint when no
                explicit ``constraint`` is given.
            constraint: explicit fairness bounds (overrides ``k``/``alpha``
                /``scheme``).
            eps: cap-search granularity for the BiGreedy family (ignored
                by the exact IntCov).
            algorithm: ``"auto"``, ``"IntCov"``, ``"BiGreedy"`` or
                ``"BiGreedy+"``; auto resolves exactly as ``solve_fairhms``.
            seed: RNG seed; ``None`` uses the index's ``default_seed``.
                Pass a ``numpy.random.Generator`` for non-reproducible
                draws (those bypass the caches).
            alpha / scheme: constraint construction (see
                :meth:`constraint_for`).
            plan: a :class:`~repro.planner.Plan` from :meth:`plan_query`
                to execute verbatim (the gateway pins its coalescing
                decision this way); ``None`` plans here.  A supplied plan
                overrides ``eps``/``algorithm``/``seed``/``options``.
            **options: forwarded to the solver (``mode=``, ``net_size=``,
                ``extra_steps=``, ...).

        Returns:
            The solver's :class:`Solution` (possibly memoized — see
            ``cache_results``).
        """
        with self._serve_lock:
            self._refresh()
            if self._skyline is None:
                raise ValueError("no tuples alive; insert data before querying")
            if constraint is None:
                if k is None:
                    raise ValueError(
                        "provide either k or an explicit constraint"
                    )
                constraint = self.constraint_for(k, alpha=alpha, scheme=scheme)
            if plan is None:
                if seed is None:
                    seed = self._default_seed
                plan = self._planner.plan(
                    self._skyline,
                    constraint,
                    algorithm=algorithm,
                    dataset=self._dataset_label(None),
                    eps=eps,
                    seed=seed,
                    options=options,
                    artifacts=self._artifacts,
                )
            algorithm = plan.algorithm
            solver_kwargs = plan.solver_kwargs()
            key = self._result_key(algorithm, constraint, solver_kwargs)
            parent = current_span()
            if parent is not None:
                parent.annotate(plan_reason=plan.reason)
            if key is not None:
                cached = self._results.get(key)
                if cached is not None:
                    self._result_hits += 1
                    self._results.move_to_end(key)  # true LRU: hits refresh
                    if parent is not None:
                        parent.annotate(
                            result_cache_hit=True, algorithm=str(algorithm)
                        )
                    return cached
            if algorithm == "IntCov" and key is not None:
                hint = self._tau_hint_for(key)
                if hint is not None:
                    solver_kwargs["tau_hint"] = hint
            started = time.perf_counter() if parent is not None else 0.0
            solution = solve_fairhms(
                self._skyline,
                constraint,
                algorithm=algorithm,
                artifacts=self._artifacts,
                **solver_kwargs,
            )
            if parent is not None:
                _trace_solve(parent, started, algorithm, constraint, solution)
            if key is not None:
                if algorithm == "IntCov":
                    self._record_tau_hint(key, solution)
                self._result_misses += 1
                while len(self._results) >= self._max_cached_results:
                    self._results.popitem(last=False)  # least recently used
                self._results[key] = solution
            return solution

    def _tau_hint_for(self, key: tuple) -> float | None:
        """Fetch a tau hint, refreshing its LRU recency on the hit."""
        hint = self._tau_hints.get(key)
        if hint is not None:
            self._tau_hints.move_to_end(key)
        return hint

    def _record_tau_hint(self, key: tuple, solution: Solution) -> None:
        """Remember a solved query's optimal tau, evicting LRU past the cap.

        Per-entry eviction (not a wholesale ``clear``): under key churn the
        old behavior dropped every hot hint with the cold ones, forcing a
        full-search latency cliff on the next solve of each hot key.
        """
        tau = solution.stats.get("tau")
        if tau is None:
            return
        self._tau_hints[key] = float(tau)
        self._tau_hints.move_to_end(key)
        while len(self._tau_hints) > self._max_tau_hints:
            self._tau_hints.popitem(last=False)

    def query_batch(self, queries) -> list[Solution]:
        """Answer a heterogeneous batch of queries in one call.

        Accepts :class:`Query` objects or dicts of Query fields.  All
        queries share the index's delta-net, engine, envelope, and result
        caches, so a batch whose queries repeat an ``(m, seed)``
        combination samples that net and builds its score matrix exactly
        once, and duplicate queries are solved once.
        """
        specs = [q if isinstance(q, Query) else Query(**q) for q in queries]
        return [
            self.query(
                q.k,
                constraint=q.constraint,
                eps=q.eps,
                algorithm=q.algorithm,
                seed=q.seed,
                alpha=q.alpha,
                scheme=q.scheme,
                **q.options,
            )
            for q in specs
        ]

    def query_multi(
        self,
        ks,
        *,
        eps: float = 0.02,
        algorithm: str = "auto",
        seed: int | None = None,
        alpha: float = 0.1,
        scheme: str = "proportional",
        **options,
    ) -> list[Solution]:
        """Solve one request asking several solution sizes, sharing work.

        Answers are **bit-identical** to calling :meth:`query` once per
        ``k`` — the sharing is pure reuse, never approximation:

        * On the exact IntCov path the ks are solved in ascending order as
          *one grown search*: the first uncached ``k`` pays a full
          tau-descent ("growth"), and every later ``k`` anchors its search
          at the previous optimum ("prefix snapshot") — feasibility is
          monotone in ``tau`` per constraint, and the returned cover is a
          deterministic function of the optimal ``tau`` alone, so any
          search route to the same optimum yields the same solution.  The
          per-``tau`` interval indexes (which depend only on the point
          set, not on ``k``) are additionally shared across the ks through
          a bucket cache.
        * Sizes that resolve to the BiGreedy family fall back to
          independent :meth:`query` calls — their delta-net size is
          ``k``-dependent and the tau-cap descent is not prefix-nested, so
          no exact sharing exists there.

        Diagnostics land in :meth:`cache_info`: ``multi_growths`` /
        ``multi_prefix_hits`` / ``multi_fallbacks``.

        Returns:
            Solutions aligned with ``ks`` (duplicates allowed; each
            distinct size is solved once).
        """
        with self._serve_lock:
            self._refresh()
            if self._skyline is None:
                raise ValueError("no tuples alive; insert data before querying")
            ks_list = [int(k) for k in ks]
            solutions: dict[int, Solution] = {}
            bucket_cache: dict = {}
            prev_tau: float | None = None
            for k in sorted(set(ks_list)):
                constraint = self.constraint_for(k, alpha=alpha, scheme=scheme)
                plan = self._planner.plan(
                    self._skyline,
                    constraint,
                    algorithm=algorithm,
                    dataset=self._dataset_label(None),
                    eps=eps,
                    seed=seed if seed is not None else self._default_seed,
                    options=options,
                    artifacts=self._artifacts,
                )
                resolved = plan.algorithm
                if resolved != "IntCov":
                    self._multi_fallbacks += 1
                    solutions[k] = self.query(
                        k,
                        alpha=alpha,
                        scheme=scheme,
                        plan=plan,
                    )
                    continue
                solver_kwargs = plan.solver_kwargs()
                key = self._result_key(resolved, constraint, solver_kwargs)
                if key is not None:
                    cached = self._results.get(key)
                    if cached is not None:
                        self._result_hits += 1
                        self._results.move_to_end(key)
                        solutions[k] = cached
                        parent = current_span()
                        if parent is not None:
                            parent.annotate(result_cache_hit=True)
                        tau = cached.stats.get("tau")
                        prev_tau = float(tau) if tau is not None else prev_tau
                        continue
                anchor = self._tau_hint_for(key) if key is not None else None
                if anchor is None:
                    anchor = prev_tau
                if anchor is None:
                    self._multi_growths += 1
                else:
                    self._multi_prefix_hits += 1
                    solver_kwargs["tau_hint"] = anchor
                # The bucket cache is keyed on tau only and never affects
                # results, so it stays out of the memo key.
                solver_kwargs["bucket_cache"] = bucket_cache
                parent = current_span()
                started = time.perf_counter() if parent is not None else 0.0
                solution = solve_fairhms(
                    self._skyline,
                    constraint,
                    algorithm=resolved,
                    artifacts=self._artifacts,
                    **solver_kwargs,
                )
                if parent is not None:
                    _trace_solve(parent, started, resolved, constraint, solution)
                if key is not None:
                    self._record_tau_hint(key, solution)
                    self._result_misses += 1
                    while len(self._results) >= self._max_cached_results:
                        self._results.popitem(last=False)
                    self._results[key] = solution
                prev_tau = float(solution.stats["tau"])
                solutions[k] = solution
            return [solutions[k] for k in ks_list]

    def _result_key(self, algorithm, constraint, solver_kwargs) -> tuple | None:
        """Memoization key, or ``None`` when the query must not be cached
        (caching disabled, or an option is stateful/unhashable)."""
        if not self._cache_results:
            return None
        items = []
        for name, value in sorted(solver_kwargs.items()):
            if isinstance(value, (bool, str, type(None))):
                items.append((name, value))
            elif isinstance(value, (int, np.integer)):
                items.append((name, int(value)))
            elif isinstance(value, (float, np.floating)):
                items.append((name, float(value)))
            else:
                return None  # e.g. a Generator seed or explicit net array
        return (
            algorithm,
            int(constraint.k),
            tuple(int(v) for v in constraint.lower),
            tuple(int(v) for v in constraint.upper),
            tuple(items),
        )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    @property
    def evaluator(self) -> MhrEvaluator:
        """Shared :class:`MhrEvaluator` over the full (current) database."""
        with self._serve_lock:
            self._refresh()
            if self._evaluator is None:
                self._evaluator = MhrEvaluator(self.dataset.points)
            return self._evaluator

    def evaluate(self, solution: Solution) -> MhrEvaluation:
        """Exact (or refined-net) MHR of a solution against the full
        database; the evaluator's candidate set and direction net are
        discovered once and reused across calls."""
        points = solution.points if isinstance(solution, Solution) else solution
        with self._serve_lock:
            return self.evaluator.evaluate(np.asarray(points, dtype=np.float64))
