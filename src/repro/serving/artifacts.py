"""Precomputed per-dataset solver artifacts.

Every FairHMS solver starts from the same dataset-dependent (but
constraint-independent) state: BiGreedy needs a delta-net and the
``(m, n)`` score-ratio matrix of a :class:`~repro.hms.truncated.
TruncatedEngine`; IntCov needs the upper score-line envelope and the
``O(n^2)`` candidate-MHR enumeration.  :class:`SolverArtifacts` owns one
dataset and lazily builds and caches each artifact on first use, so a
query-serving layer (or any caller issuing many solves against one
dataset) pays for each at most once.

Cache keys and determinism:

* nets and engines are keyed by ``(m, seed)`` where ``seed`` is an
  integer — a cache miss samples ``sample_directions(m, d,
  default_rng(seed))``, exactly the stream a cold solver call would draw,
  so cached and cold results are bit-identical;
* non-integer seeds (``None`` = fresh entropy, or a live ``Generator``)
  are *bypassed*, not cached: freezing them would silently change the
  caller's randomness semantics;
* the envelope and candidate-MHR values depend only on the points and are
  cached unconditionally (2-D datasets only).

Artifacts are bound to one :class:`~repro.data.dataset.Dataset` *object*:
datasets are immutable by convention, so object identity is the cache
validity test (see :meth:`SolverArtifacts.matches`).  To serve a changed
dataset, build new artifacts (or a new index).
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from ..core.intcov import candidate_mhr_values
from ..data.dataset import Dataset
from ..geometry.deltanet import sample_directions
from ..geometry.envelope import Envelope, upper_envelope
from ..hms.truncated import TruncatedEngine

__all__ = ["SolverArtifacts"]


def _seed_key(seed) -> int | None:
    """Hashable cache key for a seed, or ``None`` when not cacheable.

    Only plain integers (and numpy integers) reproduce the same stream on
    every use; ``None`` means fresh entropy and a ``Generator`` is
    stateful, so both bypass the cache.
    """
    if isinstance(seed, bool):  # bools are ints but almost surely a bug
        return None
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return None


class SolverArtifacts:
    """Lazily built, cached per-dataset state shared across solver calls.

    Args:
        dataset: the solver-input dataset (normally a per-group skyline).
            All cached engines are built over ``dataset.points``.
    """

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        self._nets: dict[tuple[int, int], np.ndarray] = {}
        self._engines: dict[tuple[int, int], TruncatedEngine] = {}
        self._envelope: Envelope | None = None
        self._mhr_candidates: np.ndarray | None = None
        self.counters = {
            "net_hits": 0,
            "net_misses": 0,
            "net_bypasses": 0,
            "engine_hits": 0,
            "engine_misses": 0,
        }

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    def matches(self, dataset: Dataset) -> bool:
        """True iff these artifacts were built for exactly this dataset.

        Identity, not equality: datasets are immutable by convention, so a
        different object may hold different points and must not reuse
        cached state.  Solvers call this before trusting the cache and
        fall back to inline computation on a mismatch.
        """
        return dataset is self._dataset

    # ------------------------------------------------------------------ #
    # BiGreedy artifacts: delta-nets and truncated-MHR engines
    # ------------------------------------------------------------------ #

    def net(self, m: int, seed) -> np.ndarray:
        """The ``(m, d)`` direction net for ``seed``, cached for int seeds."""
        key = _seed_key(seed)
        if key is None:
            self.counters["net_bypasses"] += 1
            return sample_directions(int(m), self._dataset.dim, ensure_rng(seed))
        cache_key = (int(m), key)
        net = self._nets.get(cache_key)
        if net is None:
            self.counters["net_misses"] += 1
            net = sample_directions(int(m), self._dataset.dim, ensure_rng(key))
            self._nets[cache_key] = net
        else:
            self.counters["net_hits"] += 1
        return net

    def engine(self, m: int, seed) -> TruncatedEngine:
        """A :class:`TruncatedEngine` over the dataset for net ``(m, seed)``.

        The engine's score-ratio matrix is the dominant precomputation of
        BiGreedy; for integer seeds repeated queries with the same
        ``(m, seed)`` share one engine object.
        """
        key = _seed_key(seed)
        if key is None:
            return TruncatedEngine(self._dataset.points, self.net(m, seed))
        cache_key = (int(m), key)
        engine = self._engines.get(cache_key)
        if engine is None:
            self.counters["engine_misses"] += 1
            engine = TruncatedEngine(self._dataset.points, self.net(m, seed))
            self._engines[cache_key] = engine
        else:
            self.counters["engine_hits"] += 1
        return engine

    # ------------------------------------------------------------------ #
    # IntCov artifacts: envelope and candidate-MHR values (2-D only)
    # ------------------------------------------------------------------ #

    def envelope(self) -> Envelope:
        """Upper score-line envelope of the dataset (2-D only)."""
        if self._dataset.dim != 2:
            raise ValueError("score-line envelopes exist only for 2-D datasets")
        if self._envelope is None:
            self._envelope = upper_envelope(self._dataset.points)
        return self._envelope

    def mhr_candidates(self) -> np.ndarray:
        """IntCov's candidate optimal-MHR values ``H`` (2-D only)."""
        if self._mhr_candidates is None:
            self._mhr_candidates = candidate_mhr_values(
                self._dataset.points, self.envelope()
            )
        return self._mhr_candidates

    # ------------------------------------------------------------------ #

    def clear(self) -> None:
        """Drop every cached artifact (counters are kept).

        Engines are the memory-heavy artifact (``(m, n)`` score matrices,
        one per distinct ``(m, seed)``); callers serving adversarial or
        per-client seeds should clear periodically.
        """
        self._nets.clear()
        self._engines.clear()
        self._envelope = None
        self._mhr_candidates = None

    def cache_info(self) -> dict:
        """Hit/miss counters plus current cache occupancy."""
        info = dict(self.counters)
        info["nets_cached"] = len(self._nets)
        info["engines_cached"] = len(self._engines)
        info["envelope_cached"] = self._envelope is not None
        info["mhr_candidates_cached"] = self._mhr_candidates is not None
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverArtifacts({self._dataset.name!r}, n={self._dataset.n}, "
            f"engines={len(self._engines)})"
        )
