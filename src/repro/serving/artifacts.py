"""Precomputed per-dataset solver artifacts.

Every FairHMS solver starts from the same dataset-dependent (but
constraint-independent) state: BiGreedy needs a delta-net and the
``(m, n)`` score-ratio matrix of a :class:`~repro.hms.truncated.
TruncatedEngine`; IntCov needs the upper score-line envelope and the
``O(n^2)`` candidate-MHR enumeration.  :class:`SolverArtifacts` owns one
dataset and lazily builds and caches each artifact on first use, so a
query-serving layer (or any caller issuing many solves against one
dataset) pays for each at most once.

Cache keys and determinism:

* nets and engines are keyed by ``(m, seed)`` where ``seed`` is an
  integer — a cache miss samples ``sample_directions(m, d,
  default_rng(seed))``, exactly the stream a cold solver call would draw,
  so cached and cold results are bit-identical;
* non-integer seeds (``None`` = fresh entropy, or a live ``Generator``)
  are *bypassed*, not cached: freezing them would silently change the
  caller's randomness semantics;
* the envelope and candidate-MHR values depend only on the points and are
  cached unconditionally (2-D datasets only).

Artifacts are bound to one :class:`~repro.data.dataset.Dataset` *object*:
datasets are immutable by convention, so object identity is the cache
validity test (see :meth:`SolverArtifacts.matches`).

Epochs and staged invalidation (live serving):

The all-or-nothing :meth:`clear` is too blunt for a live index whose
dataset mutates between queries — most updates leave the solver-input
skyline unchanged, and even a changed skyline invalidates only the
*data-dependent* artifacts (engines, envelope, candidate MHRs) while the
delta-nets, which depend on ``(m, d, seed)`` alone, stay valid.  So a
data change is recorded with :meth:`bump_epoch` (same dataset object,
e.g. population counts shifted) or :meth:`rebind` (new skyline dataset
object), both of which only *stage* invalidation via per-component dirty
flags; the flags are applied lazily by :meth:`flush_invalidations`,
which every accessor (and ``solve_fairhms``) calls before trusting the
cache.  Skyline-unchanged epochs therefore keep every artifact warm.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_rng
from ..core.intcov import candidate_mhr_values
from ..data.dataset import Dataset
from ..geometry.deltanet import sample_directions
from ..geometry.envelope import Envelope, upper_envelope
from ..hms.truncated import TruncatedEngine

__all__ = ["SolverArtifacts"]


def _seed_key(seed) -> int | None:
    """Hashable cache key for a seed, or ``None`` when not cacheable.

    Only plain integers (and numpy integers) reproduce the same stream on
    every use; ``None`` means fresh entropy and a ``Generator`` is
    stateful, so both bypass the cache.
    """
    if isinstance(seed, bool):  # bools are ints but almost surely a bug
        return None
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return None


class SolverArtifacts:
    """Lazily built, cached per-dataset state shared across solver calls.

    Args:
        dataset: the solver-input dataset (normally a per-group skyline).
            All cached engines are built over ``dataset.points``.
    """

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        self._nets: dict[tuple[int, int], np.ndarray] = {}
        self._engines: dict[tuple[int, int], TruncatedEngine] = {}
        self._envelope: Envelope | None = None
        self._mhr_candidates: np.ndarray | None = None
        self._epoch = 0
        self._dirty_engines = False
        self._dirty_geometry = False  # envelope + candidate-MHR values
        self.counters = {
            "net_hits": 0,
            "net_misses": 0,
            "net_bypasses": 0,
            "engine_hits": 0,
            "engine_misses": 0,
            "epoch_bumps": 0,
            "engine_invalidations": 0,
        }

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def epoch(self) -> int:
        """Data version these artifacts serve; bumped on every data change."""
        return self._epoch

    def matches(self, dataset: Dataset) -> bool:
        """True iff these artifacts were built for exactly this dataset.

        Identity, not equality: datasets are immutable by convention, so a
        different object may hold different points and must not reuse
        cached state.  Solvers call this before trusting the cache and
        fall back to inline computation on a mismatch.
        """
        return dataset is self._dataset

    # ------------------------------------------------------------------ #
    # epochs and staged invalidation
    # ------------------------------------------------------------------ #

    def bump_epoch(self, *, skyline_changed: bool = True) -> int:
        """Advance the epoch; stage invalidation iff the data changed shape.

        ``skyline_changed=False`` records a data version the solver input
        is insensitive to (e.g. only population counts moved): every
        cached artifact stays warm and valid.  ``skyline_changed=True``
        marks the engines and the 2-D geometry (envelope + candidate
        MHRs) dirty; they are dropped lazily at the next flush.  Nets are
        never invalidated — they depend only on ``(m, d, seed)``.

        Returns the new epoch.
        """
        self._epoch += 1
        self.counters["epoch_bumps"] += 1
        if skyline_changed:
            self._dirty_engines = True
            self._dirty_geometry = True
        return self._epoch

    def rebind(self, dataset: Dataset) -> int:
        """Swap in a new dataset object and stage full data invalidation.

        The live index calls this when the maintained skyline actually
        changed (new :class:`Dataset` snapshot).  The dimension must
        match so the cached delta-nets remain valid.  Returns the new
        epoch; a no-op (epoch unchanged) when the object is already
        bound.
        """
        if dataset is self._dataset:
            return self._epoch
        if dataset.dim != self._dataset.dim:
            raise ValueError(
                f"cannot rebind artifacts across dimensions "
                f"({self._dataset.dim} -> {dataset.dim})"
            )
        self._dataset = dataset
        return self.bump_epoch(skyline_changed=True)

    def flush_invalidations(self) -> None:
        """Apply staged invalidation: drop every dirty component.

        Cheap when clean; called by every artifact accessor and by
        ``solve_fairhms`` before a solve, so a stale engine or envelope
        can never be served after a :meth:`rebind`.
        """
        if self._dirty_engines:
            if self._engines:
                self.counters["engine_invalidations"] += len(self._engines)
            self._engines.clear()
            self._dirty_engines = False
        if self._dirty_geometry:
            self._envelope = None
            self._mhr_candidates = None
            self._dirty_geometry = False

    def restore_epoch(self, epoch: int) -> int:
        """Fast-forward the epoch counter without staging invalidation.

        Snapshot restore uses this so a reloaded live index resumes at
        the epoch it was spilled at instead of restarting from 0; a
        target at or below the current epoch is a no-op (epochs are
        monotone).  Returns the resulting epoch.
        """
        if int(epoch) > self._epoch:
            self._epoch = int(epoch)
        return self._epoch

    def prime_net(self, m: int, seed: int, net: np.ndarray) -> None:
        """Install an externally provided direction net (snapshot restore).

        The caller guarantees ``net`` equals ``sample_directions(m, d,
        default_rng(seed))`` bit for bit — nets are persisted, never
        recomputed, exactly because the equality holds.
        """
        key = _seed_key(seed)
        if key is None:
            raise ValueError("only integer-seed nets are cacheable")
        net_arr = np.asarray(net, dtype=np.float64)
        if net_arr.shape != (int(m), self._dataset.dim):
            raise ValueError(
                f"net shape {net_arr.shape} does not match "
                f"(m={int(m)}, d={self._dataset.dim})"
            )
        self._nets[(int(m), key)] = net_arr

    def prime_engine(self, m: int, seed: int, engine: TruncatedEngine) -> None:
        """Install an externally restored engine (snapshot restore).

        Flushes staged invalidation first so the primed engine cannot be
        dropped by a stale dirty flag; the engine must have been built
        over exactly this dataset's points for the cached answers to be
        bit-identical.
        """
        key = _seed_key(seed)
        if key is None:
            raise ValueError("only integer-seed engines are cacheable")
        if engine.n != self._dataset.n:
            raise ValueError(
                f"engine covers {engine.n} points, dataset has {self._dataset.n}"
            )
        self.flush_invalidations()
        self._engines[(int(m), key)] = engine

    def prime_geometry(self, envelope: Envelope, mhr_candidates: np.ndarray) -> None:
        """Install externally maintained 2-D geometry (live serving).

        The live index maintains the envelope and the candidate-MHR
        values incrementally across epochs; priming them here clears the
        geometry dirty flag so the next solve uses them instead of
        recomputing from scratch.  The candidate array may contain
        duplicates — IntCov's binary search is insensitive to them.
        """
        self._envelope = envelope
        self._mhr_candidates = mhr_candidates
        self._dirty_geometry = False

    def dirty_components(self) -> tuple[str, ...]:
        """Names of components staged for invalidation (empty when clean)."""
        dirty = []
        if self._dirty_engines:
            dirty.append("engines")
        if self._dirty_geometry:
            dirty.append("geometry")
        return tuple(dirty)

    # ------------------------------------------------------------------ #
    # BiGreedy artifacts: delta-nets and truncated-MHR engines
    # ------------------------------------------------------------------ #

    def net(self, m: int, seed) -> np.ndarray:
        """The ``(m, d)`` direction net for ``seed``, cached for int seeds."""
        key = _seed_key(seed)
        if key is None:
            self.counters["net_bypasses"] += 1
            return sample_directions(int(m), self._dataset.dim, ensure_rng(seed))
        cache_key = (int(m), key)
        net = self._nets.get(cache_key)
        if net is None:
            self.counters["net_misses"] += 1
            net = sample_directions(int(m), self._dataset.dim, ensure_rng(key))
            self._nets[cache_key] = net
        else:
            self.counters["net_hits"] += 1
        return net

    def engine(self, m: int, seed) -> TruncatedEngine:
        """A :class:`TruncatedEngine` over the dataset for net ``(m, seed)``.

        The engine's score-ratio matrix is the dominant precomputation of
        BiGreedy; for integer seeds repeated queries with the same
        ``(m, seed)`` share one engine object.
        """
        self.flush_invalidations()
        key = _seed_key(seed)
        if key is None:
            return TruncatedEngine(self._dataset.points, self.net(m, seed))
        cache_key = (int(m), key)
        engine = self._engines.get(cache_key)
        if engine is None:
            self.counters["engine_misses"] += 1
            engine = TruncatedEngine(self._dataset.points, self.net(m, seed))
            self._engines[cache_key] = engine
        else:
            self.counters["engine_hits"] += 1
        return engine

    # ------------------------------------------------------------------ #
    # IntCov artifacts: envelope and candidate-MHR values (2-D only)
    # ------------------------------------------------------------------ #

    def envelope(self) -> Envelope:
        """Upper score-line envelope of the dataset (2-D only)."""
        if self._dataset.dim != 2:
            raise ValueError("score-line envelopes exist only for 2-D datasets")
        self.flush_invalidations()
        if self._envelope is None:
            self._envelope = upper_envelope(self._dataset.points)
        return self._envelope

    def mhr_candidates(self) -> np.ndarray:
        """IntCov's candidate optimal-MHR values ``H`` (2-D only)."""
        self.flush_invalidations()
        if self._mhr_candidates is None:
            self._mhr_candidates = candidate_mhr_values(
                self._dataset.points, self.envelope()
            )
        return self._mhr_candidates

    # ------------------------------------------------------------------ #
    # snapshot export: point-in-time views of the cache contents
    # ------------------------------------------------------------------ #

    def cached_nets(self) -> dict[tuple[int, int], np.ndarray]:
        """Copy of the ``(m, seed) -> net`` cache (snapshot persistence)."""
        return dict(self._nets)

    def cached_engines(self) -> dict[tuple[int, int], TruncatedEngine]:
        """Copy of the ``(m, seed) -> engine`` cache, post-invalidation.

        Staged invalidation is flushed first so a snapshot can never
        capture an engine a live index already marked stale.
        """
        self.flush_invalidations()
        return dict(self._engines)

    def cached_geometry(self) -> tuple[Envelope | None, np.ndarray | None]:
        """The cached 2-D envelope and candidate-MHR values (or Nones).

        Unlike :meth:`envelope` / :meth:`mhr_candidates` this never
        *builds* anything — a snapshot captures what is resident.
        """
        self.flush_invalidations()
        return self._envelope, self._mhr_candidates

    # ------------------------------------------------------------------ #

    def clear(self) -> None:
        """Drop every cached artifact (counters are kept).

        Engines are the memory-heavy artifact (``(m, n)`` score matrices,
        one per distinct ``(m, seed)``); callers serving adversarial or
        per-client seeds should clear periodically.
        """
        self._nets.clear()
        self._engines.clear()
        self._envelope = None
        self._mhr_candidates = None
        self._dirty_engines = False
        self._dirty_geometry = False

    def cache_bytes(self) -> int:
        """Estimated resident bytes of the cached artifacts.

        Sums every numpy array reachable from the caches — nets, engine
        score matrices (the dominant term: one ``(m, n)`` matrix per
        distinct ``(m, seed)``), the 2-D envelope, and the candidate-MHR
        values.  Used by the service registry's byte-budgeted eviction;
        safe to call while another thread fills the caches (snapshots,
        partial counts on a race — an estimate, never corruption).
        """
        total = 0
        try:
            total += sum(net.nbytes for net in list(self._nets.values()))
            for engine in list(self._engines.values()):
                for value in list(vars(engine).values()):
                    if isinstance(value, np.ndarray):
                        total += value.nbytes
        except RuntimeError:  # cache resized mid-snapshot
            pass
        envelope = self._envelope
        if envelope is not None:
            for value in list(vars(envelope).values()):
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        candidates = self._mhr_candidates
        if candidates is not None:
            total += candidates.nbytes
        return int(total)

    def cache_info(self) -> dict:
        """Hit/miss counters plus current cache occupancy and epoch."""
        info = dict(self.counters)
        info["nets_cached"] = len(self._nets)
        info["engines_cached"] = len(self._engines)
        info["envelope_cached"] = self._envelope is not None
        info["mhr_candidates_cached"] = self._mhr_candidates is not None
        info["cache_bytes"] = self.cache_bytes()
        info["epoch"] = self._epoch
        info["dirty_components"] = self.dirty_components()
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverArtifacts({self._dataset.name!r}, n={self._dataset.n}, "
            f"engines={len(self._engines)})"
        )
