"""``LiveFairHMSIndex``: serve FairHMS queries while the data changes.

The static :class:`~repro.serving.index.FairHMSIndex` is build-once: any
data change means a brand-new index, throwing away every cached delta-net,
:class:`~repro.hms.truncated.TruncatedEngine`, envelope, and memoized
result.  The live index instead accepts :meth:`~LiveFairHMSIndex.insert` /
:meth:`~LiveFairHMSIndex.delete` / :meth:`~LiveFairHMSIndex.observe_stream`
between queries and answers every query *as if* a fresh index had been
built over the surviving tuples — bit-identical results — while paying
only for what actually changed:

* a :class:`~repro.extensions.dynamic.DynamicFairHMS` maintains the
  per-group skyline incrementally (inserts are dominance checks against
  the current skyline; deletes of skyline members mark the group for a
  lazy rebuild);
* updates are applied lazily: mutating calls only bump the dynamic
  store's version, and the next query *refreshes* — advancing the
  serving **epoch** once per batch of pending updates;
* each epoch applies *staged invalidation* to the shared
  :class:`~repro.serving.artifacts.SolverArtifacts`: the result memo and
  constraint cache are dropped unconditionally (any update moves the
  population group sizes proportional constraints depend on), while
  engines and the 2-D geometry are marked dirty **only when the skyline
  actually changed** — an update dominated by the current skyline keeps
  every cache warm, and delta-nets survive every epoch because they
  depend on ``(m, d, seed)`` alone.

Normalization is frozen at build time: the paper's max-normalization is
data-dependent, so a live index scales every inserted point by the column
maxima captured when the index was created (or by 1 when built with
``normalize=False`` / from an empty start).  Points streaming in that
beat the build-time maxima simply score above 1 in that direction —
happiness *ratios* are unaffected because numerator and denominator share
the frame.

``observe_stream`` threads the bounded-memory
:class:`~repro.extensions.streaming.StreamingFairHMS` sieve in front of
the index: observed tuples enter the live set only while they are
near-champions for some net direction, and sieve evictions delete them
again, so unbounded streams serve from bounded state.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..extensions.dynamic import DynamicFairHMS
from ..extensions.streaming import StreamingFairHMS
from ..geometry.envelope import upper_envelope
from .artifacts import SolverArtifacts
from .candidates import LiveCandidateCache
from .index import FairHMSIndex

__all__ = ["LiveFairHMSIndex"]


class LiveFairHMSIndex(FairHMSIndex):
    """A :class:`FairHMSIndex` that stays fresh under inserts and deletes.

    Args:
        dataset: optional initial database; its rows are inserted with
            their ``ids`` as keys.  Omit it (and pass ``dim`` /
            ``num_groups``) to start empty.
        dim / num_groups: shape of the live table when no ``dataset`` is
            given (ignored otherwise).
        normalize: freeze the paper's max-normalization frame from the
            initial dataset's column maxima; every later insert is scaled
            by the same maxima.  With ``normalize=False`` (or an empty
            start) points are taken as-is and the caller must feed
            consistently scaled data.
        default_seed / cache_results / max_cached_results: as for
            :class:`FairHMSIndex`.
        stream_buffer_per_group / stream_slack / stream_net_size:
            configuration of the :class:`StreamingFairHMS` sieve behind
            :meth:`observe_stream` (created lazily on first use).

    Mutations are O(skyline) and never recompute artifacts themselves;
    all invalidation is staged and paid at the next query.  Like the
    static index, every public entry point — including :meth:`insert`,
    :meth:`delete`, and :meth:`observe_stream` — serializes on the
    shared :attr:`lock`, so concurrent readers and writers are safe but
    see serialized throughput; the service gateway additionally fences
    whole query batches against writes per dataset.
    """

    frozen = False

    def __init__(
        self,
        dataset: Dataset | None = None,
        *,
        dim: int | None = None,
        num_groups: int | None = None,
        normalize: bool = True,
        default_seed: int = 7,
        cache_results: bool = True,
        max_cached_results: int = 1024,
        stream_buffer_per_group: int = 256,
        stream_slack: float = 0.2,
        stream_net_size: int | None = None,
    ) -> None:
        if dataset is not None:
            dim = dataset.dim
            num_groups = dataset.num_groups
        if dim is None or num_groups is None:
            raise ValueError(
                "provide an initial dataset, or dim and num_groups for an "
                "empty start"
            )
        self._dyn = DynamicFairHMS(int(dim), int(num_groups))
        self._scale = np.ones(int(dim))
        if dataset is not None and normalize:
            col_max = dataset.points.max(axis=0)
            self._scale = np.where(col_max > 0, col_max, 1.0)
        self._stream: StreamingFairHMS | None = None
        self._stream_config = {
            "buffer_per_group": int(stream_buffer_per_group),
            "slack": float(stream_slack),
            "net_size": stream_net_size,
        }
        self._streamed: set[int] = set()
        # 2-D only: incremental IntCov candidate maintenance (the O(n^2)
        # enumeration otherwise dominates every skyline-changing epoch).
        self._candidates = LiveCandidateCache() if int(dim) == 2 else None
        if dataset is not None:
            self._dyn.bulk_insert(
                dataset.ids, dataset.points / self._scale, dataset.labels
            )
        self._skyline_keys: tuple[int, ...] = ()
        self._init_state(
            None,
            None,
            default_seed=default_seed,
            cache_results=cache_results,
            max_cached_results=max_cached_results,
        )
        self._served_version = -1  # force the first refresh
        self._refresh()

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def insert(self, key: int, point, group: int) -> None:
        """Insert tuple ``key`` (scaled into the frozen frame) into ``group``.

        O(group skyline) dominance maintenance; no artifact is touched
        until the next query refreshes the epoch.
        """
        arr = np.asarray(point, dtype=np.float64) / self._scale
        with self._serve_lock:
            self._dyn.insert(int(key), arr, int(group))

    def delete(self, key: int) -> None:
        """Delete tuple ``key``; raises ``KeyError`` if it is not alive."""
        with self._serve_lock:
            self._dyn.delete(int(key))

    def observe_stream(self, keys, points, groups) -> int:
        """Feed tuples through the bounded-memory sieve; sync the live set.

        Only near-champion tuples (within the sieve's slack of the running
        per-direction top) enter the live index; tuples the sieve evicts
        are deleted again.  Returns how many of the observed tuples were
        admitted.  Keys must not collide with directly inserted ones, and
        stream-managed keys should not be deleted manually.
        """
        with self._serve_lock:
            if self._stream is None:
                self._stream = StreamingFairHMS(
                    self._dyn.dim,
                    self._dyn.num_groups,
                    seed=self._default_seed,
                    **self._stream_config,
                )
            pts = np.asarray(points, dtype=np.float64)
            if pts.ndim == 1:
                pts = pts[None, :]
                keys = [keys]
                groups = [groups]
            admitted = self._stream.observe_many(keys, pts / self._scale, groups)
            current = self._stream.buffered_keys()
            for key in self._streamed - current:
                if key in self._dyn:  # manual deletes are tolerated
                    self._dyn.delete(key)
            for key, point, group in self._stream.buffered_items():
                if key not in self._dyn:
                    self._dyn.insert(key, point, group)
            self._streamed = current
            return admitted

    # ------------------------------------------------------------------ #
    # snapshot persistence
    # ------------------------------------------------------------------ #

    def live_state(self) -> dict:
        """Point-in-time export of the live table (snapshot persistence).

        Returns the alive tuples in deterministic ``(group, key)`` order —
        ``keys`` / ``points`` / ``groups`` arrays, with points already in
        the frozen normalization frame — plus ``scale``, the table shape,
        the update ``version``, and the serving ``epoch``.  Pending (not
        yet refreshed) updates are included: the arrays describe the data,
        not the serving state.  The streaming sieve behind
        :meth:`observe_stream` is deliberately *not* part of the state:
        its buffer is a lossy view of an unbounded stream, so a restored
        index starts a fresh sieve (see ``docs/PERSISTENCE.md``).
        """
        with self._serve_lock:
            self._refresh()
            keys: list[int] = []
            groups: list[int] = []
            points: list[np.ndarray] = []
            for key, point, group in self._dyn.items():
                keys.append(key)
                groups.append(group)
                points.append(point)
            return {
                "keys": np.asarray(keys, dtype=np.int64),
                "points": (
                    np.asarray(points)
                    if points
                    else np.empty((0, self._dyn.dim))
                ),
                "groups": np.asarray(groups, dtype=np.int64),
                "scale": self._scale.copy(),
                "dim": self._dyn.dim,
                "num_groups": self._dyn.num_groups,
                "version": self._dyn.version,
                "epoch": self.epoch,
            }

    @classmethod
    def from_live_state(
        cls,
        keys,
        points,
        groups,
        *,
        scale,
        dim: int,
        num_groups: int,
        version: int | None = None,
        epoch: int | None = None,
        **config,
    ) -> "LiveFairHMSIndex":
        """Rebuild a live index from a :meth:`live_state` export.

        The restored index answers every query bit-identically to the
        exported one: the alive table is reloaded in the same
        deterministic order, the normalization frame is reinstated
        verbatim, and version/epoch counters resume where they left off
        so epoch-stamped diagnostics and gateway version fences stay
        monotone across the spill.  ``config`` takes the
        :meth:`~FairHMSIndex.serving_config` keywords.
        """
        index = cls(dim=int(dim), num_groups=int(num_groups), **config)
        with index._serve_lock:
            index._scale = np.asarray(scale, dtype=np.float64).copy()
            keys = np.asarray(keys, dtype=np.int64)
            if keys.size:
                # Points are already in the frozen frame: load through the
                # dynamic store directly, bypassing insert()'s re-scaling.
                index._dyn.bulk_insert(keys, np.asarray(points), groups)
            if version is not None:
                index._dyn.advance_version(int(version))
            index._refresh()
            if epoch is not None and index._artifacts is not None:
                index._artifacts.restore_epoch(int(epoch))
        return index

    # ------------------------------------------------------------------ #
    # refresh / epochs
    # ------------------------------------------------------------------ #

    def _refresh(self) -> None:
        """Apply pending updates: advance the epoch, stage invalidation.

        Runs before every query (and on state inspection); a no-op while
        no update is pending, so back-to-back queries pay nothing.  One
        refresh covers *all* updates since the last one — the epoch
        advances once per batch, not once per update.
        """
        if self._dyn.version == self._served_version:
            return
        if len(self._dyn) == 0:
            self._skyline = None
            self._dataset = None
            self._skyline_keys = ()
            if self._artifacts is not None:
                self._artifacts.bump_epoch(skyline_changed=True)
            self._start_epoch()
            self._served_version = self._dyn.version
            return
        new_keys = tuple(self._dyn.skyline_keys())
        sky = self._dyn.skyline_dataset()
        # Unchanged means unchanged *content*, not just the key set: a key
        # deleted and re-inserted with different coordinates (or group)
        # must invalidate like any other skyline change.
        skyline_changed = not (
            new_keys == self._skyline_keys
            and self._skyline is not None
            and np.array_equal(sky.points, self._skyline.points)
            and np.array_equal(sky.labels, self._skyline.labels)
        )
        if skyline_changed:
            self._skyline = sky
            if self._artifacts is None:
                self._artifacts = SolverArtifacts(sky)
                self._artifacts.bump_epoch(skyline_changed=True)
            else:
                self._artifacts.rebind(sky)
            if self._candidates is not None:
                envelope = upper_envelope(sky.points)
                groups = [self._dyn.group_of(int(key)) for key in sky.ids]
                values = self._candidates.sync(
                    sky.points, sky.ids, groups, envelope
                )
                self._artifacts.prime_geometry(envelope, values)
            self._skyline_keys = new_keys
        else:
            # Same solver input, but the population counts (which
            # proportional constraints reference) may have moved.
            self._skyline.meta["population_group_sizes"] = sky.meta[
                "population_group_sizes"
            ]
            self._artifacts.bump_epoch(skyline_changed=False)
        self._dataset = None  # alive snapshot rebuilt lazily on access
        self._start_epoch()
        self._served_version = self._dyn.version

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def dataset(self) -> Dataset:
        """Snapshot of every alive tuple, rebuilt lazily per epoch."""
        self._refresh()
        if self._dataset is None:
            if len(self._dyn) == 0:
                raise ValueError("no tuples alive")
            self._dataset = self._dyn.alive_dataset("live")
        return self._dataset

    def __len__(self) -> int:
        """Alive tuples (including pending, not-yet-served updates)."""
        return len(self._dyn)

    def __contains__(self, key: int) -> bool:
        return key in self._dyn

    @property
    def version(self) -> int:
        """Update counter of the backing store (bumped per mutation)."""
        return self._dyn.version

    @property
    def scale(self) -> np.ndarray:
        """The frozen normalization frame every inserted point is scaled by."""
        return self._scale.copy()

    def group_sizes(self) -> np.ndarray:
        """Alive tuples per group (original group ids, before remap)."""
        return self._dyn.group_sizes()

    def skyline_keys(self) -> list[int]:
        """Keys of the current per-group skyline (forces maintenance)."""
        return self._dyn.skyline_keys()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sky = len(self._dyn.skyline_keys()) if len(self._dyn) else 0
        return (
            f"LiveFairHMSIndex(n={len(self._dyn)}, skyline={sky}, "
            f"d={self._dyn.dim}, C={self._dyn.num_groups}, "
            f"epoch={self.epoch}, version={self._dyn.version})"
        )
