"""Query-serving layer: precompute once, answer many FairHMS queries.

:class:`FairHMSIndex` is the front door; :class:`SolverArtifacts` is the
underlying per-dataset cache that the core solvers also accept directly
via their ``artifacts=`` parameter.  See ``docs/SERVING.md`` for what is
cached, under which keys, and the batch-query semantics.
"""

from .artifacts import SolverArtifacts
from .index import FairHMSIndex, Query

__all__ = ["FairHMSIndex", "Query", "SolverArtifacts"]
