"""Query-serving layer: precompute once, answer many FairHMS queries.

:class:`FairHMSIndex` is the front door for a frozen dataset;
:class:`LiveFairHMSIndex` extends it with incremental inserts/deletes and
a streaming ingestion front-end; :class:`SolverArtifacts` is the
underlying per-dataset cache that the core solvers also accept directly
via their ``artifacts=`` parameter.  See ``docs/SERVING.md`` for what is
cached, under which keys, the epoch/invalidation semantics of live
serving, and the batch-query semantics.
"""

from .artifacts import SolverArtifacts
from .index import FairHMSIndex, Query
from .live import LiveFairHMSIndex

__all__ = ["FairHMSIndex", "LiveFairHMSIndex", "Query", "SolverArtifacts"]
