"""Mixed read/write workload driver for live-serving benchmarks.

Builds a seeded, reproducible operation sequence over a dataset — a
fraction loaded upfront, the remainder held back as an insert pool, then
``num_ops`` operations of which ``write_frac`` are updates (alternating
inserts from the pool and deletes of random alive tuples) and the rest
are queries cycling over a ``k`` sweep — and replays it against two
deployments:

* **live** — one :class:`~repro.serving.live.LiveFairHMSIndex` absorbing
  the updates in place;
* **rebuild-per-update** — what a stateless deployment does: every
  update invalidates the index, and the next query pays a full
  :class:`~repro.serving.index.FairHMSIndex` build over the surviving
  tuples.

Both sides answer every query from the same frozen normalization frame,
so results must agree bit for bit; :func:`run_mixed_workload` verifies
that before reporting the amortized speedup.  Used by
``benchmarks/bench_live.py`` and the ``repro live`` CLI subcommand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import Dataset
from .index import FairHMSIndex
from .live import LiveFairHMSIndex

__all__ = [
    "Op",
    "RebuildPerUpdateBaseline",
    "build_mixed_workload",
    "replay_ops",
    "run_mixed_workload",
]


@dataclass(frozen=True)
class Op:
    """One workload operation: a query, an insert, or a delete."""

    kind: str  # "query" | "insert" | "delete"
    key: int = -1
    point: np.ndarray | None = None
    group: int = -1
    k: int = 0


@dataclass
class WorkloadReport:
    """Timings and integrity results of one replayed workload."""

    num_ops: int
    num_queries: int
    num_updates: int
    live_build: float
    live_total: float
    rebuild_build: float
    rebuild_total: float
    identical: bool
    epochs: int
    mismatches: list = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Amortized speedup, initial index builds included."""
        return (self.rebuild_build + self.rebuild_total) / max(
            self.live_build + self.live_total, 1e-12
        )


def build_mixed_workload(
    dataset: Dataset,
    *,
    num_ops: int = 200,
    write_frac: float = 0.2,
    ks=(4, 6, 8),
    initial_frac: float = 0.75,
    seed: int = 0,
) -> tuple[Dataset, list[Op]]:
    """Split ``dataset`` into an initial load and a pool; generate ops.

    Deletes never shrink a group below ``max(ks) + 2`` tuples so every
    query stays feasible; inserts stop when the pool is exhausted (the
    op becomes a delete instead, and vice versa).  Exactly ``num_ops``
    ops are always produced: when a write is drawn but *neither* an
    insert (pool exhausted) nor a delete (every group at its floor) is
    possible, the op falls back to a query — so ``write_frac=1.0`` over
    a small pool degrades gracefully instead of silently shortening the
    sequence.  ``write_frac=0.0`` yields a pure query stream.
    """
    if not 0.0 <= write_frac <= 1.0:
        raise ValueError(f"write_frac must lie in [0, 1], got {write_frac}")
    if not 0.0 < initial_frac < 1.0:
        raise ValueError(f"initial_frac must lie in (0, 1), got {initial_frac}")
    ks = tuple(int(k) for k in ks)
    if not ks or min(ks) < 1:
        raise ValueError(f"ks needs at least one positive size, got {ks!r}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.n)
    cut = max(1, int(round(initial_frac * dataset.n)))
    initial_idx = order[:cut].tolist()
    pool_idx = order[cut:].tolist()
    # Every group must appear in the initial load: Dataset.subset would
    # otherwise compactly remap labels, and pool ops (which carry the
    # original group ids) would target the wrong — or a nonexistent —
    # group on both the live and baseline sides.
    present = {int(dataset.labels[i]) for i in initial_idx}
    for c in range(dataset.num_groups):
        if c in present:
            continue
        for pos, idx in enumerate(pool_idx):
            if int(dataset.labels[idx]) == c:
                initial_idx.append(pool_idx.pop(pos))
                break
    initial = dataset.subset(np.sort(np.asarray(initial_idx, dtype=np.int64)))
    pool = [
        (int(dataset.ids[i]), dataset.points[i], int(dataset.labels[i]))
        for i in pool_idx
    ]
    min_group = max(ks) + 2
    group_sizes = {
        c: int(s) for c, s in enumerate(initial.group_sizes)
    }
    alive_by_group: dict[int, list[int]] = {
        c: [int(k) for k, lab in zip(initial.ids, initial.labels) if lab == c]
        for c in range(initial.num_groups)
    }
    ops: list[Op] = []
    pool_pos = 0
    k_cycle = 0
    for _ in range(int(num_ops)):
        if rng.random() < write_frac:
            do_insert = rng.random() < 0.5
            deletable = [
                c for c, size in group_sizes.items() if size > min_group
            ]
            if do_insert and pool_pos >= len(pool):
                do_insert = False
            if not do_insert and not deletable:
                do_insert = pool_pos < len(pool)
                if not do_insert:
                    # Nothing mutable: degrade to a query so the sequence
                    # keeps its promised length.
                    ops.append(Op("query", k=int(ks[k_cycle % len(ks)])))
                    k_cycle += 1
                    continue
            if do_insert:
                key, point, group = pool[pool_pos]
                pool_pos += 1
                ops.append(Op("insert", key=key, point=point, group=group))
                group_sizes[group] = group_sizes.get(group, 0) + 1
                alive_by_group.setdefault(group, []).append(key)
            else:
                group = int(deletable[int(rng.integers(0, len(deletable)))])
                members = alive_by_group[group]
                pick = int(rng.integers(0, len(members)))
                key = members.pop(pick)
                group_sizes[group] -= 1
                ops.append(Op("delete", key=key, group=group))
        else:
            ops.append(Op("query", k=int(ks[k_cycle % len(ks)])))
            k_cycle += 1
    return initial, ops


class RebuildPerUpdateBaseline:
    """The stateless deployment: any update throws the whole index away.

    Holds the alive tuples in a :class:`DynamicFairHMS` used purely as a
    keyed store — only :meth:`~repro.extensions.dynamic.DynamicFairHMS.
    alive_dataset` is consumed, so snapshots share the live index's
    ``(group, key)`` row order (making answers comparable bit for bit)
    while the skyline is still batch-extracted from scratch inside every
    :class:`FairHMSIndex` rebuild.
    """

    def __init__(self, initial: Dataset, scale: np.ndarray, **index_kwargs) -> None:
        from ..extensions.dynamic import DynamicFairHMS

        self._scale = scale
        self._store = DynamicFairHMS(initial.dim, initial.num_groups)
        self._store.bulk_insert(
            initial.ids, initial.points / scale, initial.labels
        )
        self._index_kwargs = index_kwargs
        self._index: FairHMSIndex | None = None
        self.rebuilds = 0

    def insert(self, key: int, point, group: int) -> None:
        self._store.insert(
            int(key), np.asarray(point, dtype=np.float64) / self._scale, int(group)
        )
        self._index = None

    def delete(self, key: int) -> None:
        self._store.delete(int(key))
        self._index = None

    @property
    def index(self) -> FairHMSIndex:
        if self._index is None:
            self._index = FairHMSIndex(
                self._store.alive_dataset("rebuild"),
                normalize=False,
                **self._index_kwargs,
            )
            self.rebuilds += 1
        return self._index

    def query(self, k: int, **kwargs):
        return self.index.query(k, **kwargs)


def replay_ops(
    initial: Dataset,
    ops,
    *,
    default_seed: int = 7,
    eps: float = 0.02,
    alpha: float = 0.1,
    algorithm: str = "auto",
    verify: bool = True,
) -> WorkloadReport:
    """Replay a prepared op sequence on both deployments and compare.

    The generalized core of :func:`run_mixed_workload`: ``ops`` may come
    from :func:`build_mixed_workload` or from a scenario's event stream
    (``repro.scenarios``).  Returns a :class:`WorkloadReport`;
    ``report.identical`` is the bit-identity check over every query
    answered (compared by selected ``ids`` and the solver's own MHR
    estimate at the matching epoch) — vacuously true for an all-writes
    sequence with no queries.
    """
    ops = list(ops)
    num_queries = sum(1 for op in ops if op.kind == "query")
    num_updates = len(ops) - num_queries
    query_kwargs = dict(eps=eps, algorithm=algorithm, alpha=alpha)

    t0 = time.perf_counter()
    live = LiveFairHMSIndex(initial, default_seed=default_seed)
    live_build = time.perf_counter() - t0
    live_results = []
    t0 = time.perf_counter()
    for op in ops:
        if op.kind == "insert":
            live.insert(op.key, op.point, op.group)
        elif op.kind == "delete":
            live.delete(op.key)
        else:
            live_results.append(live.query(op.k, **query_kwargs))
    live_total = time.perf_counter() - t0
    epochs = live.epoch

    scale = live.scale
    t0 = time.perf_counter()
    baseline = RebuildPerUpdateBaseline(
        initial, scale, default_seed=default_seed
    )
    baseline.index  # build the initial index eagerly, like the live side
    rebuild_build = time.perf_counter() - t0
    rebuild_results = []
    t0 = time.perf_counter()
    for op in ops:
        if op.kind == "insert":
            baseline.insert(op.key, op.point, op.group)
        elif op.kind == "delete":
            baseline.delete(op.key)
        else:
            rebuild_results.append(baseline.query(op.k, **query_kwargs))
    rebuild_total = time.perf_counter() - t0

    identical = True
    mismatches = []
    if verify:
        for i, (w, c) in enumerate(zip(live_results, rebuild_results)):
            same = np.array_equal(w.ids, c.ids) and (
                w.mhr_estimate == c.mhr_estimate
            )
            if not same:
                identical = False
                mismatches.append(i)
    return WorkloadReport(
        num_ops=len(ops),
        num_queries=num_queries,
        num_updates=num_updates,
        live_build=live_build,
        live_total=live_total,
        rebuild_build=rebuild_build,
        rebuild_total=rebuild_total,
        identical=identical,
        epochs=epochs,
        mismatches=mismatches,
    )


def run_mixed_workload(
    dataset: Dataset,
    *,
    num_ops: int = 200,
    write_frac: float = 0.2,
    ks=(4, 6, 8),
    initial_frac: float = 0.75,
    seed: int = 0,
    default_seed: int = 7,
    eps: float = 0.02,
    alpha: float = 0.1,
    algorithm: str = "auto",
    verify: bool = True,
) -> WorkloadReport:
    """Build one mixed workload over ``dataset`` and :func:`replay_ops` it."""
    initial, ops = build_mixed_workload(
        dataset,
        num_ops=num_ops,
        write_frac=write_frac,
        ks=ks,
        initial_frac=initial_frac,
        seed=seed,
    )
    return replay_ops(
        initial,
        ops,
        default_seed=default_seed,
        eps=eps,
        alpha=alpha,
        algorithm=algorithm,
        verify=verify,
    )
