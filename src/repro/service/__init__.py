"""Concurrent multi-dataset serving: registry, gateway, sharded builds.

``repro.serving`` answers many queries over *one* dataset fast;
``repro.service`` scales that across datasets and concurrent callers:

* :class:`DatasetRegistry` — many named ``FairHMSIndex`` /
  ``LiveFairHMSIndex`` instances, built lazily and LRU-evicted under a
  byte budget (rebuilds are bit-identical);
* :func:`build_index_sharded` / :func:`parallel_preprocess` — cold
  builds with normalization + per-group skyline extraction partitioned
  across a process pool, bit-identical to the sequential build;
* :class:`Gateway` — micro-batching request scheduler: coalesces
  identical concurrent queries into one solve, serializes each
  dataset's writes against its query batches (epoch fencing), and runs
  different datasets in parallel;
* :class:`ServiceMetrics` — per-dataset latency histograms and
  solve/coalesce/eviction counters, exported as one ``snapshot()`` dict;
* :class:`SnapshotStore` — versioned on-disk snapshots of warm indexes
  (checksummed npz + JSON manifest); the registry's ``spill_dir=`` tier
  evicts to it and reloads from it, and it warm-starts new processes.

See ``docs/SCALING.md`` for the architecture, the shard-merge
correctness argument, and tuning guidance; ``benchmarks/
bench_service.py`` and the ``repro service`` CLI subcommand measure it.
"""

from .gateway import Gateway
from .metrics import LatencyHistogram, ServiceMetrics
from .registry import DatasetRegistry
from .shard import build_index_sharded, parallel_preprocess, shard_spans
from .store import (
    SnapshotError,
    SnapshotStore,
    dataset_fingerprint,
    load_index,
    save_index,
)
from .workload import (
    ServiceBenchReport,
    ServiceRequest,
    build_tenant_datasets,
    build_tenant_workload,
    naive_solve,
    run_service_benchmark,
)

__all__ = [
    "DatasetRegistry",
    "Gateway",
    "LatencyHistogram",
    "ServiceBenchReport",
    "ServiceMetrics",
    "ServiceRequest",
    "SnapshotError",
    "SnapshotStore",
    "build_index_sharded",
    "build_tenant_datasets",
    "build_tenant_workload",
    "dataset_fingerprint",
    "load_index",
    "naive_solve",
    "parallel_preprocess",
    "run_service_benchmark",
    "save_index",
    "shard_spans",
]
