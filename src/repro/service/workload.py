"""Seeded multi-tenant workload driver for the service gateway.

Builds a reproducible stream of queries across several named datasets —
tenant popularity is Zipf-ish (a few hot datasets take most traffic) and
each tenant's queries are drawn mostly from a small *hot set* (real
traffic repeats itself; that redundancy is what coalescing and result
memoization exploit) — and replays it two ways:

* **gateway** — all requests submitted concurrently through a
  :class:`~repro.service.gateway.Gateway` over a fresh
  :class:`~repro.service.registry.DatasetRegistry` (indexes cold-build
  on first touch, so the measured time includes every build);
* **naive** — the stateless deployment: a one-query-at-a-time loop that
  redoes normalization, skyline extraction, and the full solve per
  request, exactly what PR 1 measured as the "cold" path.

Every gateway answer is verified **bit-identical** (selected ids and the
solver's MHR estimate) to the naive loop's independently computed answer
for the same request — coalesced or not — before any speedup is
reported.  Used by ``benchmarks/bench_service.py`` and the
``repro service`` CLI subcommand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.solve import solve_fairhms
from ..planner import default_planner
from ..data.dataset import Dataset
from ..data.synthetic import anticorrelated_dataset
from ..fairness.constraints import FairnessConstraint
from ..serving.index import Query
from .gateway import Gateway
from .registry import DatasetRegistry

__all__ = [
    "ServiceBenchReport",
    "ServiceRequest",
    "build_tenant_datasets",
    "build_tenant_workload",
    "naive_solve",
    "run_service_benchmark",
]


def build_tenant_datasets(
    n: int, *, tenants: int = 3, d: int = 2, groups: int = 3, base_seed: int = 40
) -> dict:
    """The standard multi-tenant population: independent AntiCor tenants.

    One definition shared by ``benchmarks/bench_service.py``,
    ``benchmarks/bench_server.py``, and the ``repro service`` CLI, so
    "the 3-tenant workload" always means the same datasets (distinct
    seeds ``base_seed + i``, names ``tenant<i>``) everywhere a speedup
    or throughput number is quoted.
    """
    return {
        f"tenant{i}": anticorrelated_dataset(
            n, d, groups, seed=base_seed + i, name=f"tenant{i}"
        )
        for i in range(int(tenants))
    }


@dataclass(frozen=True)
class ServiceRequest:
    """One tenant request: which dataset, and the query to answer."""

    dataset: str
    query: Query


@dataclass
class ServiceBenchReport:
    """Timings and integrity results of one gateway-vs-naive replay."""

    num_requests: int
    num_datasets: int
    gateway_total: float
    naive_total: float
    solves: int
    coalesced: int
    result_hits: int
    identical: bool
    mismatches: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    scenario: str | None = None

    @property
    def speedup(self) -> float:
        """Naive serial loop time over gateway time (builds included)."""
        return self.naive_total / max(self.gateway_total, 1e-12)

    @property
    def throughput(self) -> float:
        """Gateway requests answered per second."""
        return self.num_requests / max(self.gateway_total, 1e-12)


def build_tenant_workload(
    names,
    *,
    num_requests: int = 60,
    ks=(4, 6, 8),
    eps: float = 0.02,
    algorithm: str = "auto",
    alpha: float = 0.1,
    hot_frac: float = 0.7,
    seed: int = 0,
) -> list[ServiceRequest]:
    """Seeded multi-tenant request stream with realistic redundancy.

    Tenant ``i`` receives traffic proportional to ``1 / (i + 1)``
    (Zipf-ish skew).  With probability ``hot_frac`` a request repeats
    one of the tenant's three *hot* queries; otherwise it draws a
    uniform ``k`` from ``ks``.  All parameters come from finite sets, so
    duplicates — the coalescing and memoization fuel — occur at
    realistic rates and the stream is exactly reproducible from
    ``seed``.
    """
    names = list(names)
    if not names:
        raise ValueError("need at least one dataset name")
    ks = tuple(int(k) for k in ks)
    if not ks or min(ks) < 1:
        raise ValueError(f"ks needs at least one positive size, got {ks!r}")
    if not 0.0 <= hot_frac <= 1.0:
        raise ValueError(f"hot_frac must lie in [0, 1], got {hot_frac}")
    rng = np.random.default_rng(seed)
    weights = np.array([1.0 / (i + 1) for i in range(len(names))])
    weights /= weights.sum()
    hot_sets = {
        name: [ks[(i + j) % len(ks)] for j in range(3)]
        for i, name in enumerate(names)
    }
    requests: list[ServiceRequest] = []
    for _ in range(int(num_requests)):
        name = names[int(rng.choice(len(names), p=weights))]
        if rng.random() < hot_frac:
            hot = hot_sets[name]
            k = hot[int(rng.integers(0, len(hot)))]
        else:
            k = ks[int(rng.integers(0, len(ks)))]
        requests.append(
            ServiceRequest(
                dataset=name,
                query=Query(k=k, eps=eps, algorithm=algorithm, alpha=alpha),
            )
        )
    return requests


def naive_solve(data: Dataset, query: Query, *, default_seed: int = 7):
    """One fully stateless solve, as a no-index deployment would do it.

    Re-runs normalization, per-group skyline extraction, constraint
    construction (the paper's Section 5.1 recipe with availability
    capping — exactly what ``FairHMSIndex.constraint_for`` builds), and
    the solver, sharing nothing between calls.  This is both the
    throughput baseline and the bit-identity oracle for gateway answers.
    """
    sky = data.normalized().skyline(per_group=True)
    if query.constraint is not None:
        constraint = query.constraint
    else:
        base = FairnessConstraint.proportional(
            query.k, sky.population_group_sizes, alpha=query.alpha, clamp=True
        )
        constraint = base.capped_by_availability(sky.group_sizes)
    algorithm = default_planner().resolve(sky, constraint, query.algorithm)
    seed = query.seed if query.seed is not None else default_seed
    kwargs = dict(query.options)
    if algorithm != "IntCov":
        kwargs.setdefault("epsilon", float(query.eps))
        kwargs.setdefault("seed", seed)
    return solve_fairhms(sky, constraint, algorithm=algorithm, **kwargs)


def run_service_benchmark(
    datasets: dict[str, Dataset],
    *,
    num_requests: int = 60,
    ks=(4, 6, 8),
    eps: float = 0.02,
    algorithm: str = "auto",
    alpha: float = 0.1,
    hot_frac: float = 0.7,
    seed: int = 0,
    default_seed: int = 7,
    batch_window: float = 0.005,
    max_bytes: int | None = None,
    build_workers: int = 0,
    naive: bool = True,
    verify: bool = True,
    requests: list[ServiceRequest] | None = None,
    scenario: str | None = None,
) -> ServiceBenchReport:
    """Replay one multi-tenant workload through the gateway and naively.

    The gateway pass submits every request up front (maximal concurrency
    — all requests are in flight together, as under load) and waits for
    all futures; index builds happen lazily inside and are charged to
    the gateway.  With ``naive=False`` the serial loop is skipped
    (``naive_total`` is 0 and no identity check runs) — useful for
    profiling the gateway alone.

    ``requests`` overrides the built-in Zipf/hot-set stream with a
    prepared one — e.g. a scenario trace from ``repro.scenarios`` — in
    which case the stream-shape parameters (``num_requests``, ``ks``,
    ``hot_frac``, ``seed``) are ignored.  ``scenario`` labels the report
    and the metrics snapshot with the scenario name.
    """
    if requests is None:
        requests = build_tenant_workload(
            datasets,
            num_requests=num_requests,
            ks=ks,
            eps=eps,
            algorithm=algorithm,
            alpha=alpha,
            hot_frac=hot_frac,
            seed=seed,
        )
    else:
        requests = list(requests)
        unknown = {r.dataset for r in requests} - set(datasets)
        if unknown:
            raise ValueError(
                f"prepared requests target unregistered datasets: {sorted(unknown)}"
            )
    registry = DatasetRegistry(max_bytes=max_bytes)
    registry.metrics.scenario = scenario
    for name, data in datasets.items():
        registry.register(
            name, data, build_workers=build_workers, default_seed=default_seed
        )
    gateway = Gateway(registry, batch_window=batch_window)
    t0 = time.perf_counter()
    with gateway:
        futures = [
            gateway.submit(
                r.dataset,
                r.query.k,
                eps=r.query.eps,
                algorithm=r.query.algorithm,
                alpha=r.query.alpha,
            )
            for r in requests
        ]
        gateway_results = [f.result(timeout=600) for f in futures]
    gateway_total = time.perf_counter() - t0

    naive_total = 0.0
    identical = True
    mismatches: list[int] = []
    if naive:
        t0 = time.perf_counter()
        naive_results = [
            naive_solve(datasets[r.dataset], r.query, default_seed=default_seed)
            for r in requests
        ]
        naive_total = time.perf_counter() - t0
        if verify:
            for i, (g, c) in enumerate(zip(gateway_results, naive_results)):
                same = np.array_equal(g.ids, c.ids) and (
                    g.mhr_estimate == c.mhr_estimate
                )
                if not same:
                    identical = False
                    mismatches.append(i)

    snapshot = registry.metrics.snapshot()
    totals = snapshot["totals"]
    return ServiceBenchReport(
        num_requests=len(requests),
        num_datasets=len(datasets),
        gateway_total=gateway_total,
        naive_total=naive_total,
        solves=totals.get("solves", 0),
        coalesced=totals.get("coalesced", 0),
        result_hits=sum(
            index.cache_info()["result_hits"]
            for name in datasets
            if (index := registry.peek(name)) is not None
        ),
        identical=identical,
        mismatches=mismatches,
        metrics=snapshot,
        scenario=scenario,
    )
