"""Sharded parallel dataset preprocessing (normalize + per-group skyline).

A cold ``FairHMSIndex`` build is dominated by the paper's preprocessing:
max-normalization and per-group skyline extraction over all ``n`` rows.
Both decompose over row shards:

* **normalization** — per-shard column maxima merged with ``np.maximum``
  equal the global maxima exactly, and dividing every shard by the same
  merged scale reproduces ``max_normalize`` of the full matrix bit for
  bit (see :func:`repro.data.normalize.column_scale`);
* **skyline** — the per-group skyline of a union is the per-group
  skyline of the union of per-shard per-group skylines: a point
  dominated within its shard is dominated in the union, and dominance is
  transitive, so every dominator chain ends at a point that survives its
  shard's skyline.  Computing per-shard skylines in parallel and then
  re-filtering the merged candidates yields exactly the sequential
  result.

The merge step is itself parallel: candidates are sorted by
non-increasing coordinate sum (a dominator's sum is always >= its
victim's, in floating point too), the rows are cut into equal-*work*
chunks, and each chunk is filtered against its sum-prefix independently
(:func:`repro.geometry.dominance.dominated_chunk_mask`).  This matters
because on dominance-light data (e.g. anti-correlated workloads) the
per-shard phase removes almost nothing and the merge *is* the build.
For 2-D data the merge instead uses the sequential ``O(n log n)`` sweep,
which no parallel filter beats.

``parallel_preprocess`` returns the same ``(normalized, skyline)`` pair
— same ids, points, labels, and provenance — that
``dataset.normalized().skyline(per_group=True)`` produces, so an index
built from it answers every query bit-identically to a sequentially
built one.  With ``max_workers <= 1`` everything runs inline (no process
pool), which keeps the path usable on single-core machines and in tests.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..data.dataset import Dataset
from ..data.normalize import max_normalize
from ..geometry.dominance import dominated_chunk_mask, grouped_skyline_indices
from ..serving.index import FairHMSIndex

__all__ = [
    "build_index_sharded",
    "parallel_preprocess",
    "shard_spans",
]

#: Below this candidate count the parallel merge is pure overhead.
_SMALL_MERGE = 4096


def resolve_workers(max_workers: int | None) -> int:
    """Worker count to use: ``None`` means all available cores."""
    if max_workers is None:
        return len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
            os.cpu_count() or 1
        )
    return max(0, int(max_workers))


def shard_spans(n: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal row spans covering ``range(n)``.

    Contiguity keeps the shard -> global index mapping a single offset
    add, and makes the concatenated per-shard results globally sorted.
    """
    if n <= 0:
        return []
    shards = max(1, min(int(num_shards), n))
    bounds = np.linspace(0, n, shards + 1).astype(np.int64)
    return [
        (int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a
    ]


def _shard_skyline_worker(payload) -> np.ndarray:
    """Normalize one raw row shard and return its per-group skyline rows.

    ``scale`` is the *global* column maxima, so the shard is normalized
    exactly as it would be inside the full matrix; returned indices are
    shard-local.
    """
    points, labels, num_groups, scale = payload
    normalized = max_normalize(points, scale=scale)
    return grouped_skyline_indices(normalized, labels, num_groups)


def _merge_chunk_worker(payload) -> np.ndarray:
    """Dominance-filter one chunk of sum-sorted merge candidates."""
    prefix, start, stop, limits = payload
    return dominated_chunk_mask(prefix, start, stop, limits)


def _equal_work_bounds(n: int, num_chunks: int) -> list[int]:
    """Chunk boundaries equalizing filter *work*, not row count.

    Filtering sorted row ``i`` costs ~``i`` comparisons (its sum-prefix),
    so chunk ``[a, b)`` costs ~``(b^2 - a^2) / 2``; square-root spacing
    makes all chunks equally expensive.
    """
    chunks = max(1, min(int(num_chunks), n))
    bounds = sorted({round(n * math.sqrt(t / chunks)) for t in range(chunks + 1)})
    if bounds[0] != 0:
        bounds.insert(0, 0)
    bounds[-1] = n
    return [int(b) for b in bounds]


def _filter_group_parallel(
    points: np.ndarray, rows: np.ndarray, submit, num_chunks: int
) -> np.ndarray:
    """Exact skyline of ``points[rows]`` via the parallel prefix filter.

    Returns the surviving members of ``rows`` (order unspecified; the
    caller sorts the final union).  ``submit`` maps the chunk worker over
    payloads — either a pool's ``map`` or the builtin for inline runs.
    """
    pts = points[rows]
    sums = pts.sum(axis=1)
    order = np.argsort(-sums, kind="stable")
    sorted_pts = np.ascontiguousarray(pts[order])
    sorted_sums = sums[order]
    # Rows with a coordinate sum >= this row's can dominate it; ties are
    # included (see dominated_chunk_mask on float monotonicity).
    limits = np.searchsorted(-sorted_sums, -sorted_sums, side="right")
    bounds = _equal_work_bounds(rows.size, num_chunks)
    payloads = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        needed = int(max(limits[a:b].max(), b))
        payloads.append((sorted_pts[:needed], a, b, limits[a:b]))
    dominated = np.concatenate(list(submit(_merge_chunk_worker, payloads)))
    return rows[order[~dominated]]


def parallel_preprocess(
    dataset: Dataset,
    *,
    num_shards: int | None = None,
    max_workers: int | None = None,
) -> tuple[Dataset, Dataset]:
    """Normalize ``dataset`` and extract its per-group skyline, sharded.

    Bit-identical to ``(dataset.normalized(),
    dataset.normalized().skyline(per_group=True))`` — same row sets,
    ids, float values, and ``population_group_sizes`` provenance.

    Args:
        dataset: the raw database.
        num_shards: row shards for the per-shard skyline phase; defaults
            to twice the worker count (load balancing) and is capped by
            ``n``.
        max_workers: process-pool size.  ``None`` uses every available
            core; ``0`` or ``1`` runs both phases inline with no pool.

    Returns:
        ``(normalized, skyline)`` — the two datasets a ``FairHMSIndex``
        build produces; feed them to
        :meth:`~repro.serving.index.FairHMSIndex.from_preprocessed`.
    """
    workers = resolve_workers(max_workers)
    if num_shards is None:
        # At least 8 shards even inline: sharding pays off *without* a
        # pool, because per-shard SFS scans are quadratic in shard size
        # (8 shards do ~1/8 the comparisons of one full scan) and the
        # vectorized merge filter runs at numpy speed where the
        # sequential scan pays a python-level loop per row.  More
        # workers still get proportionally more shards.
        num_shards = max(2 * workers, 8)
    normalized = dataset.normalized()
    scale = dataset.points.max(axis=0)
    spans = shard_spans(dataset.n, num_shards)
    shard_payloads = [
        (dataset.points[a:b], dataset.labels[a:b], dataset.num_groups, scale)
        for a, b in spans
    ]

    def _inline_map(fn, payloads):
        return [fn(p) for p in payloads]

    if workers > 1 and len(shard_payloads) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            locals_ = list(pool.map(_shard_skyline_worker, shard_payloads))
            candidates = _gather_candidates(spans, locals_)
            idx = (
                candidates
                if len(spans) == 1
                else _merge_candidates(
                    normalized, candidates, lambda fn, ps: pool.map(fn, ps)
                )
            )
    else:
        locals_ = _inline_map(_shard_skyline_worker, shard_payloads)
        candidates = _gather_candidates(spans, locals_)
        # A single shard's per-group skyline is already exact: no merge.
        idx = (
            candidates
            if len(spans) == 1
            else _merge_candidates(normalized, candidates, _inline_map)
        )

    skyline = normalized.subset(idx)
    # Same provenance Dataset.skyline records: proportional constraints
    # reference the original database's group sizes, not the skyline's.
    population = normalized.meta.get("population_group_sizes")
    if population is None:
        population = normalized.group_sizes.tolist()
    skyline.meta["population_group_sizes"] = list(population)
    return normalized, skyline


def _gather_candidates(spans, locals_) -> np.ndarray:
    """Shard-local skyline indices -> one sorted global candidate array."""
    if not locals_:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([a + loc for (a, _), loc in zip(spans, locals_)])


def _merge_candidates(normalized: Dataset, candidates: np.ndarray, submit):
    """Per-group skyline of the merged shard candidates (exact)."""
    if candidates.size == 0:
        return candidates
    if normalized.dim == 2 or candidates.size <= _SMALL_MERGE:
        # The 2-D sweep is O(n log n) — no parallel filter beats it —
        # and tiny candidate sets are not worth shipping to workers.
        local = grouped_skyline_indices(
            normalized.points[candidates],
            normalized.labels[candidates],
            normalized.num_groups,
        )
        return candidates[local]
    labels = normalized.labels[candidates]
    kept: list[np.ndarray] = []
    for c in range(normalized.num_groups):
        rows = candidates[labels == c]
        if rows.size == 0:
            continue
        if rows.size <= _SMALL_MERGE // 4:
            local = grouped_skyline_indices(
                normalized.points[rows], np.zeros(rows.size, dtype=np.int64), 1
            )
            kept.append(rows[local])
        else:
            kept.append(
                _filter_group_parallel(
                    normalized.points, rows, submit, num_chunks=16
                )
            )
    return np.sort(np.concatenate(kept))


def build_index_sharded(
    dataset: Dataset,
    *,
    num_shards: int | None = None,
    max_workers: int | None = None,
    **index_kwargs,
) -> FairHMSIndex:
    """Cold-build a ``FairHMSIndex`` with sharded parallel preprocessing.

    Produces an index whose every answer is bit-identical to
    ``FairHMSIndex(dataset, **index_kwargs)`` — the preprocessing is the
    same computation, just partitioned across a process pool — at a
    fraction of the build latency on multi-core machines (the per-shard
    and merge phases both parallelize; see the module docstring).

    ``index_kwargs`` are forwarded to
    :meth:`FairHMSIndex.from_preprocessed` (``default_seed``,
    ``cache_results``, ``max_cached_results``).
    """
    normalized, skyline = parallel_preprocess(
        dataset, num_shards=num_shards, max_workers=max_workers
    )
    return FairHMSIndex.from_preprocessed(normalized, skyline, **index_kwargs)
