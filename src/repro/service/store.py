"""Versioned on-disk snapshots of serving indexes: the registry's spill tier.

Everything a warm :class:`~repro.serving.index.FairHMSIndex` holds is a
deterministic array — the normalized dataset, the per-group skyline, the
delta-nets, the engines' score-ratio matrices, IntCov's envelope and
candidate-MHR values, and the memoized solution indices.  A
:class:`SnapshotStore` persists those arrays bit-exactly (one ``npz`` +
one JSON manifest per snapshot) so that

* an evicted index **reloads** instead of rebuilding — same answers, a
  fraction of the cost (``benchmarks/bench_snapshot.py`` measures it);
* a **process restart** warm-starts from disk instead of from nothing;
* a :class:`~repro.serving.live.LiveFairHMSIndex` becomes *spillable*:
  its alive table (the system of record for applied inserts/deletes) is
  part of the snapshot, so budget pressure no longer has to pin it.

Snapshot layout (``<root>/<name>/``):

* ``arrays-<checksum>.npz`` — every numpy array, under structured keys
  (``dataset.points``, ``net.<m>.<seed>``, ``engine.<m>.<seed>``,
  ``memo.<i>``, ``live.keys``, ...); content-addressed by the payload
  checksum so an overwrite never touches the previous payload in place;
* ``manifest.json`` — format version, kind (``frozen`` / ``live``), the
  payload file name, a git-independent SHA-256 **content checksum** over
  the arrays, a **dataset fingerprint** identifying the data the
  snapshot answers for, the index's serving config, epoch/version
  counters, and the metadata needed to rebuild ``Dataset`` /
  ``Solution`` objects.

The manifest is written last and atomically (temp file + rename) and is
the only commit point: a crash anywhere mid-save — including an
overwrite of an existing snapshot — leaves the previous complete
snapshot readable (or none, on a first save); superseded payloads are
garbage collected only after the new manifest is durable.
:meth:`SnapshotStore.load_index` verifies the checksum (and the format
version) before trusting anything, raising :class:`SnapshotError` on any
corruption.  See ``docs/PERSISTENCE.md`` for the format contract and the
live-index durability caveats.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import time
import zipfile
from pathlib import Path
from urllib.parse import quote, unquote

import numpy as np

from ..core.solution import Solution
from ..data.dataset import Dataset
from ..fairness.constraints import FairnessConstraint
from ..geometry.envelope import Envelope
from ..hms.truncated import TruncatedEngine
from ..serving.index import FairHMSIndex
from ..serving.live import LiveFairHMSIndex

__all__ = [
    "FORMAT_VERSION",
    "SnapshotError",
    "SnapshotStore",
    "dataset_fingerprint",
    "load_index",
    "save_index",
]

#: On-disk format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_ARRAYS_PREFIX = "arrays-"  # content-addressed: arrays-<checksum12>.npz


class SnapshotError(RuntimeError):
    """A snapshot is missing, incomplete, corrupt, or from another format."""


# --------------------------------------------------------------------- #
# hashing
# --------------------------------------------------------------------- #


def _hash_arrays(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over array names, dtypes, shapes, and raw bytes (sorted).

    Depends only on content — not on file layout, git state, or the
    process that wrote it — so two snapshots of bit-identical state hash
    identically on any machine.
    """
    digest = hashlib.sha256()
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content hash identifying the data a snapshot answers queries for."""
    return _hash_arrays(
        {
            "points": dataset.points,
            "labels": dataset.labels,
            "ids": dataset.ids,
        }
    )


# --------------------------------------------------------------------- #
# (de)serialization helpers
# --------------------------------------------------------------------- #


def _jsonable(value) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


def _dataset_block(dataset: Dataset) -> dict:
    """JSON manifest block for one dataset (arrays travel separately)."""
    return {
        "name": dataset.name,
        "group_attribute": dataset.group_attribute,
        "group_names": list(dataset.group_names),
        "meta": {k: v for k, v in dataset.meta.items() if _jsonable(v)},
    }


def _dataset_arrays(prefix: str, dataset: Dataset, arrays: dict) -> None:
    arrays[f"{prefix}.points"] = dataset.points
    arrays[f"{prefix}.labels"] = dataset.labels
    arrays[f"{prefix}.ids"] = dataset.ids


def _restore_dataset(prefix: str, block: dict, arrays: dict) -> Dataset:
    dataset = Dataset(
        points=arrays[f"{prefix}.points"],
        labels=arrays[f"{prefix}.labels"],
        name=block["name"],
        group_attribute=block["group_attribute"],
        group_names=tuple(block["group_names"]),
        ids=arrays[f"{prefix}.ids"],
    )
    dataset.meta.update(block.get("meta", {}))
    return dataset


def _export_index(name: str, index: FairHMSIndex) -> tuple[dict, dict]:
    """One consistent (arrays, manifest) export, under the index's lock."""
    with index.lock:
        live = not index.frozen
        arrays: dict[str, np.ndarray] = {}
        manifest: dict = {
            "format_version": FORMAT_VERSION,
            "kind": "live" if live else "frozen",
            "name": str(name),
            "created_at": time.time(),
            "config": index.serving_config(),
            "epoch": int(index.epoch),
        }
        if live:
            state = index.live_state()
            arrays["live.keys"] = state["keys"]
            arrays["live.points"] = state["points"]
            arrays["live.groups"] = state["groups"]
            arrays["live.scale"] = state["scale"]
            manifest["live"] = {
                "dim": int(state["dim"]),
                "num_groups": int(state["num_groups"]),
                "version": int(state["version"]),
            }
            manifest["epoch"] = int(state["epoch"])
            manifest["dataset_fingerprint"] = _hash_arrays(
                {k: arrays[k] for k in ("live.keys", "live.points", "live.groups")}
            )
        else:
            dataset = index.dataset
            skyline = index.skyline
            _dataset_arrays("dataset", dataset, arrays)
            _dataset_arrays("skyline", skyline, arrays)
            manifest["dataset"] = _dataset_block(dataset)
            manifest["skyline"] = _dataset_block(skyline)
            manifest["dataset_fingerprint"] = dataset_fingerprint(dataset)
            manifest["memo"] = _export_memo(index, arrays)
        artifacts = index.artifacts
        net_keys: list[list[int]] = []
        engine_keys: list[list[int]] = []
        if artifacts is not None:
            for (m, seed), net in sorted(artifacts.cached_nets().items()):
                arrays[f"net.{m}.{seed}"] = net
                net_keys.append([int(m), int(seed)])
            for (m, seed), engine in sorted(artifacts.cached_engines().items()):
                arrays[f"engine.{m}.{seed}"] = engine.ratios
                engine_keys.append([int(m), int(seed)])
            if not live:
                # Live geometry is recomputed by the restore refresh (the
                # candidate cache must own its incremental state anyway).
                envelope, candidates = artifacts.cached_geometry()
                if envelope is not None and candidates is not None:
                    arrays["envelope.breaks"] = envelope.breaks
                    arrays["envelope.lines"] = envelope.lines
                    arrays["envelope.point_index"] = envelope.point_index
                    arrays["mhr_candidates"] = candidates
        manifest["artifacts"] = {
            "nets": net_keys,
            "engines": engine_keys,
            "geometry": "mhr_candidates" in arrays,
        }
        return arrays, manifest


def _export_memo(index: FairHMSIndex, arrays: dict) -> list[dict]:
    """Persist the result memo: tiny index arrays + JSON provenance.

    Memoized solutions are the purest warm state — a reloaded index
    answers repeated queries without solving at all.  Only solutions over
    the index's own skyline with JSON-able provenance are kept (that is
    every solution :meth:`FairHMSIndex.query` memoizes today).
    """
    entries: list[dict] = []
    for key, solution in index.memoized_results().items():
        if solution.dataset is not index.skyline:  # pragma: no cover - guard
            continue
        constraint = solution.constraint
        entry = {
            "key": repr(tuple(key)),
            "algorithm": solution.algorithm,
            "mhr_estimate": solution.mhr_estimate,
            "stats": {
                k: v for k, v in solution.stats.items() if _jsonable(v)
            },
            "constraint": None
            if constraint is None
            else {
                "lower": [int(v) for v in constraint.lower],
                "upper": [int(v) for v in constraint.upper],
                "k": int(constraint.k),
            },
        }
        arrays[f"memo.{len(entries)}"] = solution.indices
        entries.append(entry)
    return entries


def _restore_memo(index: FairHMSIndex, manifest: dict, arrays: dict) -> None:
    skyline = index.skyline
    for i, entry in enumerate(manifest.get("memo", ())):
        try:
            key = ast.literal_eval(entry["key"])
        except (ValueError, SyntaxError) as exc:
            raise SnapshotError(f"unreadable memo key {entry['key']!r}") from exc
        block = entry.get("constraint")
        constraint = (
            None
            if block is None
            else FairnessConstraint(
                lower=block["lower"], upper=block["upper"], k=block["k"]
            )
        )
        solution = Solution(
            indices=arrays[f"memo.{i}"],
            dataset=skyline,
            algorithm=entry["algorithm"],
            constraint=constraint,
            mhr_estimate=entry["mhr_estimate"],
            stats=dict(entry.get("stats", {})),
        )
        index.prime_result(key, solution)


def _restore_artifacts(index: FairHMSIndex, manifest: dict, arrays: dict) -> None:
    artifacts = index.artifacts
    block = manifest.get("artifacts", {})
    if artifacts is None:
        return
    for m, seed in block.get("nets", ()):
        artifacts.prime_net(m, seed, arrays[f"net.{m}.{seed}"])
    for m, seed in block.get("engines", ()):
        net_key = f"net.{m}.{seed}"
        if net_key not in arrays:
            raise SnapshotError(
                f"engine ({m}, {seed}) persisted without its net"
            )
        artifacts.prime_engine(
            m,
            seed,
            TruncatedEngine.from_ratios(arrays[f"engine.{m}.{seed}"], arrays[net_key]),
        )
    if block.get("geometry"):
        envelope = Envelope(
            breaks=arrays["envelope.breaks"],
            lines=arrays["envelope.lines"],
            point_index=arrays["envelope.point_index"],
        )
        artifacts.prime_geometry(envelope, arrays["mhr_candidates"])


# --------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------- #


class SnapshotStore:
    """Directory of named index snapshots (one subdirectory per name).

    Args:
        root: base directory; created on first use.  Names are
            percent-encoded into file-system-safe subdirectory names, so
            any registry name round-trips.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- naming ------------------------------------------------------- #

    def path_for(self, name: str) -> Path:
        # Percent-encoding alone leaves "." and ".." intact (dots are
        # unreserved), which would escape the store root — encode dots
        # too, so every name maps to a fresh subdirectory *inside* it.
        encoded = quote(str(name), safe="").replace(".", "%2E")
        if not encoded:
            raise ValueError("snapshot names must be non-empty")
        return self.root / encoded

    def __contains__(self, name: str) -> bool:
        return (self.path_for(name) / _MANIFEST).is_file()

    def names(self) -> tuple[str, ...]:
        """Names with a complete (manifest-bearing) snapshot, sorted."""
        if not self.root.is_dir():
            return ()
        return tuple(
            sorted(
                unquote(p.name)
                for p in self.root.iterdir()
                if (p / _MANIFEST).is_file()
            )
        )

    # -- metadata ----------------------------------------------------- #

    def manifest(self, name: str) -> dict:
        """The snapshot's manifest; raises :class:`SnapshotError` if absent."""
        path = self.path_for(name) / _MANIFEST
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError as exc:
            raise SnapshotError(f"no snapshot for {name!r} under {self.root}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"unreadable manifest for {name!r}: {exc}") from exc
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot {name!r} has format version {version!r}; this "
                f"build reads version {FORMAT_VERSION}"
            )
        return manifest

    def size_bytes(self, name: str) -> int:
        """On-disk bytes of the snapshot (0 when absent)."""
        path = self.path_for(name)
        if not path.is_dir():
            return 0
        return sum(p.stat().st_size for p in path.iterdir() if p.is_file())

    def remove(self, name: str) -> bool:
        """Delete the snapshot; True if one existed."""
        path = self.path_for(name)
        if not path.is_dir():
            return False
        existed = False
        # Manifest first: a half-removed snapshot must read as absent,
        # never as complete-but-corrupt.
        manifest = path / _MANIFEST
        if manifest.is_file():
            existed = True
            manifest.unlink()
        for payload in path.glob(_ARRAYS_PREFIX + "*.npz"):
            existed = True
            payload.unlink()
        try:
            path.rmdir()
        except OSError:  # pragma: no cover - foreign files in the dir
            pass
        return existed

    # -- save / load -------------------------------------------------- #

    def save_index(
        self, name: str, index: FairHMSIndex, *, registration: dict | None = None
    ) -> Path:
        """Persist ``index`` under ``name``; returns the snapshot directory.

        Captures one consistent point-in-time state (the index's lock is
        held during export, so live writes serialize against the save).
        Overwrites any previous snapshot of the same name atomically:
        the array payload is content-addressed (``arrays-<checksum>``)
        and the manifest — replaced last, by rename — is the only commit
        point, so a crash anywhere mid-save leaves the *previous*
        complete snapshot readable; superseded payload files are garbage
        collected only after the new manifest is durable.

        ``registration``, if given, is recorded verbatim in the manifest
        — the registry stores the spec's index kwargs there so a reload
        under a *different* registration can detect the mismatch.
        """
        arrays, manifest = _export_index(name, index)
        checksum = _hash_arrays(arrays)
        manifest["checksum"] = checksum
        arrays_name = f"{_ARRAYS_PREFIX}{checksum[:12]}.npz"
        manifest["arrays_file"] = arrays_name
        if registration is not None:
            manifest["registration"] = registration
        path = self.path_for(name)
        path.mkdir(parents=True, exist_ok=True)
        arrays_tmp = path / (arrays_name + ".tmp")
        with open(arrays_tmp, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(arrays_tmp, path / arrays_name)
        manifest_tmp = path / (_MANIFEST + ".tmp")
        with open(manifest_tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(manifest_tmp, path / _MANIFEST)
        for stale in path.glob(_ARRAYS_PREFIX + "*.npz"):
            if stale.name != arrays_name:
                stale.unlink(missing_ok=True)
        return path

    def load_index(self, name: str, *, verify: bool = True) -> FairHMSIndex:
        """Reload the snapshot into a fully warm serving index.

        The reloaded index answers bit-identically to the one that was
        saved (and, by determinism, to a cold build of the same data):
        datasets, nets, engine matrices, geometry, and memoized results
        are restored from the exact bytes the original computed.

        Args:
            verify: recompute the content checksum over the loaded
                arrays and compare with the manifest (on by default; the
                cost is one hash pass over data just read).

        Raises:
            SnapshotError: missing snapshot, wrong format version,
                checksum mismatch, or a structurally incomplete payload.
        """
        manifest = self.manifest(name)
        arrays_name = manifest.get("arrays_file")
        if not isinstance(arrays_name, str) or not arrays_name.startswith(
            _ARRAYS_PREFIX
        ):
            raise SnapshotError(
                f"snapshot {name!r} names no array payload in its manifest"
            )
        arrays_path = self.path_for(name) / arrays_name
        try:
            with np.load(arrays_path, allow_pickle=False) as payload:
                arrays = {key: payload[key] for key in payload.files}
        except FileNotFoundError as exc:
            raise SnapshotError(f"snapshot {name!r} has no array payload") from exc
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise SnapshotError(f"unreadable arrays for {name!r}: {exc}") from exc
        if verify and _hash_arrays(arrays) != manifest.get("checksum"):
            raise SnapshotError(
                f"checksum mismatch for {name!r}: the snapshot is corrupt "
                f"(or was edited); refusing to serve from it"
            )
        config = dict(manifest.get("config", {}))
        try:
            if manifest["kind"] == "live":
                block = manifest["live"]
                index: FairHMSIndex = LiveFairHMSIndex.from_live_state(
                    arrays["live.keys"],
                    arrays["live.points"],
                    arrays["live.groups"],
                    scale=arrays["live.scale"],
                    dim=block["dim"],
                    num_groups=block["num_groups"],
                    version=block.get("version"),
                    epoch=manifest.get("epoch"),
                    **config,
                )
            else:
                index = FairHMSIndex.from_preprocessed(
                    _restore_dataset("dataset", manifest["dataset"], arrays),
                    _restore_dataset("skyline", manifest["skyline"], arrays),
                    **config,
                )
            _restore_artifacts(index, manifest, arrays)
            if manifest["kind"] == "frozen":
                _restore_memo(index, manifest, arrays)
        except KeyError as exc:
            raise SnapshotError(
                f"snapshot {name!r} is missing component {exc}"
            ) from exc
        return index


# --------------------------------------------------------------------- #
# module-level convenience (single-snapshot use, CLI, benchmarks)
# --------------------------------------------------------------------- #


def save_index(directory, name: str, index: FairHMSIndex) -> Path:
    """Persist one index snapshot under ``directory/<name>/``."""
    return SnapshotStore(directory).save_index(name, index)


def load_index(directory, name: str, *, verify: bool = True) -> FairHMSIndex:
    """Reload one index snapshot saved by :func:`save_index`."""
    return SnapshotStore(directory).load_index(name, verify=verify)
