"""Service observability: latency histograms and per-dataset counters.

The gateway and the registry both report into one
:class:`ServiceMetrics` sink: request/solve latencies as log-scaled
histograms, and counts of solves, coalesced requests, result-cache hits,
builds, evictions, updates, errors, and fence violations — per dataset,
with totals.  Everything is exported by :meth:`ServiceMetrics.snapshot`
as one plain dict (JSON-ready), which is what the ``repro service`` CLI
and ``benchmarks/bench_service.py`` print.

All sinks are thread-safe behind a **single** reentrant lock: a
histogram observation (bucket bump + count/total/min/max) and a counter
increment are each atomic, and :meth:`ServiceMetrics.snapshot` reads
every counter and histogram under that same lock — a concurrent recorder
can never produce a torn view (a bucket counted but not totalled, a
dataset block mid-update).  Standalone :class:`LatencyHistogram` objects
carry their own lock, so the HTTP server's per-endpoint histograms get
the same guarantee.  Recording a sample is a few dict operations, far
below solve cost.
"""

from __future__ import annotations

import threading

__all__ = ["BUCKET_EDGES", "LatencyHistogram", "ServiceMetrics", "merge_quantile"]

# Powers of two from 1 microsecond to ~67 seconds; the final bucket is
# open-ended.  Log-scaled buckets keep quantile error proportional.
_BUCKET_EDGES = tuple(1e-6 * 2.0**i for i in range(27))

# Public alias: renderers (e.g. the Prometheus exposition) need the
# bucket boundaries to emit cumulative `le=` labels that match what the
# histograms actually recorded.
BUCKET_EDGES = _BUCKET_EDGES

# The full counter schema, fixed up front: every dataset block carries
# exactly these keys, so totals and exposition output never drift.
_COUNTER_NAMES = (
    "requests",
    "solves",
    "coalesced",
    "multi_shared",
    "updates",
    "shed",
    "errors",
    "builds",
    "evictions",
    "cache_clears",
    "spills",
    "spill_loads",
    "wal_appends",
    "wal_replays",
    "fence_violations",
    "warmups",
)


class LatencyHistogram:
    """Fixed-bucket log-scaled latency histogram (seconds), thread-safe.

    Quantiles are bucket upper bounds — at most one power of two above
    the true value, which is plenty to tell a 2 ms solve from a 2 s one.

    Every public method serializes on ``lock``; one is created per
    histogram unless the owner passes a shared (reentrant) lock —
    :class:`ServiceMetrics` shares its own, so a metrics snapshot and a
    concurrent observation can never interleave into a torn read (count
    bumped but total not yet added, a bucket list mid-update).
    """

    __slots__ = ("_lock", "_counts", "count", "total", "min", "max")

    def __init__(self, *, lock=None) -> None:
        # An RLock even when private: snapshot() -> _quantile() nesting
        # stays safe if a subclass (or a shared owner) re-enters.
        self._lock = lock if lock is not None else threading.RLock()
        self._counts = [0] * (len(_BUCKET_EDGES) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        value = max(0.0, float(seconds))
        lo, hi = 0, len(_BUCKET_EDGES)
        while lo < hi:  # first bucket whose edge bounds the value
            mid = (lo + hi) // 2
            if value <= _BUCKET_EDGES[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    def _quantile(self, q: float) -> float:
        """Quantile lookup; caller holds the lock."""
        if self.count == 0:
            return 0.0
        # At least one sample must be covered: q = 0.0 means "the first
        # sample's bucket", not "wherever a cumulative count of zero
        # first clears zero" (that returned the empty first bucket).
        target = max(1.0, q * self.count)
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= target:
                if i >= len(_BUCKET_EDGES):
                    return self.max  # overflow bucket: the edge would lie
                return min(_BUCKET_EDGES[i], self.max)
        return self.max

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample.

        Bounded by the observed extremes: samples in the open-ended
        overflow bucket report the observed maximum (the last bucket
        edge would understate them by an unbounded amount), and every
        quantile is capped at that maximum.  ``q = 0.0`` targets the
        smallest recorded sample — never an empty leading bucket's edge.
        """
        with self._lock:
            return self._quantile(q)

    def snapshot(self) -> dict:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "total_s": 0.0}
            return {
                "count": self.count,
                "total_s": round(self.total, 6),
                "mean_s": round(self.total / self.count, 6),
                "min_s": round(self.min, 6),
                "max_s": round(self.max, 6),
                "p50_s": self._quantile(0.50),
                "p90_s": self._quantile(0.90),
                "p99_s": self._quantile(0.99),
            }

    def export(self) -> dict:
        """Raw point-in-time export: bucket counts + running stats.

        For renderers that need the buckets themselves (the Prometheus
        exposition emits cumulative ``_bucket{le=...}`` series) rather
        than the derived quantiles :meth:`snapshot` reports.  ``edges``
        is the shared module-level tuple; ``counts`` has one extra slot
        for the open-ended overflow bucket.
        """
        with self._lock:
            return {
                "edges": _BUCKET_EDGES,
                "counts": list(self._counts),
                "count": self.count,
                "total": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max,
            }


def merge_quantile(hists, q: float) -> float | None:
    """Quantile of the bucket-wise merge of several histograms.

    Returns ``None`` when no histogram has observed a sample.  Same
    semantics as :meth:`LatencyHistogram.quantile` on the merged counts:
    bucket upper bounds, capped at the observed maximum, and overflow
    samples report that maximum rather than a lying edge.

    Each histogram's lock is taken one at a time while its buckets are
    copied — safe whether the histograms share one reentrant lock (as
    inside :class:`ServiceMetrics`) or each carry their own.
    """
    merged = [0] * (len(_BUCKET_EDGES) + 1)
    count = 0
    observed_max = 0.0
    for hist in hists:
        with hist._lock:
            if hist.count == 0:
                continue
            count += hist.count
            observed_max = max(observed_max, hist.max)
            for i, c in enumerate(hist._counts):
                merged[i] += c
    if count == 0:
        return None
    target = max(1.0, q * count)
    seen = 0
    for i, c in enumerate(merged):
        seen += c
        if seen >= target:
            if i >= len(_BUCKET_EDGES):
                return observed_max
            return min(_BUCKET_EDGES[i], observed_max)
    return observed_max


class _DatasetStats:
    """Mutable per-dataset counter block (guarded by the parent lock)."""

    __slots__ = ("counters", "request_latency", "solve_latency", "phases", "_lock")

    def __init__(self, lock) -> None:
        self.counters = dict.fromkeys(_COUNTER_NAMES, 0)
        # Histograms share the owning ServiceMetrics lock, so the whole
        # sink is consistent under one lock (snapshot vs record races).
        self._lock = lock
        self.request_latency = LatencyHistogram(lock=lock)
        self.solve_latency = LatencyHistogram(lock=lock)
        # Per-phase solve breakdown (e.g. IntCov's geometry / search /
        # finalize), keyed by the phase names solvers report; created
        # lazily so datasets that never report phases carry no entry.
        self.phases: dict[str, LatencyHistogram] = {}

    def phase(self, name: str) -> LatencyHistogram:
        hist = self.phases.get(name)
        if hist is None:
            hist = self.phases.setdefault(name, LatencyHistogram(lock=self._lock))
        return hist

    def snapshot(self) -> dict:
        out = dict(self.counters)
        out["request_latency"] = self.request_latency.snapshot()
        out["solve_latency"] = self.solve_latency.snapshot()
        if self.phases:
            out["solve_phases"] = {
                name: hist.snapshot() for name, hist in self.phases.items()
            }
        return out


class ServiceMetrics:
    """Thread-safe per-dataset counters + latency histograms.

    ``incr(dataset, name, n)`` bumps one of the fixed counters;
    ``observe_request`` / ``observe_solve`` record latencies.  The
    gateway records ``requests`` on submit, ``solves`` per actual solver
    run, and ``coalesced`` for every request answered by a solve it
    shared; the HTTP server records ``shed`` for every request refused
    by admission control (429); the registry records ``builds``,
    ``evictions`` (index actually dropped), ``cache_clears`` (pinned
    live index reclaimed in place), ``spills`` (snapshot written on
    eviction), and ``spill_loads`` (index reloaded from its snapshot).

    One reentrant lock guards every counter *and* every histogram (the
    per-dataset histograms share it), so :meth:`snapshot` is a
    consistent point-in-time view even while gateway workers, the HTTP
    loop, and the registry record concurrently.
    """

    def __init__(self, *, scenario: str | None = None) -> None:
        # Reentrant: snapshot() holds it while the histograms (sharing
        # the same lock) take it again for their own snapshots.
        self._lock = threading.RLock()
        self._datasets: dict[str, _DatasetStats] = {}
        self._batches = 0
        self._batched_requests = 0
        # Optional label naming the scenario the traffic belongs to
        # (set by workload drivers replaying a `repro.scenarios` spec);
        # surfaces in snapshot() and the emitted bench JSON.
        self.scenario = scenario

    def _stats(self, dataset: str) -> _DatasetStats:
        stats = self._datasets.get(dataset)
        if stats is None:
            stats = self._datasets.setdefault(dataset, _DatasetStats(self._lock))
        return stats

    def incr(self, dataset: str, name: str, n: int = 1) -> None:
        if name not in _COUNTER_NAMES:
            # Checked before touching state: a typo'd call site must not
            # create a dataset block or grow the schema silently.
            raise ValueError(
                f"unknown counter {name!r}; valid counters: "
                + ", ".join(_COUNTER_NAMES)
            )
        with self._lock:
            self._stats(dataset).counters[name] += n

    def observe_request(self, dataset: str, seconds: float) -> None:
        """End-to-end latency of one request (enqueue -> result set)."""
        with self._lock:
            self._stats(dataset).request_latency.observe(seconds)

    def observe_solve(self, dataset: str, seconds: float) -> None:
        """Wall time of one actual solver run (coalesced peers pay 0)."""
        with self._lock:
            self._stats(dataset).solve_latency.observe(seconds)

    def observe_phase(self, dataset: str, phase: str, seconds: float) -> None:
        """One solver-internal phase timing (recorded once per solve).

        Phase names come from the solver's ``Solution.stats["phases"]``
        breakdown — e.g. IntCov reports ``geometry`` (envelope +
        candidate enumeration), ``search`` (the tau descent), and
        ``finalize`` (padding + exact MHR) — and say *where* a slow
        solve spent its time, which the aggregate solve histogram can't.
        """
        with self._lock:
            self._stats(dataset).phase(phase).observe(seconds)

    def solve_quantile(self, q: float) -> float | None:
        """Cross-dataset solve-latency quantile, or ``None`` if unobserved.

        Merges every dataset's solve histogram bucket-wise under the one
        metrics lock — cheap enough for a per-request caller (the HTTP
        server derives ``Retry-After`` for shed clients from the p50).
        """
        with self._lock:
            return merge_quantile(
                [s.solve_latency for s in self._datasets.values()], q
            )

    def request_quantile(self, q: float) -> float | None:
        """Cross-dataset end-to-end request-latency quantile, or ``None``."""
        with self._lock:
            return merge_quantile(
                [s.request_latency for s in self._datasets.values()], q
            )

    def exposition_data(self) -> dict:
        """Raw per-dataset export for renderers (Prometheus exposition).

        Unlike :meth:`snapshot`, histograms come out as raw bucket
        counts (via :meth:`LatencyHistogram.export`) so a renderer can
        emit cumulative ``_bucket``/``_sum``/``_count`` series.  Taken
        under the one metrics lock — a consistent point-in-time view.
        """
        with self._lock:
            datasets = {}
            for name, stats in self._datasets.items():
                datasets[name] = {
                    "counters": dict(stats.counters),
                    "request_latency": stats.request_latency.export(),
                    "solve_latency": stats.solve_latency.export(),
                    "phases": {
                        phase: hist.export()
                        for phase, hist in stats.phases.items()
                    },
                }
            return {
                "scenario": self.scenario,
                "datasets": datasets,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
            }

    def record_batch(self, num_requests: int) -> None:
        """One gateway dispatch cycle covering ``num_requests`` requests."""
        with self._lock:
            self._batches += 1
            self._batched_requests += int(num_requests)

    def snapshot(self) -> dict:
        """Plain-dict export: per-dataset blocks plus cross-dataset totals."""
        with self._lock:
            datasets = {
                name: stats.snapshot() for name, stats in self._datasets.items()
            }
            totals: dict[str, int] = {}
            for stats in self._datasets.values():
                for name, value in stats.counters.items():
                    totals[name] = totals.get(name, 0) + value
            snap = {
                "datasets": datasets,
                "totals": totals,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
            }
            if self.scenario is not None:
                snap["scenario"] = self.scenario
            return snap
