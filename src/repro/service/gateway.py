"""The micro-batching gateway: concurrent requests in, one solve out.

Real FairHMS traffic is bursty and redundant — many users ask the same
``(dataset, k, constraint, algorithm)`` at once.  The
:class:`Gateway` absorbs concurrent requests and turns them into the
minimum amount of solver work:

* **micro-batching** — :meth:`Gateway.submit` enqueues a request and
  returns a :class:`concurrent.futures.Future`; the dispatcher collects
  requests for one ``batch_window`` (or until ``max_batch``), so bursts
  are handled as batches instead of a convoy of single solves;
* **coalescing** — within a batch window, requests with identical query
  keys collapse into **one** solve whose solution resolves every peer's
  future (solves are deterministic, so the shared answer is exactly what
  each peer would have computed alone);
* **per-dataset serialization with write fencing** — each dataset's
  operations drain FIFO under its registry lock (an actor, in effect):
  writes to a live index never interleave a query batch, queries between
  two writes see exactly the epoch the first write produced, and
  cross-dataset work still runs in parallel across the worker pool.  A
  version check around every query run *verifies* the fence and counts
  violations (only possible when callers mutate an index behind the
  gateway's back);
* distinct queries of one batch run back to back against the dataset's
  index (one ``index.query`` per coalesce group — the same per-query
  path ``query_batch`` takes), sharing its artifacts, nets, and
  memoized results, with per-group error isolation.

Error semantics: a failing solve (e.g. an infeasible constraint) sets
the exception on every future it was coalesced into — the same exception
type a direct ``index.query`` call raises.

Use either the background dispatcher (:meth:`start` / :meth:`stop`, or
the context manager) with concurrent producers, or the synchronous
:meth:`drain` to process everything queued from the calling thread
(tests, benchmarks, single-threaded replay).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..fairness.constraints import FairnessConstraint
from ..obs.trace import Trace, child_of_current, use_trace
from ..serving.index import Query
from .metrics import ServiceMetrics
from .registry import DatasetRegistry

__all__ = ["Gateway"]


@dataclass
class _PendingOp:
    """One enqueued operation: a query, or a live-index write."""

    dataset: str
    kind: str  # "query" | "insert" | "delete"
    query: Query | None
    args: tuple
    future: Future
    enqueued: float
    trace: Trace | None = None


def _coalesce_key(q: Query, resolved: str | None = None) -> tuple | None:
    """Hashable identity of a query, or ``None`` when not coalescible.

    Two requests coalesce only when every field that can influence the
    solution matches; any non-scalar option (a ``Generator`` seed, an
    explicit net array) makes the request non-coalescible, mirroring the
    index's own memoization rules.

    ``resolved`` is the concrete algorithm the dataset's index reports
    for this query (``FairHMSIndex.resolve_query``).  With it the key is
    *normalized*: ``"auto"`` and its resolution are the same request,
    and knobs the exact IntCov never consumes — ``eps`` and ``seed`` —
    are dropped, so two IntCov requests differing only in them share one
    solve instead of solving twice.
    """
    if q.constraint is not None:
        constraint_key = (
            int(q.constraint.k),
            tuple(int(v) for v in q.constraint.lower),
            tuple(int(v) for v in q.constraint.upper),
        )
    else:
        constraint_key = (
            None if q.k is None else int(q.k),
            float(q.alpha),
            str(q.scheme),
        )
    algorithm = str(q.algorithm) if resolved is None else str(resolved)
    if algorithm == "IntCov":
        # Exact and deterministic: neither eps nor seed reaches the
        # solver, so neither may split (or block) coalescing.
        seed_key = eps_key = None
    else:
        if q.seed is None or isinstance(q.seed, bool):
            seed_key = None if q.seed is None else NotImplemented
        elif isinstance(q.seed, (int, np.integer)):
            seed_key = int(q.seed)
        else:
            return None  # a live Generator: never coalesce
        if seed_key is NotImplemented:
            return None
        eps_key = float(q.eps)
    options = []
    for name, value in sorted(q.options.items()):
        if isinstance(value, (bool, str, type(None))):
            options.append((name, value))
        elif isinstance(value, (int, np.integer)):
            options.append((name, int(value)))
        elif isinstance(value, (float, np.floating)):
            options.append((name, float(value)))
        else:
            return None
    return (constraint_key, eps_key, algorithm, seed_key, tuple(options))


class Gateway:
    """Concurrent multi-dataset front door over a :class:`DatasetRegistry`.

    Args:
        registry: where datasets live; indexes are built on first touch
            (and may be evicted/rebuilt under its byte budget at any
            point — answers are unaffected).
        batch_window: seconds the dispatcher waits after the first
            request of a cycle for more to arrive.  Larger windows
            coalesce more at the cost of added latency.
        max_batch: dispatch early once this many requests are queued.
        max_workers: threads executing per-dataset drains; parallelism
            across datasets (one dataset's work is always serialized).
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        *,
        batch_window: float = 0.002,
        max_batch: int = 256,
        max_workers: int | None = None,
    ) -> None:
        self.registry = registry
        self.metrics: ServiceMetrics = registry.metrics
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self._max_workers = max_workers or min(8, (os.cpu_count() or 1) + 4)
        self._inbox: queue.SimpleQueue[_PendingOp] = queue.SimpleQueue()
        self._mailboxes: dict[str, deque[_PendingOp]] = {}
        self._scheduled: set[str] = set()
        self._mail_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._dispatcher: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._stopping = False
        # Serializes drain() callers against each other; combined with
        # joining the dispatcher first, it keeps the final stop-time
        # drain from ever overlapping a dispatcher cycle (drain()'s
        # contract).
        self._drain_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # producer API
    # ------------------------------------------------------------------ #

    def submit(
        self,
        dataset: str,
        k: int | None = None,
        *,
        constraint=None,
        eps: float = 0.02,
        algorithm: str = "auto",
        seed=None,
        alpha: float = 0.1,
        scheme: str = "proportional",
        trace: Trace | None = None,
        **options,
    ) -> Future:
        """Enqueue one query; returns a future resolving to its Solution.

        Parameters mirror :meth:`repro.serving.FairHMSIndex.query`.  The
        future raises whatever the solve raises (e.g. infeasibility).
        ``trace`` attaches a request trace: queue wait, the cold build
        (if any), the solve with its phases, and coalescing outcomes are
        recorded as spans/tags on it while the op moves through the
        gateway.
        """
        if dataset not in self.registry:
            raise KeyError(f"unknown dataset {dataset!r}")
        if constraint is not None and not isinstance(constraint, FairnessConstraint):
            # Fail fast in the caller's thread; a malformed constraint
            # must not reach the dispatch path.
            raise TypeError(
                f"constraint must be a FairnessConstraint, got "
                f"{type(constraint).__name__}"
            )
        spec = Query(
            k=k,
            constraint=constraint,
            eps=eps,
            algorithm=algorithm,
            seed=seed,
            alpha=alpha,
            scheme=scheme,
            options=dict(options),
        )
        return self._enqueue(dataset, "query", spec, (), trace=trace)

    def submit_update(
        self, dataset: str, kind: str, *args, trace: Trace | None = None
    ) -> Future:
        """Enqueue a write for a live dataset; future resolves when applied.

        ``kind`` is ``"insert"`` (args: ``key, point, group``) or
        ``"delete"`` (args: ``key``).  Writes are applied in submission
        order relative to the same dataset's queries — a query submitted
        after a write observes it; one submitted before does not.
        """
        if kind not in ("insert", "delete"):
            raise ValueError(f"unknown update kind {kind!r}")
        if dataset not in self.registry:
            raise KeyError(f"unknown dataset {dataset!r}")
        return self._enqueue(dataset, kind, None, args, trace=trace)

    def _enqueue(self, dataset, kind, spec, args, *, trace=None) -> Future:
        op = _PendingOp(
            dataset=dataset,
            kind=kind,
            query=spec,
            args=args,
            future=Future(),
            enqueued=time.perf_counter(),
            trace=trace,
        )
        self.metrics.incr(dataset, "requests" if kind == "query" else "updates")
        self._inbox.put(op)
        if self._stopping:
            # Enqueued concurrently with stop(): the dispatcher may
            # already have drained for the last time, so process the
            # inbox here — no accepted future may be left pending.  Wait
            # out the dispatcher's final cycle first: drain() must never
            # run while it may still be mid-collect.
            dispatcher = self._dispatcher
            if dispatcher is not None:
                dispatcher.join()
            self.drain()
        return op.future

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "Gateway":
        """Start the background dispatcher (idempotent)."""
        if self._dispatcher is not None and self._dispatcher.is_alive():
            return self
        self._stop_event.clear()
        self._stopping = False
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-gateway",
            )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-gateway-dispatch", daemon=True
        )
        self._dispatcher.start()
        return self

    def stop(self, *, timeout: float | None = 10.0) -> None:
        """Stop dispatching; drains already-collected work, then shuts down.

        Requests still sitting in the inbox are processed by a final
        synchronous :meth:`drain`, so no accepted future is left forever
        pending; a submit racing this call drains its own op (see
        :meth:`submit`).
        """
        self._stopping = True
        self._stop_event.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.drain()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _collect(self, *, block: bool) -> list[_PendingOp]:
        """One micro-batch: first op (maybe blocking), then the window."""
        ops: list[_PendingOp] = []
        try:
            first = self._inbox.get(timeout=0.05) if block else self._inbox.get_nowait()
        except queue.Empty:
            return ops
        ops.append(first)
        deadline = time.perf_counter() + self.batch_window
        while len(ops) < self.max_batch:
            remaining = deadline - time.perf_counter()
            try:
                if block and remaining > 0:
                    ops.append(self._inbox.get(timeout=remaining))
                else:
                    ops.append(self._inbox.get_nowait())
            except queue.Empty:
                break
        return ops

    def _dispatch_loop(self) -> None:
        while not self._stop_event.is_set():
            ops = self._collect(block=True)
            if ops:
                self._route(ops, inline=False)

    def _route(self, ops: list[_PendingOp], *, inline: bool) -> None:
        """File ops into per-dataset mailboxes; schedule idle datasets."""
        self.metrics.record_batch(len(ops))
        to_schedule: list[str] = []
        with self._mail_lock:
            for op in ops:
                self._mailboxes.setdefault(op.dataset, deque()).append(op)
            for name in {op.dataset for op in ops}:
                if name not in self._scheduled:
                    self._scheduled.add(name)
                    to_schedule.append(name)
        for name in to_schedule:
            if inline or self._pool is None:
                self._drain_mailbox(name)
            else:
                self._pool.submit(self._drain_mailbox, name)

    def drain(self) -> int:
        """Synchronously process everything queued; returns ops handled.

        Single-threaded alternative to the background dispatcher for
        tests and replay benchmarks — coalescing and fencing behave
        identically.  Concurrent drain() calls serialize on an internal
        lock (the stop()/submit() shutdown race funnels through here),
        but do not call it alongside a *running* dispatcher thread —
        stop() and racing submits join the dispatcher before draining.
        """
        handled = 0
        with self._drain_lock:
            while True:
                ops = self._collect(block=False)
                if not ops:
                    break
                handled += len(ops)
                self._route(ops, inline=True)
        return handled

    # ------------------------------------------------------------------ #
    # per-dataset execution (the actor body)
    # ------------------------------------------------------------------ #

    def _drain_mailbox(self, name: str) -> None:
        """Process ``name``'s mailbox until empty, FIFO, under its lock."""
        while True:
            with self._mail_lock:
                box = self._mailboxes.get(name)
                ops = list(box) if box else []
                if box:
                    box.clear()
                if not ops:
                    self._scheduled.discard(name)
                    return
            try:
                lock = self.registry.lock_for(name)
            except KeyError as exc:
                # Unregistered with requests still queued: fail them
                # (leaving futures forever-pending would hang callers)
                # and keep draining — the name must not stay wedged.
                self._fail_ops(name, ops, exc)
                continue
            with lock:
                try:
                    self._execute(name, ops)
                except Exception as exc:  # noqa: BLE001 - backstop
                    # Nothing may escape the actor body: an unforeseen
                    # error must fail the affected futures, not strand
                    # them and wedge the dataset's scheduled flag.
                    self._fail_ops(name, ops, exc)

    def _fail_ops(self, name: str, ops: list[_PendingOp], exc: Exception) -> None:
        """Resolve every still-pending future in ``ops`` with ``exc``."""
        failed = 0
        for op in ops:
            try:
                if op.future.set_running_or_notify_cancel():
                    op.future.set_exception(exc)
                    failed += 1
            except Exception:  # noqa: BLE001 - already resolved normally
                continue
        if failed:
            self.metrics.incr(name, "errors", failed)

    def _execute(self, name: str, ops: list[_PendingOp]) -> None:
        """Run one dataset's op run: writes in order, query runs coalesced."""
        run: list[_PendingOp] = []
        for op in ops:
            if op.kind == "query":
                run.append(op)
                continue
            # A write fences: flush the queries submitted before it,
            # then apply.  Queries after it see the new data version.
            self._solve_run(name, run)
            run = []
            self._apply_write(name, op)
        self._solve_run(name, run)

    def _apply_write(self, name: str, op: _PendingOp) -> None:
        if not op.future.set_running_or_notify_cancel():
            return
        if op.trace is not None:
            op.trace.child("queue_wait", start=op.enqueued).end()
        try:
            # The op's trace is the thread's active trace for the whole
            # write, so a cold build triggered here lands in it too.
            with use_trace(op.trace):
                index = self.registry.get(name)
                with child_of_current("apply_write", kind=op.kind):
                    if op.kind == "insert":
                        key, point, group = op.args
                        index.insert(key, point, group)
                    else:
                        (key,) = op.args
                        index.delete(key)
                version = getattr(index, "version", None)
                wal = getattr(self.registry, "wal", None)
                if wal is not None and version is not None:
                    # Durability is part of the ack: the record reaches
                    # disk (fsync'd) before the caller's future resolves,
                    # so an acked write can always be replayed after a
                    # crash.  A failed append fails the write — the
                    # in-memory apply alone must not report success.
                    with child_of_current("wal_append", kind=op.kind):
                        if op.kind == "insert":
                            key, point, group = op.args
                            wal.log_insert(name, version, key, point, group)
                        else:
                            wal.log_delete(name, version, op.args[0])
                    self.metrics.incr(name, "wal_appends")
        except Exception as exc:  # noqa: BLE001 - forwarded to the caller
            self.metrics.incr(name, "errors")
            if op.trace is not None:
                op.trace.annotate(error=type(exc).__name__)
            op.future.set_exception(exc)
            return
        self.metrics.observe_request(name, time.perf_counter() - op.enqueued)
        op.future.set_result(version)

    def _record_phases(self, name: str, solution) -> None:
        """Feed a solve's per-phase breakdown into the metrics, once.

        Solutions are memoized and fanned out to coalesced peers, so the
        phase timings (recorded by the solver at solve time) are consumed
        exactly once per underlying solve — a marker in the stats dict
        keeps cache hits from re-reporting the original solve's phases.
        """
        stats = getattr(solution, "stats", None)
        if not isinstance(stats, dict):
            return
        phases = stats.get("phases")
        if not isinstance(phases, dict) or stats.get("_phases_recorded"):
            return
        stats["_phases_recorded"] = True
        for phase, seconds in phases.items():
            self.metrics.observe_phase(name, str(phase), float(seconds))

    def _solve_run(self, name: str, run: list[_PendingOp]) -> None:
        """Coalesce one uninterrupted query run and solve each key once."""
        if not run:
            return
        try:
            # A cold build pays for every op in the run; attribute it to
            # the first traced one (the request that would have paid it
            # alone) — peers learn the index was cold from the metrics.
            with use_trace(next((op.trace for op in run if op.trace is not None), None)):
                index = self.registry.get(name)
        except Exception as exc:  # noqa: BLE001 - e.g. unregistered mid-run
            self._fail_ops(name, run, exc)
            return
        planner = getattr(index, "planner", None)
        if planner is not None:
            planner.note_queue_depth(name, len(run))
        groups: dict[object, list[_PendingOp]] = {}
        group_plans: dict[object, object] = {}
        for op in run:
            try:
                # Plan once per request: the plan normalizes the coalesce
                # key (so "auto" coalesces with explicit requests and
                # IntCov ignores eps/seed) AND is pinned for execution, so
                # an adaptive decision can never flip between scheduling
                # and the solve.
                plan = index.plan_query(
                    op.query, dataset=name, queue_depth=len(run)
                )
                resolved = plan.algorithm
            except Exception:  # noqa: BLE001 - e.g. k and constraint unset
                plan = None  # solve alone; index.query raises the real error
                resolved = None  # key on the literal fields instead
            try:
                key = _coalesce_key(op.query, resolved)
            except Exception:  # noqa: BLE001 - e.g. a malformed constraint
                key = None
            if key is None:
                key = object()  # unique: never coalesced
            groups.setdefault(key, []).append(op)
            group_plans.setdefault(key, plan)
        # Multi-k families: coalesce groups that are identical except for
        # the requested k (same scheme/alpha/options, all resolved to the
        # exact IntCov, built from k — not an explicit constraint) are
        # answered by ONE ``index.query_multi`` call, which grows a single
        # anchored tau search across the ks instead of solving each from
        # scratch.  Answers are bit-identical to per-k solves, so this is
        # pure work sharing — the same argument that justifies coalescing.
        families: dict[tuple, list[tuple]] = {}
        singles: list[tuple[list[_PendingOp], object]] = []
        for key, peers in groups.items():
            q = peers[0].query
            if (
                isinstance(key, tuple)
                and key[2] == "IntCov"
                and q.constraint is None
                and q.k is not None
            ):
                fam = (key[0][1:],) + key[1:]  # drop k, keep (alpha, scheme)
                families.setdefault(fam, []).append((peers, key))
            else:
                singles.append((peers, group_plans.get(key)))
        multi_runs: list[list[list[_PendingOp]]] = []
        for members in families.values():
            if len(members) > 1:
                multi_runs.append([peers for peers, _ in members])
            else:
                singles.extend(
                    (peers, group_plans.get(key)) for peers, key in members
                )
        # Fence: remember the data version this run is answered at; a
        # change mid-run means someone wrote around the gateway.
        fence = getattr(index, "version", None)
        for peers, plan in singles:
            live = [op for op in peers if op.future.set_running_or_notify_cancel()]
            if not live:
                continue
            pickup = time.perf_counter()
            leader = None
            for op in live:
                if op.trace is not None:
                    op.trace.child("queue_wait", start=op.enqueued).end(pickup)
                    if leader is None:
                        leader = op.trace
            q = live[0].query
            t0 = time.perf_counter()
            try:
                # The group leader's trace is active for the solve: the
                # index records the solve span (and its phases) on it.
                with use_trace(leader):
                    solution = index.query(
                        q.k,
                        constraint=q.constraint,
                        eps=q.eps,
                        algorithm=q.algorithm,
                        seed=q.seed,
                        alpha=q.alpha,
                        scheme=q.scheme,
                        plan=plan,
                        **q.options,
                    )
            except Exception as exc:  # noqa: BLE001 - forwarded to callers
                self.metrics.incr(name, "errors", len(live))
                for op in live:
                    if op.trace is not None:
                        op.trace.annotate(error=type(exc).__name__)
                    op.future.set_exception(exc)
                continue
            solve_seconds = time.perf_counter() - t0
            self.metrics.observe_solve(name, solve_seconds)
            if planner is not None and plan is not None:
                # The feedback loop: the same measurement observe_solve
                # records, attributed to the exact planned configuration.
                planner.observe(
                    name,
                    plan.algorithm,
                    int(plan.stats.k),
                    solve_seconds,
                    eps=plan.solver_kwargs().get("epsilon"),
                )
            self.metrics.incr(name, "solves")
            self._record_phases(name, solution)
            if len(live) > 1:
                self.metrics.incr(name, "coalesced", len(live) - 1)
            for op in live:
                tr = op.trace
                if tr is None:
                    continue
                if tr is leader:
                    tr.annotate(coalesce_group=len(live))
                else:
                    # A follower shares the leader's solve — its trace
                    # points at it instead of duplicating the solve span.
                    tr.annotate(
                        coalesced_into=leader.trace_id, coalesce_group=len(live)
                    )
            done = time.perf_counter()
            for op in live:
                self.metrics.observe_request(name, done - op.enqueued)
                op.future.set_result(solution)
        for members in multi_runs:
            livesets = []
            for peers in members:
                live = [
                    op for op in peers if op.future.set_running_or_notify_cancel()
                ]
                if live:
                    livesets.append(live)
            if not livesets:
                continue
            ks = [int(live[0].query.k) for live in livesets]
            q = livesets[0][0].query
            all_live = [op for live in livesets for op in live]
            pickup = time.perf_counter()
            leader = None
            leader_set = None
            for live in livesets:
                for op in live:
                    if op.trace is not None:
                        op.trace.child("queue_wait", start=op.enqueued).end(pickup)
                        if leader is None:
                            leader = op.trace
                            leader_set = live
            t0 = time.perf_counter()
            try:
                with use_trace(leader):
                    solutions = index.query_multi(
                        ks,
                        eps=q.eps,
                        algorithm=q.algorithm,
                        seed=q.seed,
                        alpha=q.alpha,
                        scheme=q.scheme,
                        **q.options,
                    )
            except Exception as exc:  # noqa: BLE001 - forwarded to callers
                self.metrics.incr(name, "errors", len(all_live))
                for op in all_live:
                    if op.trace is not None:
                        op.trace.annotate(error=type(exc).__name__)
                    op.future.set_exception(exc)
                continue
            multi_seconds = time.perf_counter() - t0
            self.metrics.observe_solve(name, multi_seconds)
            if planner is not None:
                # Shared multi-k searches amortize one solve across the
                # family; attribute an equal share to each k's estimator
                # cell (families only form on the exact IntCov path).
                per_k = multi_seconds / max(1, len(ks))
                for k in ks:
                    planner.observe(name, "IntCov", int(k), per_k)
            # One "solves" per answered key keeps the counter's meaning
            # (answers computed, memoized or not) stable for dashboards;
            # "multi_shared" records how many of them rode a shared
            # search instead of paying their own.
            self.metrics.incr(name, "solves", len(ks))
            self.metrics.incr(name, "multi_shared", len(ks) - 1)
            coalesced = len(all_live) - len(livesets)
            if coalesced:
                self.metrics.incr(name, "coalesced", coalesced)
            if leader is not None:
                leader.annotate(multi_ks=",".join(str(k) for k in ks))
            for live in livesets:
                for op in live:
                    tr = op.trace
                    if tr is None or tr is leader:
                        continue
                    if live is leader_set:
                        tr.annotate(coalesced_into=leader.trace_id)
                    else:
                        # Answered by the shared multi-k search the
                        # leader's trace carries — a distinct k, so it's
                        # "shared with", not "coalesced into".
                        tr.annotate(multi_shared_with=leader.trace_id)
            done = time.perf_counter()
            for live, solution in zip(livesets, solutions):
                self._record_phases(name, solution)
                for op in live:
                    self.metrics.observe_request(name, done - op.enqueued)
                    op.future.set_result(solution)
        if getattr(index, "version", None) != fence:
            # Only reachable when an index is mutated outside the
            # gateway while a batch was in flight.
            self.metrics.incr(name, "fence_violations")
            for op in run:
                if op.trace is not None:
                    op.trace.annotate(fence_violation=True)
