"""Speculative warm-up: prime cold datasets before their first query.

`BENCH_server.json` told the story: p50 a few milliseconds, p99 close to
a second — the tail was entirely *first* queries paying a dataset's cold
start (index build, then the IntCov envelope + O(n^2) candidate-MHR
enumeration, or a BiGreedy delta-net score matrix).  The
:class:`Warmer` is a small background thread that pays those costs ahead
of traffic: it scans the registry for registered-but-cold datasets,
builds their indexes, primes the solver artifacts, and (optionally)
pre-solves a handful of standard solution sizes so the hottest keys are
memoized before the first client arrives.

Design constraints, in order:

* **Correctness is untouched.**  Warm-up only ever calls the same build
  and prime paths a first query would; every artifact is deterministic,
  so a warmed answer is bit-identical to a cold one.
* **Drain-safe.**  The loop checks its stop event between datasets and
  between priming steps; :meth:`Warmer.stop` joins the thread, and the
  server stops the warmer *before* the gateway so shutdown never races
  a speculative build.
* **Budget-respecting.**  A dataset the registry's byte budget evicted
  is not speculatively rebuilt (that would ping-pong with the LRU);
  only never-primed datasets are built, and re-priming happens only for
  indexes that are resident again anyway.
"""

from __future__ import annotations

import threading
import weakref

from ..obs.trace import Trace, use_trace

__all__ = ["Warmer"]

#: The standard multi-k workload sizes; also the default speculative set.
DEFAULT_WARMUP_KS = (4, 6, 8)


class Warmer:
    """Background primer over a :class:`~repro.service.registry.DatasetRegistry`.

    Args:
        registry: where the datasets live.  Builds go through
            ``registry.get`` (so they are serialized per dataset on the
            same lock the gateway uses) and are counted as ordinary
            builds; each primed dataset additionally counts one
            ``warmups`` metric.
        ks: solution sizes to warm.  For 2-D datasets the geometry
            (envelope + candidate-MHR values) is primed — it is shared by
            every ``k``; for higher dimensions one truncated-MHR engine
            per ``k`` (at the paper's default net size) is built.
        solve: additionally pre-solve each ``k`` with default parameters
            through :meth:`~repro.serving.index.FairHMSIndex.query_multi`,
            so the standard keys are memoized (and tau hints recorded)
            before the first client asks.  Infeasible sizes are skipped.
        interval: seconds between registry scans; new registrations (and
            indexes rebuilt after an explicit eviction) are picked up on
            the next pass.
        traces: optional :class:`~repro.obs.trace.TraceStore`; each
            dataset actually primed records one ``warmup`` trace (build +
            pre-solve spans), so speculative work is as explainable as
            request work.
    """

    def __init__(
        self,
        registry,
        *,
        ks=DEFAULT_WARMUP_KS,
        solve: bool = True,
        interval: float = 1.0,
        traces=None,
    ) -> None:
        self.registry = registry
        self.ks = tuple(int(k) for k in ks)
        self.solve = bool(solve)
        self.interval = float(interval)
        self.traces = traces
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # name -> weakref to the index last primed.  A weakref (not an
        # id()) so a rebuilt index is always recognized as new — a dead
        # index's memory address can be reused by its replacement — and
        # so the warmer never keeps an evicted index alive.
        self._primed: dict[str, weakref.ref] = {}
        self._passes = 0
        self._errors = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "Warmer":
        """Start the background thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-warmup", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, timeout: float | None = 10.0) -> None:
        """Signal the thread and wait for it to exit (drain-safe point)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "Warmer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def stats(self) -> dict:
        """JSON-ready warm-up state (surfaced by the server's metrics)."""
        with self._lock:
            return {
                "primed": sorted(self._primed),
                "passes": self._passes,
                "errors": self._errors,
                "ks": list(self.ks),
                "running": self._thread is not None and self._thread.is_alive(),
            }

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        while not self._stop.is_set():
            self.run_once()
            self._stop.wait(self.interval)

    def run_once(self) -> int:
        """One scan over the registry; returns datasets primed.

        Exposed for synchronous use (tests, bench setup): callers that
        want everything warm *now* call this directly instead of waiting
        for the background cadence.
        """
        primed = 0
        for name in self.registry.names():
            if self._stop.is_set():
                break
            try:
                if self._prime_dataset(name):
                    primed += 1
            except Exception:  # noqa: BLE001 - warm-up must never kill serving
                with self._lock:
                    self._errors += 1
        with self._lock:
            self._passes += 1
        return primed

    def _prime_dataset(self, name: str) -> bool:
        trace = (
            Trace("warmup", dataset=name) if self.traces is not None else None
        )
        with use_trace(trace):
            primed = self._prime_dataset_traced(name)
        if primed and trace is not None:
            # Only datasets that actually did work record a trace — the
            # steady-state "already primed" scan stays out of the ring.
            self.traces.record(trace)
        return primed

    def _prime_dataset_traced(self, name: str) -> bool:
        index = self.registry.peek(name)
        if index is None:
            with self._lock:
                if name in self._primed:
                    # Previously warmed and since evicted: the byte budget
                    # (or an operator) decided it should not be resident —
                    # rebuilding it speculatively would thrash the LRU.
                    return False
            index = self.registry.get(name)
        with self._lock:
            ref = self._primed.get(name)
            if ref is not None and ref() is index:
                return False
        if self._stop.is_set():
            return False
        self._prime_index(index)
        with self._lock:
            self._primed[name] = weakref.ref(index)
        self.registry.metrics.incr(name, "warmups")
        return True

    def _prime_index(self, index) -> None:
        """Build the solver artifacts a first query would have to build.

        Plan-driven: each warm-up ``k`` is planned through the index's
        :class:`~repro.planner.Planner` (without counting toward plan
        metrics), and priming pays the **predicted-most-expensive** work
        first — an interrupted pass has already shaved the worst of the
        cold tail.  What gets primed follows the plan's algorithm: the
        shared envelope + candidate-MHR geometry for IntCov, one
        truncated-MHR engine per ``k`` for the BiGreedy family.
        """
        from ..core.bigreedy import default_net_size
        from ..serving.index import Query

        with index.lock:
            artifacts = index.artifacts
            skyline = index.skyline
            if artifacts is None or skyline is None:
                return  # an empty live dataset: nothing to warm yet
            plans = []
            for k in self.ks:
                if self._stop.is_set():
                    return
                try:
                    plans.append((k, index.plan_query(Query(k=k), record=False)))
                except ValueError:
                    continue  # k infeasible for this dataset's groups
            plans.sort(key=lambda item: -item[1].predicted_cost_s)
            if not plans and skyline.dim == 2:
                # Every standard k infeasible, but the geometry is shared
                # by ad-hoc constraints too — keep the old guarantee.
                artifacts.envelope()
                artifacts.mhr_candidates()
            seed = index.serving_config()["default_seed"]
            for k, plan in plans:
                if self._stop.is_set():
                    return
                if plan.algorithm == "IntCov":
                    # Shared by every k: the first IntCov plan pays it,
                    # the rest find it warm.
                    artifacts.envelope()
                    artifacts.mhr_candidates()
                else:
                    engine_seed = plan.solver_kwargs().get("seed", seed)
                    artifacts.engine(
                        default_net_size(k, skyline.dim), engine_seed
                    )
            if self.solve and self.ks and not self._stop.is_set():
                try:
                    index.query_multi(list(self.ks))
                except ValueError:
                    # Some k is infeasible for this dataset's groups —
                    # warm each size independently and skip the bad ones.
                    for k in self.ks:
                        if self._stop.is_set():
                            return
                        try:
                            index.query(k)
                        except ValueError:
                            continue
