"""``DatasetRegistry``: many named indexes under one byte budget.

A serving process that hosts many datasets cannot keep every
``FairHMSIndex`` fully warm: each index pins its normalized database,
skyline, and — the dominant term — one ``(m, n)`` engine score matrix
per distinct ``(m, seed)``.  The registry manages named index *specs*
(a dataset or a zero-argument factory), builds indexes lazily on first
access, and enforces an optional byte budget with LRU eviction:

* byte accounting uses the indexes' own
  :meth:`~repro.serving.index.FairHMSIndex.cache_bytes` (surfaced in
  ``cache_info()``), so the budget tracks what is actually resident;
* eviction calls :meth:`~repro.serving.index.FairHMSIndex.clear_caches`
  — releasing engines, geometry, memoized results, and the evaluator —
  and then drops the index object itself; the spec stays registered;
* a later :meth:`get` rebuilds from the spec, and because every build is
  deterministic the rebuilt index answers **bit-identically** to the
  evicted one (eviction costs warm-up, never correctness).

The most recently touched index is never evicted, so a single index
larger than the whole budget still serves (the budget is then best
effort — it bounds *extra* residency, not the working set).

With a **spill tier** (``spill_dir=``), eviction writes a
:class:`~repro.service.store.SnapshotStore` snapshot before dropping,
and :meth:`get` reloads from disk instead of rebuilding — bit-identical
answers either way, but a reload restores every warm artifact the
eviction captured (see ``docs/PERSISTENCE.md`` and
``benchmarks/bench_snapshot.py``).  **Live** indexes are the system of
record for their applied writes, so without a spill tier they are never
auto-evicted — budget pressure only clears their caches; with one, they
spill like everything else (the snapshot carries the alive table), and
only a spill that cannot run safely (dataset mid-batch, disk error)
degrades back to a cache clear.

All operations are thread-safe; per-dataset serialization of queries
against updates is the gateway's job (see
:meth:`DatasetRegistry.lock_for`).  With a spill tier, route live
writes through the gateway (or hold :meth:`lock_for` yourself): the
spill fences on that lock, and a writer mutating a directly held index
reference around it races the spill exactly like it would race
:meth:`unregister`.
"""

from __future__ import annotations

import inspect
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..data.dataset import Dataset
from ..obs.trace import child_of_current
from ..planner import Planner
from ..serving.index import FairHMSIndex
from ..serving.live import LiveFairHMSIndex
from .metrics import ServiceMetrics
from .shard import build_index_sharded
from .store import SnapshotError, SnapshotStore

__all__ = ["DatasetRegistry"]


@dataclass
class _Spec:
    """How to (re)build one named index."""

    name: str
    dataset: Dataset | None
    factory: object | None  # zero-argument callable -> Dataset
    live: bool
    build_workers: int
    build_shards: int | None
    index_kwargs: dict
    lock: threading.RLock = field(default_factory=threading.RLock)

    def load_dataset(self) -> Dataset:
        return self.dataset if self.dataset is not None else self.factory()

    def registration(self) -> dict | None:
        """JSON-normalized index kwargs, recorded into spill snapshots.

        A snapshot reloaded under a registration with *different* kwargs
        (a changed ``normalize``, ``per_group_skyline``, seed policy, …)
        would answer for the wrong preprocessing config; recording the
        kwargs verbatim lets the reload detect any such mismatch.
        ``None`` when the kwargs are not JSON-representable — the reload
        then falls back to comparing the serving config alone.
        """
        try:
            return json.loads(json.dumps(self.index_kwargs, sort_keys=True))
        except (TypeError, ValueError):
            return None


class DatasetRegistry:
    """Named, lazily built, byte-budgeted collection of serving indexes.

    Args:
        max_bytes: total :meth:`cache_bytes` budget across resident
            indexes; ``None`` disables eviction.
        metrics: shared :class:`ServiceMetrics` sink (one is created if
            omitted); builds, evictions, spills, reloads, and cache
            clears are recorded per dataset.
        spill_dir: directory for the snapshot spill tier; ``None`` (the
            default) disables it.  With a spill tier, :meth:`evict`
            writes a snapshot before dropping and :meth:`get` reloads
            from it instead of rebuilding; live indexes become
            evictable (their applied writes travel in the snapshot).
            Snapshots from a previous process warm-start the same
            registrations — the name is the key, so register the same
            data under the same name.
        planner: shared :class:`~repro.planner.Planner` installed on
            every index the registry produces (builds, spill reloads,
            rebuilds); one is created (static mode) if omitted.
        wal: optional :class:`~repro.cluster.wal.WriteAheadLog` closing
            the live-durability gap: the gateway fsyncs every applied
            write into it before acking, :meth:`get` replays the tail
            on top of a restored snapshot (or a fresh build), and a
            successful live spill compacts the log — records at or
            below the snapshot's version are redundant.
    """

    def __init__(
        self,
        *,
        max_bytes: int | None = None,
        metrics: ServiceMetrics | None = None,
        spill_dir=None,
        planner=None,
        wal=None,
    ) -> None:
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.wal = wal
        # One planner across every tenant: all indexes share its observed-
        # cost estimator and plan counters, and it survives eviction,
        # spill-reload, and rebuild (it is re-injected on every path that
        # produces an index object).
        self.planner = planner if planner is not None else Planner()
        self.store = SnapshotStore(spill_dir) if spill_dir is not None else None
        self._lock = threading.RLock()
        self._specs: dict[str, _Spec] = {}
        self._resident: OrderedDict[str, FairHMSIndex] = OrderedDict()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        dataset: Dataset | None = None,
        *,
        factory=None,
        live: bool = False,
        build_workers: int = 0,
        build_shards: int | None = None,
        **index_kwargs,
    ) -> None:
        """Register a named dataset; the index is built on first access.

        Args:
            name: registry key used by :meth:`get` and the gateway.
            dataset: the raw database (kept for deterministic rebuilds).
            factory: zero-argument callable returning the dataset —
                alternative to ``dataset`` when keeping raw data resident
                is itself too expensive.  Must be deterministic for
                rebuild-after-eviction to be bit-identical.
            live: build a :class:`LiveFairHMSIndex` (accepts gateway
                updates).  Live indexes build sequentially — they own
                their preprocessing pipeline.
            build_workers: with > 1 (and ``live=False``), cold builds run
                through the sharded parallel builder with this many
                process-pool workers.
            build_shards: shard count for the parallel builder
                (default: twice the workers).
            **index_kwargs: forwarded to the index constructor
                (``default_seed``, ``cache_results``, ...).
        """
        if (dataset is None) == (factory is None):
            raise ValueError("provide exactly one of dataset or factory")
        if live and build_workers > 1:
            raise ValueError("live indexes build sequentially; drop build_workers")
        with self._lock:
            if name in self._specs:
                raise ValueError(f"dataset {name!r} is already registered")
            self._specs[name] = _Spec(
                name=name,
                dataset=dataset,
                factory=factory,
                live=bool(live),
                build_workers=int(build_workers),
                build_shards=build_shards,
                index_kwargs=dict(index_kwargs),
            )

    def unregister(self, name: str) -> None:
        """Drop the spec, any resident index, and any spilled snapshot.

        For a live index this discards its applied writes — both the
        in-memory ones and any spilled copy (a stale snapshot must not
        resurrect under a future registration of the same name).
        """
        with self._lock:
            self.evict(name, force=True)
            self._specs.pop(name, None)
        if self.store is not None:
            self.store.remove(name)
        if self.wal is not None:
            self.wal.remove(name)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def get(self, name: str) -> FairHMSIndex:
        """The serving index for ``name``, reloaded or built if not resident.

        Touches the LRU order and re-enforces the byte budget (the
        returned index itself is never the eviction victim).  With a
        spill tier, a spilled snapshot is reloaded instead of rebuilding
        — bit-identical answers, warm caches.  Builds and reloads run
        *outside* the registry lock — one slow cold build never blocks
        other datasets — serialized per dataset on the spec lock (the
        same lock the gateway drains that dataset's mailbox under, and
        the same lock :meth:`evict` spills under).
        """
        with self._lock:
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(f"unknown dataset {name!r}")
            index = self._resident.get(name)
            if index is not None:
                self._resident.move_to_end(name)
        if index is None:
            with spec.lock:  # serialize concurrent builders per dataset
                with self._lock:
                    index = self._resident.get(name)
                if index is None:
                    index = self._restore_or_build(spec)
                with self._lock:
                    if name in self._specs:
                        # A racing builder (direct get() calls around the
                        # spec lock) wins; keep one.  An unregistered-
                        # mid-build name is served but not retained.
                        index = self._resident.setdefault(name, index)
                        self._resident.move_to_end(name)
        self.enforce_budget()
        return index

    def _restore_or_build(self, spec: _Spec) -> FairHMSIndex:
        """Reload the spilled snapshot if one exists, else build cold.

        With a WAL, a live index then replays every record newer than
        the recovered state — acked writes survive a crash that outran
        the spill tier (runs under the spec lock, so no gateway write
        can interleave the replay).
        """
        index = self._load_spilled(spec)
        if index is None:
            index = self._build(spec)
        if spec.live and self.wal is not None:
            applied = self.wal.replay_into(spec.name, index)
            if applied:
                self.metrics.incr(spec.name, "wal_replays", applied)
        return index

    def _load_spilled(self, spec: _Spec) -> FairHMSIndex | None:
        """A reloaded snapshot index, or ``None`` to fall back to a build.

        Frozen specs fall back silently (a deterministic rebuild is
        always available and bit-identical); a live spec's snapshot *is*
        the current data, so corruption there raises — rebuilding from
        the original registration would silently drop every applied
        write.  A frozen snapshot whose serving config no longer matches
        the spec is ignored the same way (it answers for a different
        cache/seed policy).
        """
        store = self.store
        if store is None or spec.name not in store:
            return None
        try:
            manifest = store.manifest(spec.name)
        except SnapshotError:
            if spec.live:
                raise
            return None
        recorded = manifest.get("registration")
        if not spec.live and recorded is not None:
            # The snapshot knows which index kwargs produced it: any
            # difference (normalize, per_group_skyline, seeds, ...) means
            # it answers for another preprocessing config — rebuild.
            if recorded != spec.registration():
                return None
        try:
            # Child of the requesting trace when this reload runs inside
            # a request (gateway cold path); NULL_SPAN otherwise.
            with child_of_current("spill_load", dataset=spec.name):
                index = store.load_index(spec.name)
        except SnapshotError:
            if spec.live:
                raise
            return None
        if isinstance(index, LiveFairHMSIndex) != spec.live:
            if spec.live:
                raise SnapshotError(
                    f"snapshot for live dataset {spec.name!r} holds a "
                    f"frozen index; remove it to rebuild from the spec"
                )
            return None
        index.set_planner(self.planner)
        if not spec.live and recorded is None:
            # Snapshot written without registration provenance (bare
            # store.save_index): the serving config is the best mismatch
            # signal left.  Defaults come from the constructor itself so
            # they cannot drift from FairHMSIndex.
            signature = inspect.signature(FairHMSIndex.__init__)
            expected = {
                key: spec.index_kwargs.get(key, signature.parameters[key].default)
                for key in ("default_seed", "cache_results", "max_cached_results")
            }
            if index.serving_config() != expected:
                return None
        self.metrics.incr(spec.name, "spill_loads")
        return index

    def _build(self, spec: _Spec) -> FairHMSIndex:
        with child_of_current("build", dataset=spec.name, live=spec.live):
            data = spec.load_dataset()
            if spec.live:
                index: FairHMSIndex = LiveFairHMSIndex(data, **spec.index_kwargs)
            elif spec.build_workers > 1:
                index = build_index_sharded(
                    data,
                    num_shards=spec.build_shards,
                    max_workers=spec.build_workers,
                    **spec.index_kwargs,
                )
            else:
                index = FairHMSIndex(data, **spec.index_kwargs)
        index.set_planner(self.planner)
        self.metrics.incr(spec.name, "builds")
        return index

    def peek(self, name: str) -> FairHMSIndex | None:
        """The resident index, or ``None`` — no build, no LRU touch."""
        with self._lock:
            return self._resident.get(name)

    def lock_for(self, name: str) -> threading.RLock:
        """Per-dataset scheduling lock (survives eviction and rebuild).

        The gateway serializes each dataset's writes and query batches on
        this lock, which outlives the index object itself — so a rebuild
        after eviction cannot interleave with an in-flight batch.
        """
        with self._lock:
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(f"unknown dataset {name!r}")
            return spec.lock

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._specs)

    def describe(self, name: str) -> dict:
        """One dataset's registration state (the HTTP ``/v1/datasets`` row).

        JSON-ready: name, live flag, whether an index is currently
        resident, whether a spill snapshot exists, and the build policy.
        Cheap — no build is triggered and no index lock is touched.
        """
        with self._lock:
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(f"unknown dataset {name!r}")
            resident = name in self._resident
        return {
            "name": name,
            "live": spec.live,
            "resident": resident,
            "spilled": self.store is not None and name in self.store,
            "build_workers": spec.build_workers,
        }

    def resident_names(self) -> tuple[str, ...]:
        """Resident indexes, least-recently-used first."""
        with self._lock:
            return tuple(self._resident)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    # ------------------------------------------------------------------ #
    # memory budget
    # ------------------------------------------------------------------ #

    def total_cache_bytes(self) -> int:
        """Sum of :meth:`cache_bytes` over resident indexes.

        Byte accounting runs on a snapshot, *outside* the registry lock:
        ``cache_bytes`` serializes on each index's own serve lock, and
        waiting on a busy index while holding the registry lock would
        stall every other dataset.
        """
        with self._lock:
            indexes = list(self._resident.values())
        return sum(ix.cache_bytes() for ix in indexes)

    def evict(self, name: str, *, force: bool = False) -> bool:
        """Release ``name``'s index — spilling it first when a tier exists.

        Returns True if an index was dropped (counted under the
        ``evictions`` metric; a pinned live index that merely had its
        caches cleared counts under ``cache_clears`` instead, so
        eviction metrics are never inflated).  Callers holding a
        reference to the evicted index can keep using it (answers stay
        correct — caches only went cold); the registry reloads the spill
        snapshot — or rebuilds, bit-identically — on the next
        :meth:`get`.

        **Live indexes** are the system of record for their applied
        writes.  Without a spill tier they are pinned: evicting one only
        clears its caches and returns False.  With a tier, the snapshot
        carries the alive table, so the index is spilled and dropped —
        under the dataset's scheduling lock, so no gateway write can
        land between the snapshot and the drop; if that lock is busy (a
        batch is mid-flight) or the disk write fails, the evict degrades
        to the pinned cache clear.  ``force=True`` drops without
        spilling, accepting the data loss — that is :meth:`unregister`'s
        path.
        """
        with self._lock:
            index = self._resident.get(name)
            if index is None:
                return False
            spec = self._specs.get(name)
        live = spec is not None and spec.live
        spilled = False
        # Budget-pressure evictions triggered while serving a request
        # (enforce_budget inside get()) land in that request's trace.
        with child_of_current("evict", dataset=name) as span:
            if live and not force:
                if self.store is not None and spec.lock.acquire(blocking=False):
                    try:
                        self.store.save_index(
                            name, index, registration=spec.registration()
                        )
                        spilled = True
                        if self.wal is not None:
                            # The snapshot now carries every write up to
                            # this version; compact while still fencing.
                            self.wal.truncate(name, index.version)
                        # Drop while still fencing the dataset: a write that
                        # arrives after this point re-enters through get()
                        # and lands on the reloaded snapshot.
                        with self._lock:
                            self._resident.pop(name, None)
                    except OSError:
                        spilled = False
                    finally:
                        spec.lock.release()
                if not spilled:
                    # Pinned: reclaim engines and memos, keep the data.
                    index.clear_caches()
                    self.metrics.incr(name, "cache_clears")
                    span.annotate(outcome="cache_clear")
                    return False
            else:
                if self.store is not None and spec is not None and not force:
                    # Frozen spill is an optimization (rebuilds are
                    # deterministic and bit-identical): a failed write just
                    # means the next get() rebuilds instead of reloading.
                    try:
                        self.store.save_index(
                            name, index, registration=spec.registration()
                        )
                        spilled = True
                    except OSError:
                        pass
                with self._lock:
                    if self._resident.pop(name, None) is None:
                        return False  # a racing evict won (and did the books)
            # clear_caches serializes on the index's serve lock; never wait
            # for a busy index while holding the registry lock.
            index.clear_caches()
            self.metrics.incr(name, "evictions")
            if spilled:
                self.metrics.incr(name, "spills")
                span.annotate(spilled=True)
        return True

    def enforce_budget(self) -> int:
        """Reclaim LRU indexes until under ``max_bytes``.

        Returns the number of *dropped* indexes.  The most recently
        touched index always stays (a lone index above budget cannot be
        evicted out of serving); frozen victims are dropped (spilled
        first when a tier exists), live victims spill too when a tier
        exists and otherwise only have their caches cleared — their
        applied writes exist nowhere else (see :meth:`evict`).
        """
        if self.max_bytes is None:
            return 0
        with self._lock:
            names = list(self._resident)
            indexes = dict(self._resident)
        # Account and evict outside the registry lock (see
        # total_cache_bytes); each index is measured once per pass and
        # the reclaimed bytes subtracted as it goes.  Victims are taken
        # in LRU order, never the most recently used; evict() itself
        # decides whether a victim is dropped (frozen) or only
        # cache-cleared (live — pinned, but its engines and memos are
        # still reclaimable).
        sizes = {n: ix.cache_bytes() for n, ix in indexes.items()}
        total = sum(sizes.values())
        evicted = 0
        for victim in names[:-1]:
            if total <= self.max_bytes:
                break
            if self.evict(victim):
                total -= sizes[victim]
                evicted += 1
            else:
                total -= sizes[victim] - indexes[victim].cache_bytes()
        return evicted

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Registry state: budget, residency, spill tier, per-dataset bytes."""
        with self._lock:
            registered = list(self._specs)
            indexes = dict(self._resident)
        resident = {name: ix.cache_bytes() for name, ix in indexes.items()}
        return {
            "max_bytes": self.max_bytes,
            "registered": registered,
            "resident": resident,
            "total_cache_bytes": sum(resident.values()),
            "spill_dir": None if self.store is None else str(self.store.root),
            "spilled": () if self.store is None else self.store.names(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"DatasetRegistry(registered={len(self._specs)}, "
                f"resident={len(self._resident)})"
            )
