"""``DatasetRegistry``: many named indexes under one byte budget.

A serving process that hosts many datasets cannot keep every
``FairHMSIndex`` fully warm: each index pins its normalized database,
skyline, and — the dominant term — one ``(m, n)`` engine score matrix
per distinct ``(m, seed)``.  The registry manages named index *specs*
(a dataset or a zero-argument factory), builds indexes lazily on first
access, and enforces an optional byte budget with LRU eviction:

* byte accounting uses the indexes' own
  :meth:`~repro.serving.index.FairHMSIndex.cache_bytes` (surfaced in
  ``cache_info()``), so the budget tracks what is actually resident;
* eviction calls :meth:`~repro.serving.index.FairHMSIndex.clear_caches`
  — releasing engines, geometry, memoized results, and the evaluator —
  and then drops the index object itself; the spec stays registered;
* a later :meth:`get` rebuilds from the spec, and because every build is
  deterministic the rebuilt index answers **bit-identically** to the
  evicted one (eviction costs warm-up, never correctness).

The most recently touched index is never evicted, so a single index
larger than the whole budget still serves (the budget is then best
effort — it bounds *extra* residency, not the working set).  **Live**
indexes are never auto-evicted at all: the inserts/deletes applied to
them exist nowhere else, so a rebuild from the spec would silently lose
them; budget pressure only clears their caches (see :meth:`evict`).

All operations are thread-safe; per-dataset serialization of queries
against updates is the gateway's job (see
:meth:`DatasetRegistry.lock_for`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..data.dataset import Dataset
from ..serving.index import FairHMSIndex
from ..serving.live import LiveFairHMSIndex
from .metrics import ServiceMetrics
from .shard import build_index_sharded

__all__ = ["DatasetRegistry"]


@dataclass
class _Spec:
    """How to (re)build one named index."""

    name: str
    dataset: Dataset | None
    factory: object | None  # zero-argument callable -> Dataset
    live: bool
    build_workers: int
    build_shards: int | None
    index_kwargs: dict
    lock: threading.RLock = field(default_factory=threading.RLock)

    def load_dataset(self) -> Dataset:
        return self.dataset if self.dataset is not None else self.factory()


class DatasetRegistry:
    """Named, lazily built, byte-budgeted collection of serving indexes.

    Args:
        max_bytes: total :meth:`cache_bytes` budget across resident
            indexes; ``None`` disables eviction.
        metrics: shared :class:`ServiceMetrics` sink (one is created if
            omitted); builds and evictions are recorded per dataset.
    """

    def __init__(
        self,
        *,
        max_bytes: int | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._lock = threading.RLock()
        self._specs: dict[str, _Spec] = {}
        self._resident: OrderedDict[str, FairHMSIndex] = OrderedDict()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        dataset: Dataset | None = None,
        *,
        factory=None,
        live: bool = False,
        build_workers: int = 0,
        build_shards: int | None = None,
        **index_kwargs,
    ) -> None:
        """Register a named dataset; the index is built on first access.

        Args:
            name: registry key used by :meth:`get` and the gateway.
            dataset: the raw database (kept for deterministic rebuilds).
            factory: zero-argument callable returning the dataset —
                alternative to ``dataset`` when keeping raw data resident
                is itself too expensive.  Must be deterministic for
                rebuild-after-eviction to be bit-identical.
            live: build a :class:`LiveFairHMSIndex` (accepts gateway
                updates).  Live indexes build sequentially — they own
                their preprocessing pipeline.
            build_workers: with > 1 (and ``live=False``), cold builds run
                through the sharded parallel builder with this many
                process-pool workers.
            build_shards: shard count for the parallel builder
                (default: twice the workers).
            **index_kwargs: forwarded to the index constructor
                (``default_seed``, ``cache_results``, ...).
        """
        if (dataset is None) == (factory is None):
            raise ValueError("provide exactly one of dataset or factory")
        if live and build_workers > 1:
            raise ValueError("live indexes build sequentially; drop build_workers")
        with self._lock:
            if name in self._specs:
                raise ValueError(f"dataset {name!r} is already registered")
            self._specs[name] = _Spec(
                name=name,
                dataset=dataset,
                factory=factory,
                live=bool(live),
                build_workers=int(build_workers),
                build_shards=build_shards,
                index_kwargs=dict(index_kwargs),
            )

    def unregister(self, name: str) -> None:
        """Drop the spec and any resident index for ``name``.

        For a live index this discards its applied writes.
        """
        with self._lock:
            self.evict(name, force=True)
            self._specs.pop(name, None)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def get(self, name: str) -> FairHMSIndex:
        """The serving index for ``name``, built now if not resident.

        Touches the LRU order and re-enforces the byte budget (the
        returned index itself is never the eviction victim).  Builds run
        *outside* the registry lock — one slow cold build never blocks
        other datasets — serialized per dataset on the spec lock (the
        same lock the gateway drains that dataset's mailbox under).
        """
        with self._lock:
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(f"unknown dataset {name!r}")
            index = self._resident.get(name)
            if index is not None:
                self._resident.move_to_end(name)
        if index is None:
            with spec.lock:  # serialize concurrent builders per dataset
                with self._lock:
                    index = self._resident.get(name)
                if index is None:
                    index = self._build(spec)
                with self._lock:
                    if name in self._specs:
                        # A racing builder (direct get() calls around the
                        # spec lock) wins; keep one.  An unregistered-
                        # mid-build name is served but not retained.
                        index = self._resident.setdefault(name, index)
                        self._resident.move_to_end(name)
        self.enforce_budget()
        return index

    def _build(self, spec: _Spec) -> FairHMSIndex:
        data = spec.load_dataset()
        if spec.live:
            index: FairHMSIndex = LiveFairHMSIndex(data, **spec.index_kwargs)
        elif spec.build_workers > 1:
            index = build_index_sharded(
                data,
                num_shards=spec.build_shards,
                max_workers=spec.build_workers,
                **spec.index_kwargs,
            )
        else:
            index = FairHMSIndex(data, **spec.index_kwargs)
        self.metrics.incr(spec.name, "builds")
        return index

    def peek(self, name: str) -> FairHMSIndex | None:
        """The resident index, or ``None`` — no build, no LRU touch."""
        with self._lock:
            return self._resident.get(name)

    def lock_for(self, name: str) -> threading.RLock:
        """Per-dataset scheduling lock (survives eviction and rebuild).

        The gateway serializes each dataset's writes and query batches on
        this lock, which outlives the index object itself — so a rebuild
        after eviction cannot interleave with an in-flight batch.
        """
        with self._lock:
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(f"unknown dataset {name!r}")
            return spec.lock

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._specs)

    def resident_names(self) -> tuple[str, ...]:
        """Resident indexes, least-recently-used first."""
        with self._lock:
            return tuple(self._resident)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    # ------------------------------------------------------------------ #
    # memory budget
    # ------------------------------------------------------------------ #

    def total_cache_bytes(self) -> int:
        """Sum of :meth:`cache_bytes` over resident indexes.

        Byte accounting runs on a snapshot, *outside* the registry lock:
        ``cache_bytes`` serializes on each index's own serve lock, and
        waiting on a busy index while holding the registry lock would
        stall every other dataset.
        """
        with self._lock:
            indexes = list(self._resident.values())
        return sum(ix.cache_bytes() for ix in indexes)

    def evict(self, name: str, *, force: bool = False) -> bool:
        """Release ``name``'s caches and drop its index; keep the spec.

        Returns True if an index was dropped.  Callers holding a
        reference to the evicted index can keep using it (answers stay
        correct — caches only went cold); the registry will rebuild a
        fresh, bit-identical index on the next :meth:`get`.

        **Live indexes are pinned**: they are the system of record for
        the inserts/deletes applied to them, so dropping one would
        silently rebuild from the original registered dataset and lose
        every write.  Without ``force``, evicting a live index only
        clears its caches (reclaiming engines and memos, keeping the
        data) and returns False; ``force=True`` really drops it —
        :meth:`unregister` uses that, accepting the data loss.
        """
        with self._lock:
            index = self._resident.get(name)
            if index is None:
                return False
            spec = self._specs.get(name)
            pinned = spec is not None and spec.live and not force
            if not pinned:
                self._resident.pop(name)
        # clear_caches serializes on the index's serve lock; never wait
        # for a busy index while holding the registry lock.
        index.clear_caches()
        self.metrics.incr(name, "evictions")
        return not pinned

    def enforce_budget(self) -> int:
        """Reclaim LRU indexes until under ``max_bytes``.

        Returns the number of *dropped* indexes.  The most recently
        touched index always stays (a lone index above budget cannot be
        evicted out of serving); frozen victims are dropped, live
        victims only have their caches cleared — their applied writes
        exist nowhere else (see :meth:`evict`).
        """
        if self.max_bytes is None:
            return 0
        with self._lock:
            names = list(self._resident)
            indexes = dict(self._resident)
        # Account and evict outside the registry lock (see
        # total_cache_bytes); each index is measured once per pass and
        # the reclaimed bytes subtracted as it goes.  Victims are taken
        # in LRU order, never the most recently used; evict() itself
        # decides whether a victim is dropped (frozen) or only
        # cache-cleared (live — pinned, but its engines and memos are
        # still reclaimable).
        sizes = {n: ix.cache_bytes() for n, ix in indexes.items()}
        total = sum(sizes.values())
        evicted = 0
        for victim in names[:-1]:
            if total <= self.max_bytes:
                break
            if self.evict(victim):
                total -= sizes[victim]
                evicted += 1
            else:
                total -= sizes[victim] - indexes[victim].cache_bytes()
        return evicted

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Registry state: budget, residency, and per-dataset bytes."""
        with self._lock:
            registered = list(self._specs)
            indexes = dict(self._resident)
        resident = {name: ix.cache_bytes() for name, ix in indexes.items()}
        return {
            "max_bytes": self.max_bytes,
            "registered": registered,
            "resident": resident,
            "total_cache_bytes": sum(resident.values()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"DatasetRegistry(registered={len(self._specs)}, "
                f"resident={len(self._resident)})"
            )
