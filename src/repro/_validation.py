"""Common argument validation helpers shared across the library.

All public entry points validate their inputs eagerly so that failures
surface at the API boundary with actionable messages instead of deep inside
numerical code.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "check_dim",
    "check_positive_int",
    "check_unit_interval",
    "check_group_labels",
]


def as_points(points, *, name: str = "points") -> np.ndarray:
    """Coerce ``points`` to a 2-D float64 array of shape ``(n, d)``.

    Raises:
        ValueError: if the input is not 2-D, is empty, contains NaN/inf,
            or contains negative coordinates (the paper's data model is
            ``R^d_+``).
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got ndim={arr.ndim}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one point")
    if arr.shape[1] == 0:
        raise ValueError(f"{name} must have at least one attribute")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} must not contain NaN or infinite values")
    if (arr < 0).any():
        raise ValueError(f"{name} must be nonnegative (data model is R^d_+)")
    return arr


def check_dim(points: np.ndarray, expected: int, *, name: str = "points") -> None:
    """Raise ``ValueError`` unless ``points`` has exactly ``expected`` columns."""
    if points.shape[1] != expected:
        raise ValueError(
            f"{name} must be {expected}-dimensional, got d={points.shape[1]}"
        )


def check_positive_int(value, *, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_unit_interval(value, *, name: str, open_left: bool = True) -> float:
    """Validate a parameter in ``(0, 1)`` (or ``[0, 1)`` if not open_left)."""
    value = float(value)
    low_ok = value > 0.0 if open_left else value >= 0.0
    if not (low_ok and value < 1.0):
        bracket = "(0, 1)" if open_left else "[0, 1)"
        raise ValueError(f"{name} must lie in {bracket}, got {value}")
    return value


def check_group_labels(labels, n: int) -> np.ndarray:
    """Validate group labels: 1-D int array of length ``n`` labeling 0..C-1.

    Every group id in ``0..max`` must be present (no empty groups), matching
    the paper's model of ``C`` disjoint non-empty groups.
    """
    arr = np.asarray(labels)
    if arr.ndim != 1 or arr.shape[0] != n:
        raise ValueError(f"group labels must be a 1-D array of length {n}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError("group labels must be integers")
    arr = arr.astype(np.int64)
    if arr.min() < 0:
        raise ValueError("group labels must be nonnegative")
    num_groups = int(arr.max()) + 1
    present = np.bincount(arr, minlength=num_groups)
    missing = np.nonzero(present == 0)[0]
    if missing.size:
        raise ValueError(f"group ids must be contiguous; missing groups {missing.tolist()}")
    return arr
