"""Unit + property tests for the 2-D envelope machinery (IntCov's core)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.envelope import tau_interval, tau_intervals, upper_envelope


def env_brute(points, lams):
    """Reference envelope values by direct max over score lines."""
    lams = np.asarray(lams)
    x, y = points[:, 0], points[:, 1]
    return (y[None, :] + (x - y)[None, :] * lams[:, None]).max(axis=1)


points_2d = arrays(
    np.float64,
    st.tuples(st.integers(1, 30), st.just(2)),
    elements=st.floats(0.0, 1.0, width=16),
)


class TestUpperEnvelope:
    def test_single_point(self):
        env = upper_envelope([[0.5, 0.8]])
        assert env.value(0.0) == pytest.approx(0.8)
        assert env.value(1.0) == pytest.approx(0.5)
        assert env.value(0.5) == pytest.approx(0.65)

    def test_two_crossing_lines(self):
        env = upper_envelope([[1.0, 0.0], [0.0, 1.0]])
        assert env.value(0.0) == pytest.approx(1.0)
        assert env.value(1.0) == pytest.approx(1.0)
        assert env.value(0.5) == pytest.approx(0.5)
        assert env.num_pieces == 2

    def test_dominated_line_excluded(self):
        env = upper_envelope([[1.0, 1.0], [0.5, 0.5]])
        assert env.num_pieces == 1
        assert env.supporting_points().tolist() == [0]

    def test_duplicate_slope_keeps_higher(self):
        env = upper_envelope([[0.6, 0.2], [0.8, 0.4]])  # parallel lines
        assert env.value(0.0) == pytest.approx(0.4)
        assert env.value(1.0) == pytest.approx(0.8)

    def test_breaks_are_sorted(self):
        rng = np.random.default_rng(0)
        env = upper_envelope(rng.random((50, 2)))
        assert (np.diff(env.breaks) >= 0).all()
        assert env.breaks[0] == 0.0
        assert env.breaks[-1] == 1.0

    def test_value_rejects_out_of_range(self):
        env = upper_envelope([[0.5, 0.5]])
        with pytest.raises(ValueError):
            env.value(1.5)

    def test_vectorized_value(self):
        rng = np.random.default_rng(1)
        pts = rng.random((20, 2))
        env = upper_envelope(pts)
        lams = np.linspace(0, 1, 33)
        np.testing.assert_allclose(env.value(lams), env_brute(pts, lams), atol=1e-9)

    @given(points_2d)
    def test_envelope_matches_brute_force(self, pts):
        env = upper_envelope(pts)
        lams = np.linspace(0, 1, 41)
        np.testing.assert_allclose(env.value(lams), env_brute(pts, lams), atol=1e-7)

    @given(points_2d)
    def test_envelope_is_convex(self, pts):
        env = upper_envelope(pts)
        lams = np.linspace(0, 1, 21)
        vals = np.asarray(env.value(lams))
        mids = np.asarray(env.value((lams[:-1] + lams[1:]) / 2))
        chords = (vals[:-1] + vals[1:]) / 2
        assert (mids <= chords + 1e-9).all()

    def test_supporting_points_achieve_max(self):
        rng = np.random.default_rng(2)
        pts = rng.random((40, 2))
        env = upper_envelope(pts)
        support = set(env.supporting_points().tolist())
        for lam in np.linspace(0, 1, 11):
            scores = pts[:, 1] + (pts[:, 0] - pts[:, 1]) * lam
            assert int(np.argmax(scores)) in support or (
                scores.max() - scores[sorted(support)].max() < 1e-9
            )


class TestTauInterval:
    def test_full_interval_for_top_point(self):
        pts = np.array([[1.0, 1.0], [0.5, 0.5]])
        env = upper_envelope(pts)
        assert tau_interval(pts[0], env, 1.0) == pytest.approx((0.0, 1.0))

    def test_empty_for_weak_point(self):
        pts = np.array([[1.0, 1.0], [0.2, 0.2]])
        env = upper_envelope(pts)
        assert tau_interval(pts[1], env, 0.9) is None

    def test_partial_interval(self):
        pts = np.array([[1.0, 0.0], [0.0, 1.0]])
        env = upper_envelope(pts)
        iv = tau_interval(pts[0], env, 0.9)
        assert iv is not None
        lo, hi = iv
        assert hi == pytest.approx(1.0)
        assert 0.4 < lo < 0.6  # crosses near the middle

    def test_invalid_tau(self):
        env = upper_envelope([[0.5, 0.5]])
        with pytest.raises(ValueError):
            tau_interval([0.5, 0.5], env, 1.5)

    def test_invalid_point_shape(self):
        env = upper_envelope([[0.5, 0.5]])
        with pytest.raises(ValueError):
            tau_interval([0.5, 0.5, 0.5], env, 0.5)

    @given(points_2d, st.floats(0.05, 1.0))
    def test_interval_matches_grid_scan(self, pts, tau):
        """I_tau(p) must agree with a brute-force lambda grid scan."""
        env = upper_envelope(pts)
        lams = np.linspace(0, 1, 201)
        env_vals = np.asarray(env.value(lams))
        for i in range(min(5, pts.shape[0])):
            line = pts[i, 1] + (pts[i, 0] - pts[i, 1]) * lams
            feasible = line >= tau * env_vals - 1e-9
            iv = tau_interval(pts[i], env, tau)
            if iv is None:
                # No grid point should be clearly feasible.
                assert not (line > tau * env_vals + 1e-7).any()
            else:
                lo, hi = iv
                inside = (lams >= lo - 5e-3) & (lams <= hi + 5e-3)
                # Every clearly feasible grid point lies inside the interval.
                clearly = line > tau * env_vals + 1e-7
                assert (inside | ~clearly).all()
                # And the interval's interior grid points are feasible.
                interior = (lams >= lo + 5e-3) & (lams <= hi - 5e-3)
                assert (feasible | ~interior).all()

    def test_tau_intervals_batch(self):
        pts = np.array([[1.0, 0.0], [0.0, 1.0], [0.1, 0.1]])
        env = upper_envelope(pts)
        ivs = tau_intervals(pts, env, 0.8)
        assert len(ivs) == 3
        assert ivs[0] is not None and ivs[1] is not None
        assert ivs[2] is None
