"""Unit tests for repro._validation."""

import numpy as np
import pytest

from repro._validation import (
    as_points,
    check_dim,
    check_group_labels,
    check_positive_int,
    check_unit_interval,
)


class TestAsPoints:
    def test_accepts_lists(self):
        arr = as_points([[1.0, 2.0], [3.0, 4.0]])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            as_points([1.0, 2.0])

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            as_points(np.zeros((2, 2, 2)))

    def test_rejects_empty_rows(self):
        with pytest.raises(ValueError, match="at least one point"):
            as_points(np.zeros((0, 3)))

    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError, match="at least one attribute"):
            as_points(np.zeros((3, 0)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            as_points([[np.nan, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            as_points([[np.inf, 1.0]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            as_points([[-0.1, 1.0]])

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="database"):
            as_points([-1.0], name="database")

    def test_returns_copy_semantics_for_lists(self):
        data = [[1.0, 2.0]]
        arr = as_points(data)
        arr[0, 0] = 9.0
        assert data[0][0] == 1.0


class TestCheckDim:
    def test_accepts_matching(self):
        check_dim(np.zeros((3, 2)), 2)

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_dim(np.zeros((3, 4)), 2)


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(5, name="k") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), name="k") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(0, name="k")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(-3, name="k")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, name="k")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, name="k")


class TestCheckUnitInterval:
    def test_accepts_interior(self):
        assert check_unit_interval(0.5, name="eps") == 0.5

    def test_rejects_zero_when_open(self):
        with pytest.raises(ValueError):
            check_unit_interval(0.0, name="eps")

    def test_accepts_zero_when_closed(self):
        assert check_unit_interval(0.0, name="eps", open_left=False) == 0.0

    def test_rejects_one(self):
        with pytest.raises(ValueError):
            check_unit_interval(1.0, name="eps")


class TestCheckGroupLabels:
    def test_accepts_contiguous(self):
        out = check_group_labels([0, 1, 0, 2], 4)
        assert out.dtype == np.int64

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_group_labels([0, 1], 3)

    def test_rejects_floats(self):
        with pytest.raises(ValueError, match="integers"):
            check_group_labels(np.array([0.0, 1.0]), 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            check_group_labels([-1, 0], 2)

    def test_rejects_gaps(self):
        with pytest.raises(ValueError, match="missing groups"):
            check_group_labels([0, 2], 2)
