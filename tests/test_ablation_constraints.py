"""Tests for the constraint-family ablation runner and sparklines."""

import pytest

from repro.experiments.ablation_constraints import (
    AblationConstraintsConfig,
    render_ablation_constraints,
    run_ablation_constraints,
)
from repro.experiments.common import sparkline


class TestSparkline:
    def test_monotone_series(self):
        out = sparkline([1, 2, 3, 4])
        assert out[0] == "▁" and out[-1] == "█"
        assert len(out) == 4

    def test_constant_series(self):
        out = sparkline([2, 2, 2])
        assert len(set(out)) == 1

    def test_none_rendered_as_space(self):
        assert sparkline([1, None, 3])[1] == " "

    def test_all_none(self):
        assert sparkline([None, None]) == "  "

    def test_explicit_bounds(self):
        out = sparkline([0.5], minimum=0.0, maximum=1.0)
        assert out in "▃▄▅"


class TestAblationConstraints:
    @pytest.fixture(scope="class")
    def results(self):
        config = AblationConstraintsConfig(
            k=6,
            anticor_n=200,
            real_n=1_500,
            panels=(
                ("Adult (Gender)", {"real": ("Adult", "Gender")}),
                ("AntiCor_6D", {"anticor": (6, 3)}),
            ),
        )
        return run_ablation_constraints(config)

    def test_all_families_present(self, results):
        for records in results.values():
            families = {r.algorithm for r in records}
            assert "proportional" in families
            assert "balanced" in families
            assert "unconstrained" in families

    def test_fair_families_have_zero_violations(self, results):
        for records in results.values():
            for r in records:
                assert r.violations == 0

    def test_unconstrained_weakly_best(self, results):
        for records in results.values():
            best_fair = max(
                r.mhr for r in records if r.algorithm != "unconstrained"
            )
            unconstrained = next(
                r.mhr for r in records if r.algorithm == "unconstrained"
            )
            # Unconstrained has a superset feasible region; allow net noise.
            assert unconstrained >= best_fair - 0.05

    def test_exact_quota_at_most_proportional(self, results):
        """A stricter family can never beat a looser one (up to noise)."""
        for records in results.values():
            by_family = {r.algorithm: r.mhr for r in records}
            if "exact-quota" in by_family:
                assert (
                    by_family["exact-quota"]
                    <= by_family["proportional"] + 0.05
                )

    def test_render(self, results):
        out = render_ablation_constraints(results)
        assert "Constraint-family ablation" in out
        assert "group composition" in out
