"""Unit tests for FairnessConstraint."""

import numpy as np
import pytest

from repro.fairness.constraints import FairnessConstraint


class TestConstruction:
    def test_basic(self):
        c = FairnessConstraint(lower=[1, 0], upper=[2, 3], k=4)
        assert c.num_groups == 2
        assert c.k == 4

    def test_rejects_negative_lower(self):
        with pytest.raises(ValueError):
            FairnessConstraint(lower=[-1, 0], upper=[2, 3], k=4)

    def test_rejects_upper_below_lower(self):
        with pytest.raises(ValueError):
            FairnessConstraint(lower=[2], upper=[1], k=2)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            FairnessConstraint(lower=[1, 1], upper=[2], k=2)

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            FairnessConstraint(lower=[], upper=[], k=2)

    def test_bounds_immutable(self):
        c = FairnessConstraint(lower=[1], upper=[2], k=2)
        with pytest.raises(ValueError):
            c.lower[0] = 5


class TestProportional:
    def test_paper_formula(self):
        # k=10, sizes 60/40, alpha=0.1 -> shares 6 and 4.
        c = FairnessConstraint.proportional(10, [60, 40], alpha=0.1, clamp=False)
        assert c.lower.tolist() == [int(np.floor(0.9 * 6)), int(np.floor(0.9 * 4))]
        assert c.upper.tolist() == [int(np.ceil(1.1 * 6)), int(np.ceil(1.1 * 4))]

    def test_clamping_floors_lower_at_one(self):
        c = FairnessConstraint.proportional(5, [990, 10], alpha=0.1, clamp=True)
        assert c.lower.min() >= 1

    def test_clamping_caps_upper(self):
        c = FairnessConstraint.proportional(5, [990, 10], alpha=0.1, clamp=True)
        assert c.upper.max() <= 5 - 2 + 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            FairnessConstraint.proportional(5, [10, 10], alpha=1.5)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            FairnessConstraint.proportional(5, [10, 0])


class TestBalanced:
    def test_equal_bounds(self):
        c = FairnessConstraint.balanced(9, 3, alpha=0.1, clamp=False)
        assert len(set(c.lower.tolist())) == 1
        assert len(set(c.upper.tolist())) == 1

    def test_respects_alpha(self):
        c = FairnessConstraint.balanced(10, 2, alpha=0.2, clamp=False)
        assert c.lower[0] == int(np.floor(0.8 * 5))
        assert c.upper[0] == int(np.ceil(1.2 * 5))


class TestExactAndUnconstrained:
    def test_exact(self):
        c = FairnessConstraint.exact([1, 2])
        assert c.k == 3
        assert (c.lower == c.upper).all()

    def test_unconstrained_accepts_anything(self):
        c = FairnessConstraint.unconstrained(4, 3)
        assert c.satisfied_by([0, 0, 1, 2], [0, 1, 2, 3])


class TestQueries:
    def test_is_feasible_for(self):
        c = FairnessConstraint(lower=[1, 1], upper=[2, 2], k=3)
        assert c.is_feasible_for([5, 5])
        assert not c.is_feasible_for([5, 0])   # group 1 below lower bound
        assert not c.is_feasible_for([1, 1])   # capacity 2 < k

    def test_is_feasible_wrong_groups(self):
        c = FairnessConstraint(lower=[1], upper=[2], k=2)
        assert not c.is_feasible_for([5, 5])

    def test_counts_of(self):
        c = FairnessConstraint(lower=[0, 0], upper=[3, 3], k=3)
        labels = np.array([0, 0, 1, 1, 1])
        assert c.counts_of(labels, [0, 2, 3]).tolist() == [1, 2]

    def test_satisfied_by(self):
        c = FairnessConstraint(lower=[1, 1], upper=[2, 2], k=3)
        labels = np.array([0, 0, 1, 1])
        assert c.satisfied_by(labels, [0, 1, 2])
        assert not c.satisfied_by(labels, [0, 1])  # wrong size

    def test_satisfied_by_bounds(self):
        c = FairnessConstraint(lower=[1, 1], upper=[1, 2], k=3)
        labels = np.array([0, 0, 1, 1])
        assert not c.satisfied_by(labels, [0, 1, 2])  # two from group 0 > h_0

    def test_describe(self):
        c = FairnessConstraint(lower=[1, 2], upper=[2, 3], k=4)
        assert c.describe(("F", "M")) == "F:1..2, M:2..3"
        assert c.describe() == "g0:1..2, g1:2..3"
