"""HTTP serving front-end: protocol, admission control, graceful drain.

The load-bearing invariants:

* every HTTP 200 query answer is bit-identical (ids + solver MHR
  estimate) to a direct ``FairHMSIndex`` solve over the same data;
* admission control sheds with 429 — never by queueing without bound —
  and the shed is counted in ``ServiceMetrics``;
* a drain lets in-flight requests resolve, answers later requests with
  503, refuses new connections, and spills live datasets (applied
  writes included) into a reloadable snapshot.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.synthetic import anticorrelated_dataset
from repro.serving import FairHMSIndex, LiveFairHMSIndex
from repro.service import DatasetRegistry
from repro.service.store import SnapshotStore
from repro.server import (
    DatasetSpec,
    FairHMSServer,
    ServerConfig,
    ServerThread,
    build_registry,
    demo_config,
    load_config,
    parse_config,
)
from repro.server.config import tomllib

N_FROZEN, N_LIVE = 300, 240


def frozen_data():
    return anticorrelated_dataset(N_FROZEN, 2, 3, seed=40, name="alpha")


def live_data():
    return anticorrelated_dataset(N_LIVE, 2, 3, seed=41, name="mut")


def make_registry(*, spill_dir=None) -> DatasetRegistry:
    registry = DatasetRegistry(spill_dir=spill_dir)
    registry.register("alpha", frozen_data(), default_seed=7)
    registry.register("mut", live_data(), live=True, default_seed=7)
    return registry


class Client:
    """Tiny keep-alive JSON client over one http.client connection."""

    def __init__(self, host, port, timeout=60):
        self.conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(self, method, path, payload=None):
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        self.conn.request(method, path, body=body, headers=headers)
        resp = self.conn.getresponse()
        body = json.loads(resp.read())
        # /v1/* responses arrive in the v1.1 envelope (TestEnvelope
        # pins its exact shape); successes unwrap to the payload so the
        # protocol tests keep asserting on substance, and errors stay
        # whole so they can check ``error.code``.
        if isinstance(body, dict) and "data" in body and "meta" in body:
            if body.get("error") is None:
                body = body["data"]
        return resp.status, body

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload):
        return self.request("POST", path, payload)

    def close(self):
        self.conn.close()


@pytest.fixture(scope="module")
def server():
    """One shared server over a frozen and a live dataset."""
    registry = make_registry()
    st = ServerThread(registry)
    host, port = st.start()
    yield host, port, registry
    st.drain()


@pytest.fixture()
def client(server):
    host, port, _ = server
    c = Client(host, port)
    yield c
    c.close()


class TestEndpoints:
    def test_healthz(self, client):
        status, payload = client.get("/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["datasets"] == 2
        assert payload["inflight"] == 0

    def test_datasets_listing(self, client):
        status, payload = client.get("/v1/datasets")
        assert status == 200
        rows = {row["name"]: row for row in payload["datasets"]}
        assert set(rows) == {"alpha", "mut"}
        assert rows["mut"]["live"] is True
        assert rows["alpha"]["live"] is False

    def test_query_bit_identical_to_direct_solve(self, client):
        reference = FairHMSIndex(frozen_data(), default_seed=7)
        for k in (3, 4, 6):
            status, payload = client.post(
                "/v1/query", {"dataset": "alpha", "k": k}
            )
            assert status == 200
            sol = reference.query(k)
            assert payload["ids"] == [int(v) for v in sol.ids]
            assert payload["mhr_estimate"] == sol.mhr_estimate
            assert payload["algorithm"] == sol.algorithm
            assert payload["group_counts"] == [int(v) for v in sol.group_counts()]
            assert payload["violations"] == sol.violations()

    def test_query_with_explicit_constraint(self, client):
        reference = FairHMSIndex(frozen_data(), default_seed=7)
        constraint = reference.constraint_for(4)
        status, payload = client.post(
            "/v1/query",
            {
                "dataset": "alpha",
                "constraint": {
                    "k": int(constraint.k),
                    "lower": [int(v) for v in constraint.lower],
                    "upper": [int(v) for v in constraint.upper],
                },
            },
        )
        assert status == 200
        sol = reference.query(constraint=constraint)
        assert payload["ids"] == [int(v) for v in sol.ids]

    def test_keep_alive_reuses_one_connection(self, client):
        for _ in range(3):
            status, _ = client.get("/healthz")
            assert status == 200

    def test_metrics_exposes_all_layers(self, client):
        client.post("/v1/query", {"dataset": "alpha", "k": 4})
        status, payload = client.get("/v1/metrics")
        assert status == 200
        assert payload["service"]["totals"]["requests"] >= 1
        assert "alpha" in payload["service"]["datasets"]
        assert payload["registry"]["registered"] == ["alpha", "mut"]
        server_block = payload["server"]
        assert server_block["max_inflight"] == 64
        assert server_block["draining"] is False
        assert server_block["http_latency"]["count"] >= 1
        assert server_block["endpoints"]["POST /v1/query"] >= 1

    def test_write_then_query_observes_the_write(self, client):
        status, payload = client.post(
            "/v1/write",
            {
                "dataset": "mut",
                "op": "insert",
                "key": 9_001,
                "point": [0.9, 0.9],
                "group": 1,
            },
        )
        assert status == 200
        assert payload["applied"] == "insert"
        assert payload["version"] == N_LIVE + 1
        status, payload = client.post("/v1/query", {"dataset": "mut", "k": 3})
        assert status == 200
        # Replay the same history in process: the answers must agree.
        oracle = LiveFairHMSIndex(live_data(), default_seed=7)
        oracle.insert(9_001, np.array([0.9, 0.9]), 1)
        sol = oracle.query(3)
        assert payload["ids"] == [int(v) for v in sol.ids]
        assert payload["mhr_estimate"] == sol.mhr_estimate
        # Clean up for the other tests sharing the module server.
        status, payload = client.post(
            "/v1/write", {"dataset": "mut", "op": "delete", "key": 9_001}
        )
        assert status == 200
        assert payload["applied"] == "delete"


class TestErrorMapping:
    def test_unknown_dataset_404(self, client):
        status, payload = client.post("/v1/query", {"dataset": "nope", "k": 3})
        assert status == 404
        assert payload["error"]["code"] == "dataset_not_found"
        assert "nope" in payload["error"]["message"]

    def test_unknown_route_404(self, client):
        status, _ = client.get("/v2/query")
        assert status == 404

    def test_wrong_method_405(self, client):
        status, _ = client.get("/v1/query")
        assert status == 405
        status, _ = client.post("/healthz", {})
        assert status == 405

    def test_oversized_header_line_400(self, server):
        # Regression: a header line past the asyncio stream limit used
        # to raise an unanswered ValueError out of the connection task
        # instead of the promised 400.
        host, port, _ = server
        c = Client(host, port)
        try:
            c.conn.request("GET", "/healthz", headers={"X-Big": "a" * 100_000})
            resp = c.conn.getresponse()
            assert resp.status == 400
            assert "too long" in json.loads(resp.read())["error"]
        finally:
            c.close()

    def test_malformed_json_400(self, client):
        client.conn.request(
            "POST",
            "/v1/query",
            body="{not json",
            headers={"Content-Type": "application/json"},
        )
        resp = client.conn.getresponse()
        assert resp.status == 400
        assert "invalid JSON" in json.loads(resp.read())["error"]["message"]

    def test_missing_k_and_constraint_400(self, client):
        status, payload = client.post("/v1/query", {"dataset": "alpha"})
        assert status == 400
        assert payload["error"]["code"] == "invalid_argument"
        assert payload["error"]["retryable"] is False

    def test_unknown_query_key_400(self, client):
        status, payload = client.post(
            "/v1/query", {"dataset": "alpha", "k": 3, "knob": 1}
        )
        assert status == 400
        assert "knob" in payload["error"]["message"]

    def test_write_to_frozen_dataset_400(self, client):
        status, _ = client.post(
            "/v1/write",
            {"dataset": "alpha", "op": "insert", "key": 1, "point": [0, 0],
             "group": 0},
        )
        assert status == 400

    def test_bad_write_op_400(self, client):
        status, payload = client.post(
            "/v1/write", {"dataset": "mut", "op": "upsert", "key": 1}
        )
        assert status == 400
        assert "upsert" in payload["error"]["message"]

    def test_infeasible_constraint_400(self, client):
        # Lower bounds beyond k are structurally infeasible.
        status, payload = client.post(
            "/v1/query",
            {
                "dataset": "alpha",
                "constraint": {"k": 2, "lower": [5, 5, 5], "upper": [5, 5, 5]},
            },
        )
        assert status == 400
        assert payload["error"]["code"] == "infeasible_constraint"


class TestEnvelope:
    """The v1.1 response envelope: shape, codes, and the legacy opt-out."""

    def raw(self, server, method, path, payload=None, headers=None):
        host, port, _ = server
        conn = http.client.HTTPConnection(host, port, timeout=60)
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        parsed = json.loads(resp.read())
        conn.close()
        return resp.status, parsed

    def test_success_envelope_shape(self, server):
        status, body = self.raw(
            server, "POST", "/v1/query", {"dataset": "alpha", "k": 4}
        )
        assert status == 200
        assert set(body) == {"data", "error", "meta"}
        assert body["error"] is None
        assert body["data"]["ids"]
        meta = body["meta"]
        assert meta["api_version"] == "1.1"
        assert meta["worker"] == "server"  # standalone default
        assert isinstance(meta["request_id"], str) and meta["request_id"]

    def test_error_envelope_shape(self, server):
        status, body = self.raw(
            server, "POST", "/v1/query", {"dataset": "ghost", "k": 4}
        )
        assert status == 404
        assert body["data"] is None
        assert set(body["error"]) == {"code", "message", "retryable"}
        assert body["error"]["code"] == "dataset_not_found"
        assert body["error"]["retryable"] is False
        assert body["meta"]["api_version"] == "1.1"

    def test_request_id_echoes_trace_id(self, server):
        _, body = self.raw(
            server, "POST", "/v1/query", {"dataset": "alpha", "k": 4},
            headers={"x-repro-trace": "envelope-test-1"},
        )
        assert body["meta"]["request_id"] == "envelope-test-1"

    def test_legacy_body_via_query_param(self, server):
        # Deprecated pre-1.1 compatibility: ?envelope=0 strips the
        # envelope and returns the bare payload (docs/API.md).
        status, body = self.raw(
            server, "POST", "/v1/query?envelope=0",
            {"dataset": "alpha", "k": 4},
        )
        assert status == 200
        assert "meta" not in body and "ids" in body
        status, body = self.raw(
            server, "POST", "/v1/query?envelope=0",
            {"dataset": "ghost", "k": 4},
        )
        assert status == 404
        assert isinstance(body["error"], str)  # legacy message-only shape

    def test_legacy_body_via_accept_header(self, server):
        from repro.server import LEGACY_ACCEPT

        status, body = self.raw(
            server, "POST", "/v1/query", {"dataset": "alpha", "k": 4},
            headers={"Accept": LEGACY_ACCEPT},
        )
        assert status == 200
        assert "meta" not in body and "ids" in body

    def test_envelope_param_overrides_accept(self, server):
        from repro.server import LEGACY_ACCEPT

        status, body = self.raw(
            server, "POST", "/v1/query?envelope=1",
            {"dataset": "alpha", "k": 4},
            headers={"Accept": LEGACY_ACCEPT},
        )
        assert status == 200
        assert set(body) == {"data", "error", "meta"}

    def test_healthz_stays_bare(self, server):
        status, body = self.raw(server, "GET", "/healthz")
        assert status == 200
        assert "meta" not in body and body["status"] == "ok"

    def test_worker_id_lands_in_meta(self):
        registry = DatasetRegistry()
        registry.register("alpha", frozen_data(), default_seed=7)
        with ServerThread(registry, worker_id="w7") as (host, port):
            status, body = self.raw(
                (host, port, registry), "POST", "/v1/query",
                {"dataset": "alpha", "k": 3},
            )
        assert status == 200
        assert body["meta"]["worker"] == "w7"


class GatedFactory:
    """Dataset factory that blocks builds until released (shed tests)."""

    def __init__(self, n=120, seed=50, name="slow"):
        self.gate = threading.Event()
        self._args = (n, seed, name)

    def __call__(self):
        self.gate.wait(timeout=60)
        n, seed, name = self._args
        return anticorrelated_dataset(n, 2, 3, seed=seed, name=name)


def _post_in_thread(host, port, path, payload, results, idx):
    client = Client(host, port, timeout=120)
    try:
        results[idx] = client.post(path, payload)
    finally:
        client.close()


def _wait_for_inflight(host, port, want, timeout=30.0):
    client = Client(host, port)
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            _, payload = client.get("/healthz")
            if payload["inflight"] >= want:
                return
            time.sleep(0.01)
    finally:
        client.close()
    raise AssertionError(f"inflight never reached {want}")


class TestAdmissionControl:
    def test_429_load_shedding_and_shed_counter(self):
        """With max_inflight=1, a second request sheds instead of queueing."""
        factory = GatedFactory()
        registry = DatasetRegistry()
        registry.register("slow", factory=factory, default_seed=7)
        with ServerThread(registry, max_inflight=1) as (host, port):
            results = [None, None]
            blocked = threading.Thread(
                target=_post_in_thread,
                args=(host, port, "/v1/query", {"dataset": "slow", "k": 3},
                      results, 0),
            )
            blocked.start()
            _wait_for_inflight(host, port, 1)

            shed_client = Client(host, port)
            status, payload = shed_client.post(
                "/v1/query", {"dataset": "slow", "k": 4}
            )
            assert status == 429
            assert payload["error"]["code"] == "shed"
            assert payload["error"]["retryable"] is True

            # Observability endpoints stay admitted under overload.
            status, metrics = shed_client.get("/v1/metrics")
            assert status == 200
            assert metrics["service"]["datasets"]["slow"]["shed"] == 1
            assert metrics["server"]["shed"] == 1
            shed_client.close()

            factory.gate.set()
            blocked.join(timeout=120)
            status, payload = results[0]
            assert status == 200  # the in-flight request was never harmed
            oracle = FairHMSIndex(
                anticorrelated_dataset(120, 2, 3, seed=50, name="slow"),
                default_seed=7,
            )
            assert payload["ids"] == [int(v) for v in oracle.query(3).ids]

    def test_shed_request_is_cheap_not_queued(self):
        """Sheds answer immediately even while the only slot is blocked."""
        factory = GatedFactory()
        registry = DatasetRegistry()
        registry.register("slow", factory=factory, default_seed=7)
        with ServerThread(registry, max_inflight=1) as (host, port):
            results = [None]
            blocked = threading.Thread(
                target=_post_in_thread,
                args=(host, port, "/v1/query", {"dataset": "slow", "k": 3},
                      results, 0),
            )
            blocked.start()
            _wait_for_inflight(host, port, 1)
            client = Client(host, port)
            t0 = time.perf_counter()
            status, _ = client.post("/v1/query", {"dataset": "slow", "k": 5})
            elapsed = time.perf_counter() - t0
            client.close()
            assert status == 429
            assert elapsed < 5.0  # immediate, not behind the blocked build
            factory.gate.set()
            blocked.join(timeout=120)
            assert results[0][0] == 200


class TestRetryAfter:
    """429 Retry-After derived from observed solve latency, not hardcoded."""

    def test_cold_server_hints_one_second(self):
        # No solve observed yet: nothing to derive from, fall back to 1.
        assert FairHMSServer(make_registry())._retry_after() == "1"

    def test_derived_from_solve_p50_and_inflight(self):
        registry = make_registry()
        server = FairHMSServer(registry)
        for _ in range(4):
            registry.metrics.observe_solve("alpha", 2.0)
        assert server._retry_after() == "2"  # ceil(p50), nothing in flight
        server._inflight = 3
        assert server._retry_after() == "6"  # ceil(2s p50 * 3 in flight)

    def test_clamped_to_sixty_seconds(self):
        registry = make_registry()
        server = FairHMSServer(registry)
        registry.metrics.observe_solve("alpha", 120.0)
        assert server._retry_after() == "60"

    def test_shed_response_carries_the_header(self):
        factory = GatedFactory()
        registry = DatasetRegistry()
        registry.register("slow", factory=factory, default_seed=7)
        with ServerThread(registry, max_inflight=1) as (host, port):
            results = [None]
            blocked = threading.Thread(
                target=_post_in_thread,
                args=(host, port, "/v1/query", {"dataset": "slow", "k": 3},
                      results, 0),
            )
            blocked.start()
            _wait_for_inflight(host, port, 1)
            conn = http.client.HTTPConnection(host, port, timeout=60)
            conn.request(
                "POST",
                "/v1/query",
                body=json.dumps({"dataset": "slow", "k": 4}),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            retry = resp.getheader("Retry-After")
            resp.read()
            conn.close()
            assert resp.status == 429
            assert retry is not None and retry.isdigit() and int(retry) >= 1
            factory.gate.set()
            blocked.join(timeout=120)
            assert results[0][0] == 200


class TestGracefulDrain:
    def test_drain_resolves_inflight_and_spills_reloadable(self, tmp_path):
        """The SIGTERM path end to end (triggered via drain()):

        in-flight request completes with a correct answer, later
        requests on live connections get 503, new connections are
        refused, and the live dataset's applied writes land in a
        snapshot a fresh process can reload.
        """
        factory = GatedFactory()
        registry = make_registry(spill_dir=tmp_path)
        registry.register("slow", factory=factory, default_seed=7)
        st = ServerThread(registry)
        host, port = st.start()

        # A write that must survive the drain, and a warm query.
        setup = Client(host, port)
        status, _ = setup.post(
            "/v1/write",
            {"dataset": "mut", "op": "insert", "key": 7_777,
             "point": [0.8, 0.7], "group": 2},
        )
        assert status == 200
        status, _ = setup.post("/v1/query", {"dataset": "mut", "k": 3})
        assert status == 200

        # Hold one request in flight on the gated dataset.
        results = [None]
        blocked = threading.Thread(
            target=_post_in_thread,
            args=(host, port, "/v1/query", {"dataset": "slow", "k": 3},
                  results, 0),
        )
        blocked.start()
        _wait_for_inflight(host, port, 1)

        # Drain from a helper thread (it blocks until shutdown is done).
        drainer = threading.Thread(target=st.drain)
        drainer.start()

        # The existing keep-alive connection sees draining (and the
        # server closes it after that response — drain semantics).
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status, payload = setup.get("/healthz")
            if payload.get("status") == "draining":
                break
            time.sleep(0.01)
        assert payload["status"] == "draining"
        setup.close()

        # A query arriving while draining is answered 503, not queued
        # (dispatched on the server loop: drained listeners refuse new
        # connections, so the wire can no longer carry one).
        import asyncio

        from repro.server.http import HttpRequest

        request = HttpRequest(
            method="POST",
            path="/v1/query",
            query="",
            headers={},
            body=json.dumps({"dataset": "mut", "k": 4}).encode(),
        )
        status, payload, _ = asyncio.run_coroutine_threadsafe(
            st.server._dispatch(request), st.loop
        ).result(timeout=30)
        assert status == 503
        assert payload["error"]["code"] == "draining"
        assert "drain" in payload["error"]["message"]

        # Release the gate: the in-flight request must resolve correctly.
        factory.gate.set()
        blocked.join(timeout=120)
        drainer.join(timeout=120)
        status, payload = results[0]
        assert status == 200
        oracle = FairHMSIndex(
            anticorrelated_dataset(120, 2, 3, seed=50, name="slow"),
            default_seed=7,
        )
        assert payload["ids"] == [int(v) for v in oracle.query(3).ids]

        # New connections are refused after the drain.
        with pytest.raises(OSError):
            probe = http.client.HTTPConnection(host, port, timeout=5)
            probe.request("GET", "/healthz")
            probe.getresponse()

        # The live dataset spilled with its applied write, reloadable.
        store = SnapshotStore(tmp_path)
        assert "mut" in store
        reloaded = store.load_index("mut")
        assert isinstance(reloaded, LiveFairHMSIndex)
        assert 7_777 in reloaded.dataset.ids
        oracle = LiveFairHMSIndex(live_data(), default_seed=7)
        oracle.insert(7_777, np.array([0.8, 0.7]), 2)
        a, b = reloaded.query(3), oracle.query(3)
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.mhr_estimate == b.mhr_estimate

    def test_drain_is_idempotent(self):
        registry = DatasetRegistry()
        registry.register("alpha", frozen_data(), default_seed=7)
        st = ServerThread(registry)
        st.start()
        st.drain()
        st.drain()  # second drain is a no-op, not an error

    def test_warm_start_from_drained_spill(self, tmp_path):
        """A second server over the same spill dir serves the writes the
        first one drained — the cross-process restart story."""
        registry = make_registry(spill_dir=tmp_path)
        with ServerThread(registry) as (host, port):
            c = Client(host, port)
            status, _ = c.post(
                "/v1/write",
                {"dataset": "mut", "op": "insert", "key": 4_242,
                 "point": [0.6, 0.6], "group": 0},
            )
            assert status == 200
            c.close()
        # Fresh registry, same specs + spill dir: reloads, not rebuilds.
        registry2 = make_registry(spill_dir=tmp_path)
        with ServerThread(registry2) as (host, port):
            c = Client(host, port)
            status, payload = c.post("/v1/query", {"dataset": "mut", "k": 3})
            assert status == 200
            c.close()
        oracle = LiveFairHMSIndex(live_data(), default_seed=7)
        oracle.insert(4_242, np.array([0.6, 0.6]), 0)
        sol = oracle.query(3)
        assert payload["ids"] == [int(v) for v in sol.ids]
        assert registry2.metrics.snapshot()["datasets"]["mut"]["spill_loads"] == 1


class TestConfig:
    def test_defaults_and_validation(self):
        config = ServerConfig()
        assert config.max_inflight == 64
        with pytest.raises(ValueError, match="max_inflight"):
            ServerConfig(max_inflight=0)
        with pytest.raises(ValueError, match="duplicate"):
            ServerConfig(
                datasets=(DatasetSpec(name="a"), DatasetSpec(name="a"))
            )
        with pytest.raises(ValueError, match="kind"):
            DatasetSpec(name="x", kind="parquet")
        with pytest.raises(ValueError, match="sequentially"):
            DatasetSpec(name="x", live=True, build_workers=4)

    def test_warmup_knob_parsed_and_validated(self):
        config = ServerConfig()
        assert config.warmup is False  # off by default: no surprise threads
        config = parse_config({"server": {"warmup": True, "warmup_ks": [3, 5]}})
        assert config.warmup is True
        assert config.warmup_ks == (3, 5)
        with pytest.raises(ValueError, match="warmup_ks"):
            ServerConfig(warmup_ks=(0,))
        server = FairHMSServer.from_config(config, registry=make_registry())
        assert server.warmer is not None
        assert server.warmer.ks == (3, 5)
        assert FairHMSServer(make_registry()).warmer is None

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown \\[server\\] keys"):
            parse_config({"server": {"prot": 1}})
        with pytest.raises(ValueError, match="unknown keys"):
            parse_config({"datasets": [{"name": "a", "sise": 5}]})
        with pytest.raises(ValueError, match="top-level"):
            parse_config({"serverr": {}})

    def test_json_config_roundtrip(self, tmp_path):
        path = tmp_path / "server.json"
        path.write_text(
            json.dumps(
                {
                    "server": {"port": 0, "max_inflight": 7, "spill_dir": "sp"},
                    "datasets": [
                        {"name": "a", "n": 200, "seed": 1},
                        {"name": "b", "n": 150, "seed": 2, "live": True},
                    ],
                }
            )
        )
        config = load_config(path)
        assert config.max_inflight == 7
        assert config.spill_dir == str(tmp_path / "sp")  # anchored to the file
        registry = build_registry(config)
        assert set(registry.names()) == {"a", "b"}
        assert registry.describe("b")["live"] is True
        # The factories really load (deterministically).
        assert registry.get("a").dataset.n == 200

    @pytest.mark.skipif(tomllib is None, reason="tomllib needs Python 3.11+")
    def test_toml_config(self, tmp_path):
        path = tmp_path / "server.toml"
        path.write_text(
            '[server]\nport = 0\nmax_inflight = 5\n\n'
            '[[datasets]]\nname = "a"\nn = 200\nseed = 3\n'
        )
        config = load_config(path)
        assert config.max_inflight == 5
        assert config.datasets[0].name == "a"

    def test_example_toml_config_parses(self):
        pytest.importorskip("tomllib")
        from pathlib import Path

        example = Path(__file__).resolve().parents[1] / "examples" / "server.toml"
        config = load_config(example)
        assert {spec.name for spec in config.datasets} == {
            "tenant0", "tenant1", "events",
        }
        assert any(spec.live for spec in config.datasets)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "server.yaml"
        path.write_text("{}")
        with pytest.raises(ValueError, match="unsupported config format"):
            load_config(path)

    def test_demo_config(self):
        config = demo_config(tenants=2, n=500)
        assert len(config.datasets) == 2
        registry = build_registry(config)
        assert set(registry.names()) == {"tenant0", "tenant1"}


class TestServerCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["server", "--demo"])
        assert args.config is None
        assert args.demo and not args.check
        assert args.tenants == 3

    def test_check_with_config_file(self, tmp_path, capsys):
        path = tmp_path / "srv.json"
        path.write_text(
            json.dumps(
                {
                    "server": {"port": 0},
                    "datasets": [{"name": "a", "n": 150, "seed": 4}],
                }
            )
        )
        assert main(["server", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "config ok" in out
        assert "a: frozen" in out

    def test_check_demo(self, capsys):
        assert main(["server", "--demo", "--check", "--port", "0"]) == 0
        assert "3 dataset(s)" in capsys.readouterr().out

    def test_requires_exactly_one_source(self, capsys):
        assert main(["server"]) == 2
        assert main(["server", "x.toml", "--demo"]) == 2

    def test_bad_config_path(self, capsys):
        assert main(["server", "/nonexistent/conf.json", "--check"]) == 2
        assert "error:" in capsys.readouterr().out
