"""BiGreedy+ (adaptive sampling) tests."""

import numpy as np
import pytest

from repro.core.adaptive import bigreedy_plus
from repro.fairness.constraints import FairnessConstraint


class TestBiGreedyPlus:
    def test_solution_is_fair(self, small3d):
        c = FairnessConstraint.proportional(5, small3d.group_sizes, alpha=0.1)
        s = bigreedy_plus(small3d, c, seed=0)
        assert s.size == 5
        assert s.violations() == 0
        assert s.algorithm == "BiGreedy+"

    def test_deterministic(self, small3d):
        c = FairnessConstraint.proportional(5, small3d.group_sizes, alpha=0.1)
        a = bigreedy_plus(small3d, c, seed=9)
        b = bigreedy_plus(small3d, c, seed=9)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_doubling_schedule(self, small3d):
        c = FairnessConstraint.proportional(4, small3d.group_sizes, alpha=0.1)
        s = bigreedy_plus(
            small3d, c, initial_size=8, max_size=64, lam=1e-9, seed=1
        )
        sizes = s.stats["net_sizes"]
        assert sizes[0] == 8
        for a, b in zip(sizes, sizes[1:]):
            assert b == min(2 * a, 64)
        assert sizes[-1] <= 64

    def test_lambda_stops_early(self, small3d):
        c = FairnessConstraint.proportional(4, small3d.group_sizes, alpha=0.1)
        s = bigreedy_plus(small3d, c, initial_size=8, max_size=512, lam=0.9, seed=2)
        # A huge lambda accepts after the second iteration.
        assert s.stats["iterations"] == 2

    def test_runs_every_iteration_with_tiny_lambda(self, small3d):
        c = FairnessConstraint.proportional(4, small3d.group_sizes, alpha=0.1)
        s = bigreedy_plus(small3d, c, initial_size=8, max_size=32, lam=1e-9, seed=3)
        assert s.stats["iterations"] == len(s.stats["net_sizes"])

    def test_invalid_lambda(self, small3d):
        c = FairnessConstraint.proportional(4, small3d.group_sizes, alpha=0.1)
        with pytest.raises(ValueError, match="lam"):
            bigreedy_plus(small3d, c, lam=0.0)

    def test_initial_exceeding_max(self, small3d):
        c = FairnessConstraint.proportional(4, small3d.group_sizes, alpha=0.1)
        with pytest.raises(ValueError, match="exceeds"):
            bigreedy_plus(small3d, c, initial_size=100, max_size=50)

    def test_quality_close_to_bigreedy(self, small3d):
        from repro.core.bigreedy import bigreedy

        c = FairnessConstraint.proportional(5, small3d.group_sizes, alpha=0.1)
        full = bigreedy(small3d, c, seed=4)
        plus = bigreedy_plus(small3d, c, seed=4)
        assert plus.mhr() >= full.mhr() - 0.15

    def test_lsac_example(self, lsac_sky):
        c = FairnessConstraint.exact([1, 1])
        s = bigreedy_plus(lsac_sky, c, seed=0)
        assert sorted(s.ids.tolist()) == [4, 7]  # a5, a8
