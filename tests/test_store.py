"""Snapshot persistence: round trips, checksums, and the registry spill tier.

The load-bearing invariants:

* a reloaded index answers **bit-identically** (ids + exact MHR) to the
  index it was saved from AND to a cold build of the same data — for
  frozen indexes, live indexes with applied inserts/deletes, and
  registry-mediated spill/reload cycles;
* every warm artifact survives the round trip (nets, engine matrices,
  geometry, memoized results) — a reload never silently degrades to a
  cold index;
* corruption never serves: checksum mismatches, missing payloads, and
  foreign format versions raise ``SnapshotError`` instead of answering.
"""

import json
import threading

import numpy as np
import pytest

from repro.data.synthetic import anticorrelated_dataset
from repro.service import (
    DatasetRegistry,
    Gateway,
    SnapshotError,
    SnapshotStore,
    dataset_fingerprint,
    load_index,
    save_index,
)
from repro.serving import FairHMSIndex, LiveFairHMSIndex


def assert_same_answers(a, b):
    np.testing.assert_array_equal(a.ids, b.ids)
    assert a.mhr() == b.mhr()


def sweep(index, ks=(4, 6, 8)):
    return [index.query(k) for k in ks]


@pytest.fixture()
def store(tmp_path):
    return SnapshotStore(tmp_path / "snaps")


def frozen_index(n=300, d=2, groups=3, seed=30, **kwargs):
    data = anticorrelated_dataset(n, d, groups, seed=seed, name=f"t{seed}")
    return FairHMSIndex(data, default_seed=7, **kwargs), data


class TestFrozenRoundTrip:
    def test_reload_bit_identical_to_saved_and_cold(self, store):
        index, data = frozen_index()
        before = sweep(index)
        store.save_index("a", index)
        reloaded = store.load_index("a")
        after = sweep(reloaded)
        cold = sweep(FairHMSIndex(data, default_seed=7))
        for b, a, c in zip(before, after, cold):
            assert_same_answers(b, a)
            assert_same_answers(a, c)

    def test_reload_restores_warm_state(self, store):
        # 6-D so engines exist; queries before saving warm everything.
        index, _ = frozen_index(n=200, d=6, groups=2, seed=31)
        before = sweep(index)
        saved_info = index.cache_info()
        assert saved_info["engines_cached"] >= 1
        store.save_index("a", index)
        reloaded = store.load_index("a")
        info = reloaded.cache_info()
        assert info["engines_cached"] == saved_info["engines_cached"]
        assert info["nets_cached"] == saved_info["nets_cached"]
        # The memo came back: repeating the workload solves nothing.
        after = sweep(reloaded)
        info = reloaded.cache_info()
        assert info["result_hits"] == len(after)
        assert info["result_misses"] == 0
        for b, a in zip(before, after):
            assert_same_answers(b, a)

    def test_reload_restores_2d_geometry(self, store):
        index, _ = frozen_index(n=250, d=2, seed=32)
        sweep(index)
        assert index.cache_info()["mhr_candidates_cached"]
        store.save_index("a", index)
        reloaded = store.load_index("a")
        info = reloaded.cache_info()
        assert info["mhr_candidates_cached"] and info["envelope_cached"]
        np.testing.assert_array_equal(
            reloaded.artifacts.mhr_candidates(), index.artifacts.mhr_candidates()
        )

    def test_restored_solutions_carry_provenance(self, store):
        index, _ = frozen_index(seed=33)
        solution = index.query(5)
        store.save_index("a", index)
        restored = store.load_index("a").query(5)
        assert restored.algorithm == solution.algorithm
        assert restored.mhr_estimate == solution.mhr_estimate
        assert restored.constraint is not None
        np.testing.assert_array_equal(
            restored.constraint.lower, solution.constraint.lower
        )
        assert restored.violations() == solution.violations()

    def test_unwarmed_index_round_trips(self, store):
        # Nothing cached yet: the snapshot is just the datasets.
        index, data = frozen_index(seed=34)
        store.save_index("a", index)
        reloaded = store.load_index("a")
        for a, b in zip(sweep(reloaded), sweep(FairHMSIndex(data, default_seed=7))):
            assert_same_answers(a, b)

    def test_skyline_meta_survives(self, store):
        index, data = frozen_index(seed=35)
        store.save_index("a", index)
        reloaded = store.load_index("a")
        assert (
            reloaded.skyline.meta["population_group_sizes"]
            == index.skyline.meta["population_group_sizes"]
        )
        assert reloaded.skyline.group_names == index.skyline.group_names

    def test_serving_config_survives(self, store):
        data = anticorrelated_dataset(150, 2, 2, seed=36)
        index = FairHMSIndex(data, default_seed=11, max_cached_results=17)
        store.save_index("a", index)
        assert store.load_index("a").serving_config() == {
            "default_seed": 11,
            "cache_results": True,
            "max_cached_results": 17,
        }


class TestLiveRoundTrip:
    def test_applied_writes_survive_the_spill(self, store):
        data = anticorrelated_dataset(250, 2, 3, seed=40, name="live")
        live = LiveFairHMSIndex(data, default_seed=7)
        live.insert(90_001, np.array([0.99, 0.97]), 0)
        live.insert(90_002, np.array([0.97, 0.99]), 1)
        live.delete(int(data.ids[0]))
        before = sweep(live)
        store.save_index("lv", live)
        reloaded = store.load_index("lv")
        assert isinstance(reloaded, LiveFairHMSIndex)
        assert 90_001 in reloaded and int(data.ids[0]) not in reloaded
        for b, a in zip(before, sweep(reloaded)):
            assert_same_answers(b, a)

    def test_reload_matches_cold_build_of_alive_set(self, store):
        data = anticorrelated_dataset(200, 3, 2, seed=41, name="live")
        live = LiveFairHMSIndex(data, default_seed=7)
        rng = np.random.default_rng(5)
        for i in range(15):
            live.insert(10_000 + i, rng.random(3) * 0.8 + 0.1, i % 2)
        for key in data.ids[:5].tolist():
            live.delete(int(key))
        store.save_index("lv", live)
        reloaded = store.load_index("lv")
        cold = LiveFairHMSIndex.from_live_state(**live.live_state())
        for a, b in zip(sweep(reloaded), sweep(cold)):
            assert_same_answers(a, b)

    def test_version_and_epoch_resume(self, store):
        data = anticorrelated_dataset(150, 2, 2, seed=42, name="live")
        live = LiveFairHMSIndex(data, default_seed=7)
        live.insert(90_001, np.array([0.5, 0.6]), 0)
        live.query(4)  # applies the update: epoch advances
        store.save_index("lv", live)
        reloaded = store.load_index("lv")
        assert reloaded.version == live.version
        assert reloaded.epoch == live.epoch

    def test_mutations_continue_after_reload(self, store):
        data = anticorrelated_dataset(180, 2, 3, seed=43, name="live")
        live = LiveFairHMSIndex(data, default_seed=7)
        live.insert(90_001, np.array([0.9, 0.8]), 0)
        store.save_index("lv", live)
        reloaded = store.load_index("lv")
        for ix in (live, reloaded):
            ix.insert(90_002, np.array([0.8, 0.95]), 2)
            ix.delete(90_001)
        for a, b in zip(sweep(live), sweep(reloaded)):
            assert_same_answers(a, b)


class TestIntegrity:
    def test_missing_snapshot_raises(self, store):
        with pytest.raises(SnapshotError, match="no snapshot"):
            store.load_index("ghost")
        with pytest.raises(SnapshotError):
            store.manifest("ghost")
        assert "ghost" not in store

    def test_corrupt_arrays_detected(self, store):
        index, _ = frozen_index(seed=50)
        path = store.save_index("a", index)
        arrays = next(path.glob("arrays-*.npz"))
        arrays.write_bytes(arrays.read_bytes()[: arrays.stat().st_size // 2])
        with pytest.raises(SnapshotError):
            store.load_index("a")

    def test_checksum_mismatch_detected(self, store):
        index, _ = frozen_index(seed=51)
        path = store.save_index("a", index)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["checksum"] = "0" * 64
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="checksum"):
            store.load_index("a")
        # ...but the caller can opt out (e.g. forensics).
        reloaded = store.load_index("a", verify=False)
        assert reloaded.dataset.n == index.dataset.n

    def test_foreign_format_version_refused(self, store):
        index, _ = frozen_index(seed=52)
        path = store.save_index("a", index)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format version"):
            store.load_index("a")

    def test_remove_and_names(self, store):
        index, _ = frozen_index(seed=53)
        store.save_index("a/b c", index)  # names are encoded, any string works
        assert store.names() == ("a/b c",)
        assert store.size_bytes("a/b c") > 0
        assert store.remove("a/b c")
        assert store.names() == ()
        assert not store.remove("a/b c")

    def test_fingerprint_identifies_data(self, store):
        _, data_a = frozen_index(seed=54)
        _, data_b = frozen_index(seed=55)
        assert dataset_fingerprint(data_a) == dataset_fingerprint(data_a)
        assert dataset_fingerprint(data_a) != dataset_fingerprint(data_b)

    def test_module_level_helpers(self, tmp_path):
        index, data = frozen_index(seed=56)
        save_index(tmp_path, "x", index)
        reloaded = load_index(tmp_path, "x")
        for a, b in zip(sweep(index), sweep(reloaded)):
            assert_same_answers(a, b)

    def test_overwrite_replaces_previous_snapshot(self, store):
        index, _ = frozen_index(seed=57)
        path = store.save_index("a", index)
        first = store.manifest("a")["checksum"]
        index.query(9)  # new memo entry -> different content
        store.save_index("a", index)
        manifest = store.manifest("a")
        assert manifest["checksum"] != first
        assert store.load_index("a").cache_info()["results_cached"] >= 1
        # The payload is content-addressed and the manifest is the only
        # commit point: after the overwrite exactly the referenced
        # payload remains (the superseded one was garbage collected), so
        # a crash between the two writes leaves the old pair intact.
        payloads = sorted(p.name for p in path.glob("arrays-*.npz"))
        assert payloads == [manifest["arrays_file"]]

    def test_dot_and_dotted_names_stay_inside_the_store(self, store):
        # Regression: percent-encoding leaves dots intact, so "." and
        # ".." used to escape the store root (writing into — and
        # remove() deleting from — the parent directory).
        index, _ = frozen_index(seed=58)
        for name in (".", "..", "a.b"):
            store.save_index(name, index)
        assert store.names() == (".", "..", "a.b")
        for child in store.root.iterdir():
            assert child.parent == store.root
        parent = store.root.parent
        assert not (parent / "manifest.json").exists()
        assert not list(parent.glob("arrays-*.npz"))
        for name in (".", "..", "a.b"):
            assert_same_answers(store.load_index(name).query(4), index.query(4))
            assert store.remove(name)
        assert store.root.is_dir()  # removal never touched the root itself
        with pytest.raises(ValueError, match="non-empty"):
            store.path_for("")


class TestRegistrySpillTier:
    def tenant(self, seed=60, **kwargs):
        return anticorrelated_dataset(260, 2, 3, seed=seed, **kwargs)

    def test_evict_spills_and_get_reloads_not_rebuilds(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("a", self.tenant(name="a"))
        before = reg.get("a").query(4)
        assert reg.evict("a")
        assert "a" in reg.store
        after = reg.get("a").query(4)
        assert_same_answers(before, after)
        totals = reg.metrics.snapshot()["totals"]
        assert totals["builds"] == 1  # the reload did NOT rebuild
        assert totals["spills"] == 1
        assert totals["spill_loads"] == 1
        assert totals["evictions"] == 1

    def test_live_index_becomes_spillable(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("lv", self.tenant(name="lv"), live=True)
        live = reg.get("lv")
        live.insert(90_001, np.array([0.99, 0.98]), 0)
        before = live.query(4)
        assert 90_001 in before.ids.tolist()
        assert reg.evict("lv")  # dropped, not pinned
        assert "lv" not in reg.resident_names()
        reloaded = reg.get("lv")
        assert reloaded is not live
        after = reloaded.query(4)
        assert_same_answers(before, after)
        totals = reg.metrics.snapshot()["totals"]
        assert totals["evictions"] == 1
        assert totals["cache_clears"] == 0

    def test_budget_pressure_spills_live_victims(self, tmp_path):
        reg = DatasetRegistry(max_bytes=1, spill_dir=tmp_path)
        reg.register("lv", self.tenant(seed=61, name="lv"), live=True)
        reg.register("b", self.tenant(seed=62, name="b"))
        live = reg.get("lv")
        live.insert(90_001, np.array([0.97, 0.96]), 1)
        with_insert = live.query(4)
        reg.get("b")
        reg.get("b")  # budget pass: lv is the LRU victim and spills
        assert "lv" not in reg.resident_names()
        assert_same_answers(reg.get("lv").query(4), with_insert)

    def test_busy_dataset_degrades_to_cache_clear(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("lv", self.tenant(seed=63, name="lv"), live=True)
        live = reg.get("lv")
        live.query(4)
        # A gateway worker holds the dataset's scheduling lock mid-batch
        # (from its own thread — the lock is reentrant, so holding it
        # here would not block the evict).
        lock = reg.lock_for("lv")
        held = threading.Event()
        release = threading.Event()

        def worker():
            with lock:
                held.set()
                release.wait(timeout=10)

        t = threading.Thread(target=worker)
        t.start()
        held.wait(timeout=10)
        try:
            assert reg.evict("lv") is False
        finally:
            release.set()
            t.join()
        assert "lv" in reg.resident_names()
        totals = reg.metrics.snapshot()["totals"]
        assert totals["cache_clears"] == 1
        assert totals["evictions"] == 0

    def test_unregister_removes_the_snapshot(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("lv", self.tenant(seed=64, name="lv"), live=True)
        reg.get("lv").insert(90_001, np.array([0.5, 0.5]), 0)
        assert reg.evict("lv")
        assert "lv" in reg.store
        reg.unregister("lv")
        assert "lv" not in reg.store
        # Re-registering starts from the spec, not a stale snapshot.
        reg.register("lv", self.tenant(seed=64, name="lv"), live=True)
        assert 90_001 not in reg.get("lv")

    def test_corrupt_frozen_snapshot_falls_back_to_rebuild(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("a", self.tenant(seed=65, name="a"))
        before = reg.get("a").query(4)
        assert reg.evict("a")
        arrays = next(reg.store.path_for("a").glob("arrays-*.npz"))
        arrays.write_bytes(arrays.read_bytes()[:100])
        after = reg.get("a").query(4)  # deterministic rebuild, same answer
        assert_same_answers(before, after)
        assert reg.metrics.snapshot()["totals"]["builds"] == 2

    def test_corrupt_live_snapshot_raises_not_silently_rebuilds(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("lv", self.tenant(seed=66, name="lv"), live=True)
        reg.get("lv").insert(90_001, np.array([0.5, 0.5]), 0)
        assert reg.evict("lv")
        arrays = next(reg.store.path_for("lv").glob("arrays-*.npz"))
        arrays.write_bytes(arrays.read_bytes()[:100])
        with pytest.raises(SnapshotError):
            reg.get("lv")  # rebuilding would silently drop the insert

    def test_config_mismatch_rebuilds_frozen(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("a", self.tenant(seed=67, name="a"), default_seed=7)
        reg.get("a")
        assert reg.evict("a")
        reg.unregister("a")
        assert "a" not in reg.store  # unregister cleaned up
        # A snapshot surviving from another process under a *different*
        # registration config must be ignored, not served.
        reg.register("a", self.tenant(seed=67, name="a"), default_seed=7)
        reg.get("a")
        assert reg.evict("a")
        reg2 = DatasetRegistry(spill_dir=tmp_path)
        reg2.register("a", self.tenant(seed=67, name="a"), default_seed=9)
        reg2.get("a")
        totals = reg2.metrics.snapshot()["totals"]
        assert totals["builds"] == 1
        assert totals["spill_loads"] == 0

    def test_preprocessing_config_mismatch_rebuilds_frozen(self, tmp_path):
        # Regression: the mismatch guard only compared the serving
        # config, so a snapshot spilled under per_group_skyline=True was
        # reloaded into a per_group_skyline=False registration — serving
        # answers for the wrong preprocessing.
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("a", self.tenant(seed=72, name="a"))
        reg.get("a")
        assert reg.evict("a")
        reg2 = DatasetRegistry(spill_dir=tmp_path)
        reg2.register(
            "a", self.tenant(seed=72, name="a"), per_group_skyline=False
        )
        index = reg2.get("a")
        totals = reg2.metrics.snapshot()["totals"]
        assert totals["builds"] == 1
        assert totals["spill_loads"] == 0
        # And the rebuild really honors the new registration.
        assert index.skyline.n == index.dataset.skyline(per_group=False).n

    def test_cross_registry_warm_start(self, tmp_path):
        # "Process restart": a second registry over the same spill dir
        # serves without building.
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("a", self.tenant(seed=68, name="a"))
        before = reg.get("a").query(5)
        assert reg.evict("a")
        reg2 = DatasetRegistry(spill_dir=tmp_path)
        reg2.register("a", self.tenant(seed=68, name="a"))
        after = reg2.get("a").query(5)
        assert_same_answers(before, after)
        totals = reg2.metrics.snapshot()["totals"]
        assert totals["builds"] == 0
        assert totals["spill_loads"] == 1

    def test_gateway_traffic_across_a_spill(self, tmp_path):
        # Writes submitted through the gateway land on the reloaded
        # index after an eviction mid-stream.
        reg = DatasetRegistry(spill_dir=tmp_path)
        data = self.tenant(seed=69, name="lv")
        reg.register("lv", data, live=True, default_seed=7)
        gw = Gateway(reg)
        point = np.array([0.96, 0.94])
        f1 = gw.submit("lv", 4)
        gw.drain()
        assert reg.evict("lv")
        f2 = gw.submit_update("lv", "insert", 90_001, point, 1)
        f3 = gw.submit("lv", 4)
        gw.drain()
        serial = LiveFairHMSIndex(data, default_seed=7)
        assert_same_answers(f1.result(0), serial.query(4))
        f2.result(0)
        serial.insert(90_001, point, 1)
        assert_same_answers(f3.result(0), serial.query(4))

    def test_snapshot_dict_reports_spill_tier(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("a", self.tenant(seed=70, name="a"))
        reg.get("a")
        reg.evict("a")
        snap = reg.snapshot()
        assert snap["spill_dir"] == str(reg.store.root)
        assert snap["spilled"] == ("a",)

    def test_concurrent_evict_and_get_stay_consistent(self, tmp_path):
        reg = DatasetRegistry(spill_dir=tmp_path)
        reg.register("a", self.tenant(seed=71, name="a"))
        expected = reg.get("a").query(4)
        errors = []

        def hammer(fn):
            try:
                for _ in range(10):
                    fn()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(lambda: reg.evict("a"),)),
            threading.Thread(
                target=hammer,
                args=(lambda: assert_same_answers(reg.get("a").query(4), expected),),
            ),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestSnapshotCli:
    def test_snapshot_roundtrip_and_load_only(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(
            ["snapshot", "anticor", "--n", "200", "--d", "2", "--groups", "2",
             "--dir", "snaps", "--k", "4,6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical (ids + mhr): yes" in out
        code = main(
            ["snapshot", "anticor", "--dir", "snaps", "--load-only", "--k", "4,6"]
        )
        assert code == 0
        assert "reloaded in" in capsys.readouterr().out
        code = main(["snapshot", "anticor", "--dir", "snaps", "--info"])
        assert code == 0
        assert '"format_version": 1' in capsys.readouterr().out

    def test_snapshot_load_only_missing_fails_cleanly(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(["snapshot", "anticor", "--dir", "empty", "--load-only"])
        assert code == 1
        assert "no snapshot" in capsys.readouterr().out
