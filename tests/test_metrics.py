"""Unit tests for the fairness-violation metric (Eq. 3)."""

import numpy as np

from repro.fairness.constraints import FairnessConstraint
from repro.fairness.metrics import fairness_violations, violation_breakdown


class TestFairnessViolations:
    def test_zero_for_fair_selection(self):
        labels = np.array([0, 0, 1, 1])
        c = FairnessConstraint(lower=[1, 1], upper=[2, 2], k=3)
        assert fairness_violations(c, labels, [0, 1, 2]) == 0

    def test_counts_overflow(self):
        labels = np.array([0, 0, 0, 1])
        c = FairnessConstraint(lower=[0, 0], upper=[1, 3], k=3)
        # Three from group 0 with upper bound 1 -> err 2.
        assert fairness_violations(c, labels, [0, 1, 2]) == 2

    def test_counts_underflow(self):
        labels = np.array([0, 0, 1, 1])
        c = FairnessConstraint(lower=[0, 2], upper=[4, 4], k=2)
        assert fairness_violations(c, labels, [0, 1]) == 2

    def test_mixed_over_and_under(self):
        labels = np.array([0, 0, 0, 1, 1])
        c = FairnessConstraint(lower=[0, 1], upper=[1, 3], k=3)
        # counts = [3, 0]: over by 2 on group 0, under by 1 on group 1.
        assert fairness_violations(c, labels, [0, 1, 2]) == 3

    def test_empty_selection(self):
        labels = np.array([0, 1])
        c = FairnessConstraint(lower=[1, 1], upper=[1, 1], k=2)
        assert fairness_violations(c, labels, []) == 2


class TestViolationBreakdown:
    def test_rows_per_group(self):
        labels = np.array([0, 0, 1])
        c = FairnessConstraint(lower=[0, 1], upper=[1, 1], k=2)
        rows = violation_breakdown(c, labels, [0, 1])
        assert len(rows) == 2
        assert rows[0]["count"] == 2
        assert rows[0]["violation"] == 1  # over upper bound 1
        assert rows[1]["violation"] == 1  # under lower bound 1

    def test_sum_matches_metric(self):
        labels = np.array([0, 1, 1, 2, 2, 2])
        c = FairnessConstraint(lower=[1, 1, 1], upper=[1, 2, 2], k=4)
        selection = [3, 4, 5]
        total = sum(
            row["violation"] for row in violation_breakdown(c, labels, selection)
        )
        assert total == fairness_violations(c, labels, selection)
