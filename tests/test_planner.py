"""Tests for the adaptive query planner (``repro.planner``).

The two contracts under test:

* **static fidelity** — a cold / default planner reproduces
  ``resolve_algorithm``'s dispatch byte for byte across the bench
  matrix, and plans are deterministic values (same stats + same
  observation sequence -> byte-identical Plan);
* **plan-level bit-identity** — whatever the planner picks, the served
  answer equals ``solve_fairhms(skyline, constraint,
  algorithm=plan.algorithm, **plan.solver_kwargs())`` bit for bit, even
  when adaptive feedback flips the algorithm or tunes eps.
"""

import json

import numpy as np
import pytest

from repro.core.solve import (
    DP_STATE_LIMIT,
    dp_state_count,
    resolve_algorithm,
    solve_fairhms,
)
from repro.fairness.constraints import FairnessConstraint
from repro.data.synthetic import anticorrelated_dataset
from repro.obs.prometheus import parse_prometheus, render_prometheus, validate_exposition
from repro.planner import (
    CostEstimator,
    Plan,
    Planner,
    PlannerConfig,
    default_planner,
    instance_stats,
    k_bucket,
    predict_cost,
)
from repro.serving import FairHMSIndex, Query


@pytest.fixture(scope="module")
def matrix():
    """The bench matrix: 2-D, 2-D many-group, 3-D, 5-D skylines."""
    datasets = {
        "small2d": anticorrelated_dataset(400, 2, 3, seed=1),
        "manygroups2d": anticorrelated_dataset(600, 2, 10, seed=2),
        "small3d": anticorrelated_dataset(400, 3, 3, seed=3),
        "wide5d": anticorrelated_dataset(400, 5, 3, seed=4),
    }
    return {
        name: data.normalized().skyline(per_group=True)
        for name, data in datasets.items()
    }


def proportional(sky, k):
    base = FairnessConstraint.proportional(k, sky.population_group_sizes)
    return base.capped_by_availability(sky.group_sizes)


# --------------------------------------------------------------------- #
# dp_state_count: overflow-safe bound
# --------------------------------------------------------------------- #


class TestDpStateCount:
    def test_small_product_exact(self):
        c = FairnessConstraint(lower=[0, 0], upper=[3, 4], k=5)
        assert dp_state_count(c) == 4 * 5

    def test_exact_limit_is_not_saturated(self):
        # widths 2^7 * 5^6 = 2,000,000 == DP_STATE_LIMIT exactly: still
        # IntCov-eligible (dispatch tests <=).
        upper = [1] * 7 + [4] * 6
        c = FairnessConstraint(lower=[0] * 13, upper=upper, k=13)
        assert dp_state_count(c) == DP_STATE_LIMIT

    def test_one_past_limit_saturates(self):
        upper = [1] * 8 + [4] * 6  # 2^8 * 5^6 = 4,000,000
        c = FairnessConstraint(lower=[0] * 14, upper=upper, k=14)
        assert dp_state_count(c) == DP_STATE_LIMIT + 1

    def test_many_groups_never_materializes_huge_int(self):
        # 10 groups with wide bounds: the naive product is ~10^20; the
        # short-circuit must return the sentinel without computing it.
        upper = [10_000] * 10
        c = FairnessConstraint(lower=[0] * 10, upper=upper, k=50_000)
        assert dp_state_count(c) == DP_STATE_LIMIT + 1

    def test_custom_limit(self):
        c = FairnessConstraint(lower=[0, 0], upper=[9, 9], k=10)
        assert dp_state_count(c, limit=50) == 51
        assert dp_state_count(c, limit=100) == 100


# --------------------------------------------------------------------- #
# static fidelity
# --------------------------------------------------------------------- #


class TestStaticFidelity:
    def test_cold_planner_matches_static_dispatch_on_matrix(self, matrix):
        planner = Planner()
        for sky in matrix.values():
            for k in (2, 4, 6, 8):
                c = proportional(sky, k)
                for requested in ("auto", "IntCov", "BiGreedy", "BiGreedy+"):
                    assert planner.resolve(sky, c, requested) == resolve_algorithm(
                        sky, c, requested
                    )

    def test_cold_adaptive_planner_matches_static_dispatch(self, matrix):
        planner = Planner(PlannerConfig(mode="adaptive", target_p99_s=0.05))
        for sky in matrix.values():
            for k in (2, 4, 6, 8):
                c = proportional(sky, k)
                plan = planner.plan(sky, c)
                assert plan.algorithm == resolve_algorithm(sky, c, "auto")
                assert plan.reason == "static"

    def test_unknown_algorithm_raises(self, matrix):
        sky = matrix["small2d"]
        with pytest.raises(ValueError, match="Magic"):
            Planner().plan(sky, proportional(sky, 4), algorithm="Magic")

    def test_static_params_match_index_semantics(self, matrix):
        # Non-IntCov plans fill epsilon/seed exactly like the index's
        # historical setdefault; explicit options win.
        sky = matrix["wide5d"]
        c = proportional(sky, 4)
        plan = Planner().plan(sky, c, eps=0.05, seed=11)
        assert plan.solver_kwargs() == {"epsilon": 0.05, "seed": 11}
        plan = Planner().plan(
            sky, c, eps=0.05, seed=11, options={"epsilon": 0.2, "seed": 3}
        )
        assert plan.solver_kwargs() == {"epsilon": 0.2, "seed": 3}
        # IntCov takes neither knob.
        sky2 = matrix["small2d"]
        plan = Planner().plan(sky2, proportional(sky2, 4), eps=0.05, seed=11)
        assert plan.algorithm == "IntCov"
        assert plan.solver_kwargs() == {}

    def test_explicit_algorithm_never_overridden(self, matrix):
        sky = matrix["small2d"]
        c = proportional(sky, 4)
        planner = Planner(PlannerConfig(mode="adaptive", target_p99_s=1e-4))
        for _ in range(5):
            planner.observe("x", "IntCov", 4, 5.0)
            planner.observe("x", "BiGreedy+", 4, 1e-6, eps=0.02)
        plan = planner.plan(sky, c, algorithm="IntCov", dataset="x")
        assert plan.algorithm == "IntCov"
        assert plan.reason == "explicit"


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #


class TestPlanDeterminism:
    def observations(self):
        return [
            ("t", "IntCov", 4, 0.02, None),
            ("t", "BiGreedy+", 4, 0.004, 0.02),
            ("t", "IntCov", 4, 0.03, None),
            ("t", "BiGreedy+", 4, 0.005, 0.02),
            ("t", "IntCov", 4, 0.025, None),
            ("t", "BiGreedy+", 4, 0.0045, 0.02),
        ]

    def build(self, matrix):
        planner = Planner(
            PlannerConfig(mode="adaptive", target_p99_s=0.05, min_observations=3)
        )
        for dataset, algorithm, k, seconds, eps in self.observations():
            planner.observe(dataset, algorithm, k, seconds, eps=eps)
        sky = matrix["small2d"]
        return planner.plan(sky, proportional(sky, 4), dataset="t", seed=7)

    def test_same_observations_byte_identical_plan(self, matrix):
        a, b = self.build(matrix), self.build(matrix)
        assert a == b
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )
        assert a.reason == "observed"  # the feedback actually steered it
        assert a.algorithm == "BiGreedy+"

    def test_estimator_replay_is_exact(self):
        a, b = CostEstimator(), CostEstimator()
        for est in (a, b):
            for i in range(20):
                est.observe("d", "BiGreedy+", 4, 0.001 * (i % 5), eps=0.02)
        ea = a.estimate("d", "BiGreedy+", 4, eps=0.02)
        eb = b.estimate("d", "BiGreedy+", 4, eps=0.02)
        assert (ea.mean, ea.count) == (eb.mean, eb.count)

    def test_k_bucket_boundaries(self):
        assert k_bucket(1) == 0
        assert k_bucket(2) == 1
        assert k_bucket(3) == k_bucket(4) == 2
        assert k_bucket(5) == k_bucket(8) == 3
        assert k_bucket(9) == 4

    def test_predict_cost_deterministic_and_positive(self, matrix):
        sky = matrix["wide5d"]
        stats = instance_stats(sky, proportional(sky, 6), dataset="w")
        for algorithm in ("IntCov", "BiGreedy", "BiGreedy+"):
            assert predict_cost(stats, algorithm) == predict_cost(stats, algorithm)
            assert predict_cost(stats, algorithm) > 0
        with pytest.raises(ValueError, match="unknown algorithm"):
            predict_cost(stats, "Magic")


# --------------------------------------------------------------------- #
# plan-level bit-identity through the index
# --------------------------------------------------------------------- #


class TestPlannedAnswers:
    def test_planned_equals_unplanned_static(self, matrix):
        for name, sky in matrix.items():
            index = FairHMSIndex.from_preprocessed(sky, sky, default_seed=7)
            for k in (sky.num_groups + 1, sky.num_groups + 3):
                plan = index.plan_query(Query(k=k), record=False)
                served = index.query(k)
                direct = solve_fairhms(
                    index.skyline,
                    index.constraint_for(k),
                    algorithm=plan.algorithm,
                    **plan.solver_kwargs(),
                )
                np.testing.assert_array_equal(served.ids, direct.ids)
                assert served.mhr_estimate == direct.mhr_estimate

    def test_adaptive_flip_stays_bit_identical(self, matrix):
        # Force the adaptive planner OFF the static pick (IntCov -> the
        # observed-cheaper BiGreedy+) and verify the served answer still
        # equals that exact configuration run by hand.
        sky = matrix["small2d"]
        index = FairHMSIndex.from_preprocessed(sky, sky, default_seed=7)
        planner = Planner(
            PlannerConfig(mode="adaptive", target_p99_s=10.0, min_observations=2)
        )
        index.set_planner(planner)
        label = index._dataset_label(None)
        for _ in range(3):
            planner.observe(label, "IntCov", 5, 2.0)
            planner.observe(label, "BiGreedy+", 5, 0.001, eps=0.02)
        plan = index.plan_query(Query(k=5), record=False)
        assert plan.algorithm == "BiGreedy+"
        assert plan.reason == "observed"
        served = index.query(5)
        direct = solve_fairhms(
            index.skyline,
            index.constraint_for(5),
            algorithm="BiGreedy+",
            **plan.solver_kwargs(),
        )
        np.testing.assert_array_equal(served.ids, direct.ids)

    def test_eps_tuned_plan_stays_bit_identical(self, matrix):
        sky = matrix["wide5d"]
        index = FairHMSIndex.from_preprocessed(sky, sky, default_seed=7)
        planner = Planner(
            PlannerConfig(
                mode="adaptive",
                target_p99_s=1e-4,
                eps_ladder=(0.02, 0.04, 0.08),
                min_observations=2,
            )
        )
        index.set_planner(planner)
        label = index._dataset_label(None)
        for eps in (0.02, 0.04, 0.08):
            for _ in range(3):
                planner.observe(label, "BiGreedy+", 5, 0.5, eps=eps)
        plan = index.plan_query(Query(k=5), record=False)
        assert plan.reason == "eps_tuned"
        assert plan.solver_kwargs()["epsilon"] == 0.08  # ladder top, bounded
        served = index.query(5)
        direct = solve_fairhms(
            index.skyline,
            index.constraint_for(5),
            algorithm="BiGreedy+",
            **plan.solver_kwargs(),
        )
        np.testing.assert_array_equal(served.ids, direct.ids)

    def test_resolve_query_matches_plan_query(self, matrix):
        sky = matrix["small3d"]
        index = FairHMSIndex.from_preprocessed(sky, sky, default_seed=7)
        q = Query(k=4)
        assert index.resolve_query(q) == index.plan_query(q, record=False).algorithm


# --------------------------------------------------------------------- #
# eps ladder behavior
# --------------------------------------------------------------------- #


class TestEpsLadder:
    def planner(self, **kwargs):
        defaults = dict(
            mode="adaptive",
            target_p99_s=0.01,
            eps_ladder=(0.02, 0.04, 0.08),
            min_observations=2,
        )
        defaults.update(kwargs)
        return Planner(PlannerConfig(**defaults))

    def plan(self, planner, matrix, *, queue_depth=0, options=None):
        sky = matrix["wide5d"]
        return planner.plan(
            sky,
            proportional(sky, 5),
            dataset="w",
            queue_depth=queue_depth,
            options=options,
        )

    def test_no_data_keeps_requested_eps(self, matrix):
        plan = self.plan(self.planner(), matrix)
        assert plan.solver_kwargs()["epsilon"] == 0.02
        assert plan.reason == "static"

    def test_over_budget_steps_one_rung_to_probe(self, matrix):
        planner = self.planner()
        for _ in range(3):
            planner.observe("w", "BiGreedy+", 5, 0.5, eps=0.02)
        plan = self.plan(planner, matrix)
        assert plan.solver_kwargs()["epsilon"] == 0.04  # probe, not a jump
        assert plan.reason == "eps_tuned"

    def test_within_budget_stays_put(self, matrix):
        planner = self.planner()
        for _ in range(3):
            planner.observe("w", "BiGreedy+", 5, 0.001, eps=0.02)
        plan = self.plan(planner, matrix)
        assert plan.solver_kwargs()["epsilon"] == 0.02

    def test_ladder_is_bounded(self, matrix):
        planner = self.planner()
        for eps in (0.02, 0.04, 0.08):
            for _ in range(3):
                planner.observe("w", "BiGreedy+", 5, 0.5, eps=eps)
        plan = self.plan(planner, matrix)
        assert plan.solver_kwargs()["epsilon"] == 0.08  # never past the top

    def test_queue_pressure_tightens_budget(self, matrix):
        planner = self.planner(target_p99_s=0.02)
        for _ in range(3):
            planner.observe("w", "BiGreedy+", 5, 0.015, eps=0.02)
        # Within budget idle, over budget under a deep backlog.
        assert self.plan(planner, matrix).solver_kwargs()["epsilon"] == 0.02
        plan = self.plan(planner, matrix, queue_depth=16)
        assert plan.solver_kwargs()["epsilon"] == 0.04

    def test_explicit_epsilon_option_never_tuned(self, matrix):
        planner = self.planner()
        for _ in range(3):
            planner.observe("w", "BiGreedy+", 5, 0.5, eps=0.03)
        plan = self.plan(planner, matrix, options={"epsilon": 0.03})
        assert plan.solver_kwargs()["epsilon"] == 0.03
        assert plan.reason != "eps_tuned"


# --------------------------------------------------------------------- #
# config, counters, exposition
# --------------------------------------------------------------------- #


class TestPlannerConfig:
    def test_defaults_are_static(self):
        config = PlannerConfig()
        assert config.mode == "static"
        assert config.eps_ladder == (0.02, 0.04, 0.08)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown \\[planner\\] keys"):
            PlannerConfig.from_dict({"mode": "static", "turbo": True})

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            PlannerConfig(mode="clever")
        with pytest.raises(ValueError, match="target_p99_s"):
            PlannerConfig(target_p99_s=0.0)
        with pytest.raises(ValueError, match="eps_ladder"):
            PlannerConfig(eps_ladder=())
        with pytest.raises(ValueError, match="min_observations"):
            PlannerConfig(min_observations=0)

    def test_ladder_is_sorted(self):
        config = PlannerConfig(eps_ladder=(0.08, 0.02, 0.04))
        assert config.eps_ladder == (0.02, 0.04, 0.08)

    def test_server_config_section(self):
        from repro.server.config import parse_config

        config = parse_config(
            {
                "planner": {"mode": "adaptive", "target_p99_s": 0.05},
                "datasets": [{"name": "t0", "n": 100}],
            }
        )
        assert config.planner.mode == "adaptive"
        assert config.planner.target_p99_s == 0.05

    def test_server_config_rejects_unknown_planner_keys(self):
        from repro.server.config import parse_config

        with pytest.raises(ValueError, match="unknown \\[planner\\] keys"):
            parse_config({"planner": {"speed": "ludicrous"}})

    def test_build_registry_defaults_adaptive_target_from_slo(self):
        from repro.server.config import build_registry, parse_config

        config = parse_config(
            {
                "planner": {"mode": "adaptive"},
                "slo": {"latency_target_s": 0.25},
                "datasets": [{"name": "t0", "n": 100}],
            }
        )
        registry = build_registry(config)
        assert registry.planner.config.mode == "adaptive"
        assert registry.planner.config.target_p99_s == 0.25

    def test_registry_injects_shared_planner(self):
        from repro.service.registry import DatasetRegistry

        registry = DatasetRegistry()
        registry.register("t0", anticorrelated_dataset(120, 2, 3, seed=9))
        index = registry.get("t0")
        assert index.planner is registry.planner


class TestCountersAndExposition:
    def test_plan_counters_and_stats(self, matrix):
        planner = Planner()
        sky = matrix["small2d"]
        c = proportional(sky, 4)
        planner.plan(sky, c)
        planner.plan(sky, c)
        planner.plan(sky, c, algorithm="BiGreedy+")
        counters = planner.plan_counters()
        assert counters[("IntCov", "static")] == 2
        assert counters[("BiGreedy+", "explicit")] == 1
        stats = planner.stats()
        assert stats["plans"] == planner.counters_export()
        assert len(stats["recent"]) == 3
        json.dumps(stats)  # JSON-ready end to end

    def test_prometheus_plan_total(self, matrix):
        planner = Planner()
        sky = matrix["small2d"]
        planner.plan(sky, proportional(sky, 4))
        text = render_prometheus(plans=planner.counters_export())
        validate_exposition(text)
        families = parse_prometheus(text)
        samples = families["repro_plan_total"]["samples"]
        assert samples[0][1] == {"algorithm": "IntCov", "reason": "static"}
        assert samples[0][2] == 1.0

    def test_default_planner_is_shared_and_static(self):
        assert default_planner() is default_planner()
        assert default_planner().config.mode == "static"

    def test_plan_is_frozen(self, matrix):
        sky = matrix["small2d"]
        plan = Planner().plan(sky, proportional(sky, 4))
        assert isinstance(plan, Plan)
        with pytest.raises(AttributeError):
            plan.algorithm = "BiGreedy"
