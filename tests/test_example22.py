"""Acceptance test: the paper's Example 2.2 reproduced end to end.

These are the hardest numbers in the reproduction: exact sets and MHR
values to four decimal places, straight from Table 1 / Example 2.2.
"""

import pytest

from repro.core.bigreedy import bigreedy
from repro.core.intcov import intcov
from repro.core.unconstrained import hms_exact_2d
from repro.data.lsac import LSAC_APPLICANTS, lsac_example
from repro.experiments.example22 import run_example22
from repro.fairness.constraints import FairnessConstraint


class TestTable1:
    def test_eight_applicants(self):
        assert len(LSAC_APPLICANTS) == 8

    def test_gender_partition(self):
        data = lsac_example("Gender")
        assert data.num_groups == 2
        assert data.group_sizes.tolist() == [4, 4]

    def test_race_partition(self):
        assert lsac_example("Race").num_groups == 4

    def test_combined_partition(self):
        assert lsac_example("G+R").num_groups == 8

    def test_unknown_partition(self):
        with pytest.raises(ValueError):
            lsac_example("Zodiac")

    def test_all_applicants_on_skyline(self):
        """The paper notes all eight applicants are in the skyline."""
        data = lsac_example("Gender")
        assert data.skyline(per_group=False).n == 8


class TestExample22Numbers:
    def test_hms_k3(self):
        data = lsac_example("Gender")
        s = hms_exact_2d(data, 3)
        assert {f"a{i + 1}" for i in s.ids} == {"a4", "a5", "a7"}
        assert s.mhr_estimate == pytest.approx(0.9984, abs=5e-5)

    def test_hms_k2(self):
        data = lsac_example("Gender")
        s = hms_exact_2d(data, 2)
        assert {f"a{i + 1}" for i in s.ids} == {"a4", "a5"}
        assert s.mhr_estimate == pytest.approx(0.9846, abs=5e-5)

    def test_fairhms_k2_gender(self):
        data = lsac_example("Gender")
        s = intcov(data, FairnessConstraint.exact([1, 1]))
        assert {f"a{i + 1}" for i in s.ids} == {"a5", "a8"}
        assert s.mhr_estimate == pytest.approx(0.9834, abs=5e-5)

    def test_bigreedy_finds_fair_optimum(self):
        data = lsac_example("Gender")
        s = bigreedy(data, FairnessConstraint.exact([1, 1]), seed=0)
        assert {f"a{i + 1}" for i in s.ids} == {"a5", "a8"}

    def test_hms_k3_is_all_male(self):
        """The motivating unfairness: the HMS solution has no women."""
        data = lsac_example("Gender")
        s = hms_exact_2d(data, 3)
        genders = {LSAC_APPLICANTS[int(i)][1] for i in s.ids}
        assert genders == {"Male"}

    def test_runner_reports_all_matches(self):
        for result in run_example22():
            assert result.matches, f"{result.name}: {result.selected} {result.mhr}"
