"""run_all assembly test with stubbed runners (fast)."""

import importlib
from types import SimpleNamespace

from repro.experiments.common import Record

# ``repro.experiments.run_all`` the *attribute* is the re-exported function;
# importlib fetches the module itself for monkeypatching.
run_all_module = importlib.import_module("repro.experiments.run_all")


def test_run_all_assembles_report(monkeypatch, tmp_path):
    """Patch every runner with canned results; check report structure."""

    ex_result = SimpleNamespace(
        name="hms_k2",
        selected={"a4", "a5"},
        mhr=0.9846,
        expected_selected={"a4", "a5"},
        expected_mhr=0.9846,
        matches=True,
    )
    monkeypatch.setattr(run_all_module, "run_example22", lambda: [ex_result])

    t2_row = SimpleNamespace(
        dataset="Adult", group="Gender", d=5, n=100, C=2,
        skylines=10, paper_skylines=130,
    )
    monkeypatch.setattr(
        run_all_module, "run_table2", lambda scale=1.0: [t2_row]
    )

    def fake_records(exp, metric_value=0.9):
        return {
            "panel": [
                Record(exp, "panel", "BiGreedy", "k", 10,
                       mhr=metric_value, time_ms=1.0, violations=0),
                Record(exp, "panel", "Greedy", "k", 10,
                       mhr=metric_value - 0.1, time_ms=0.5, violations=3),
            ]
        }

    monkeypatch.setattr(run_all_module, "run_fig3", lambda cfg=None: fake_records("fig3"))
    monkeypatch.setattr(run_all_module, "run_fig4", lambda cfg=None: fake_records("fig4"))
    monkeypatch.setattr(run_all_module, "run_fig56", lambda cfg=None: fake_records("fig56"))
    monkeypatch.setattr(run_all_module, "run_fig7", lambda cfg=None: fake_records("fig7"))
    monkeypatch.setattr(run_all_module, "run_fig89", lambda cfg=None: fake_records("fig89"))
    monkeypatch.setattr(
        run_all_module, "run_fig1011",
        lambda cfg=None: {
            "panel": [
                Record("fig1011", "panel", "BiGreedy+", "eps", 0.02,
                       mhr=0.9, time_ms=2.0, extra={"lambda": 0.04}),
            ]
        },
    )

    out = tmp_path / "EXPERIMENTS.md"
    report = run_all_module.run_all(fast=True, out=str(out))
    text = out.read_text()
    assert report == text
    for section in (
        "Example 2.2",
        "Table 2",
        "Figure 3",
        "Figure 4",
        "Figures 5 & 6",
        "Figure 7",
        "Figures 8 & 9",
        "Figures 10 & 11",
        "Paper-shape checks",
    ):
        assert section in text, f"missing section {section}"


def test_fast_configs_have_expected_keys():
    configs = run_all_module._fast_configs()
    assert {"fig3", "fig4", "fig56", "fig7", "fig89", "fig1011"} <= set(configs)
