"""Unit tests for the MHR evaluation protocol."""

import numpy as np
import pytest

from repro.hms.evaluation import MhrEvaluator, evaluate_mhr
from repro.hms.exact import mhr_exact


class TestEvaluator2D:
    def test_uses_sweep(self):
        rng = np.random.default_rng(0)
        D = rng.random((30, 2)) + 0.01
        ev = MhrEvaluator(D)
        result = ev.evaluate(D[:3])
        assert result.method == "sweep"
        assert result.exact
        assert result.value == pytest.approx(mhr_exact(D[:3], D), abs=1e-9)


class TestEvaluatorLP:
    def test_uses_lp_when_few_candidates(self):
        rng = np.random.default_rng(1)
        D = rng.random((40, 3)) + 0.01
        ev = MhrEvaluator(D, exact_limit=100)
        result = ev.evaluate(D[:4])
        assert result.method == "lp"
        assert result.exact
        assert result.value == pytest.approx(mhr_exact(D[:4], D), abs=1e-7)

    def test_caches_candidates(self):
        rng = np.random.default_rng(2)
        D = rng.random((30, 3)) + 0.01
        ev = MhrEvaluator(D)
        first = ev.candidates
        second = ev.candidates
        assert first is second


class TestEvaluatorRefinedNet:
    def test_falls_back_when_many_candidates(self):
        rng = np.random.default_rng(3)
        D = rng.random((60, 4)) + 0.01
        ev = MhrEvaluator(D, exact_limit=5, net_size=512, refine=32)
        result = ev.evaluate(D[:6])
        assert result.method == "refined-net"
        assert not result.exact

    def test_refined_value_close_to_exact(self):
        rng = np.random.default_rng(4)
        D = rng.random((60, 4)) + 0.01
        S = D[:6]
        exact = mhr_exact(S, D)
        ev = MhrEvaluator(D, exact_limit=5, net_size=2048, refine=64)
        refined = ev.evaluate(S).value
        # Refined estimate must never be below exact (both bounds are from
        # above) and should be close.
        assert refined >= exact - 1e-9
        assert refined <= exact + 0.05


class TestOneOff:
    def test_evaluate_mhr_function(self):
        rng = np.random.default_rng(5)
        D = rng.random((20, 2)) + 0.01
        result = evaluate_mhr(D[:2], D)
        assert 0.0 <= result.value <= 1.0
