"""Unit tests for maxima-candidate extraction."""

import numpy as np

from repro.geometry.deltanet import sample_directions
from repro.geometry.dominance import skyline_indices
from repro.geometry.hull import maxima_candidates


class TestMaximaCandidates:
    def test_1d(self):
        pts = np.array([[1.0], [3.0], [3.0], [2.0]])
        assert sorted(maxima_candidates(pts).tolist()) == [1, 2]

    def test_2d_matches_envelope_support(self):
        rng = np.random.default_rng(0)
        pts = rng.random((50, 2))
        cands = set(maxima_candidates(pts).tolist())
        # Every direction's maximizer must be in the candidate set.
        for u in sample_directions(300, 2, seed=1):
            scores = pts @ u
            best = scores.max()
            winners = set(np.nonzero(scores >= best - 1e-12)[0].tolist())
            assert winners & cands

    def test_md_never_misses_a_maximizer(self):
        rng = np.random.default_rng(2)
        for d in (3, 4, 5):
            pts = rng.random((60, d))
            cands = set(maxima_candidates(pts).tolist())
            for u in sample_directions(200, d, seed=d):
                scores = pts @ u
                winners = set(
                    np.nonzero(scores >= scores.max() - 1e-12)[0].tolist()
                )
                assert winners & cands, f"missed maximizer in d={d}"

    def test_candidates_subset_of_skyline(self):
        rng = np.random.default_rng(3)
        pts = rng.random((80, 4))
        cands = set(maxima_candidates(pts).tolist())
        sky = set(skyline_indices(pts).tolist())
        assert cands <= sky

    def test_high_dim_falls_back_to_skyline(self):
        rng = np.random.default_rng(4)
        pts = rng.random((30, 9))
        cands = maxima_candidates(pts)
        sky = skyline_indices(pts)
        np.testing.assert_array_equal(np.sort(cands), np.sort(sky))

    def test_degenerate_flat_data(self):
        # All points on a line in 3D: qhull would choke without the guard.
        t = np.linspace(0, 1, 10)
        pts = np.column_stack([t, t, t])
        cands = maxima_candidates(pts)
        assert 9 in cands.tolist()  # the endpoint maximizes everything

    def test_duplicates(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [0.5, 0.2]])
        cands = maxima_candidates(pts)
        assert len(cands) >= 1
        assert set(cands.tolist()) <= {0, 1}
