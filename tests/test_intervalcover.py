"""Unit + property tests for the fair interval-cover DP (Algorithm 2)."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervalcover import GroupIntervals, fair_interval_cover
from repro.fairness.constraints import FairnessConstraint


def covers_unit(intervals) -> bool:
    """Check whether a set of (lo, hi) covers [0, 1] (eps tolerant)."""
    ivs = sorted(intervals)
    reach = 0.0
    for lo, hi in ivs:
        if lo > reach + 1e-9:
            return False
        reach = max(reach, hi)
        if reach >= 1.0 - 1e-9:
            return True
    return reach >= 1.0 - 1e-9


def brute_force_cover(intervals_by_group, constraint):
    """Exhaustive reference for the fair-cover decision."""
    flat = [
        (lo, hi, point, c)
        for c, group in enumerate(intervals_by_group)
        for lo, hi, point in group
    ]
    k = constraint.k
    for size in range(0, k + 1):
        for combo in itertools.combinations(flat, size):
            counts = np.zeros(constraint.num_groups, dtype=np.int64)
            for _, _, _, c in combo:
                counts[c] += 1
            if (counts > constraint.upper).any():
                continue
            if int(np.maximum(counts, constraint.lower).sum()) > k:
                continue
            if covers_unit([(lo, hi) for lo, hi, _, _ in combo]):
                return True
    return False


class TestGroupIntervals:
    def test_query_best_right(self):
        g = GroupIntervals.from_intervals([(0.0, 0.4, 1), (0.0, 0.6, 2), (0.5, 1.0, 3)])
        assert g.query(0.0) == (0.6, 2)
        assert g.query(0.55) == (1.0, 3)

    def test_query_none_when_gap(self):
        g = GroupIntervals.from_intervals([(0.5, 1.0, 1)])
        assert g.query(0.2) is None

    def test_empty_group(self):
        g = GroupIntervals.from_intervals([])
        assert g.size == 0
        assert g.query(0.0) is None

    def test_query_boundary_tolerance(self):
        g = GroupIntervals.from_intervals([(0.5, 1.0, 1)])
        assert g.query(0.5) == (1.0, 1)


class TestFairIntervalCover:
    def test_single_interval_covers(self):
        c = FairnessConstraint(lower=[0], upper=[1], k=1)
        result = fair_interval_cover([[(0.0, 1.0, 7)]], c)
        assert result == [7]

    def test_needs_two_groups(self):
        c = FairnessConstraint(lower=[1, 1], upper=[1, 1], k=2)
        result = fair_interval_cover(
            [[(0.0, 0.6, 0)], [(0.5, 1.0, 1)]], c
        )
        assert sorted(result) == [0, 1]

    def test_upper_bound_blocks_cover(self):
        # Covering needs two group-0 intervals but h_0 = 1.
        c = FairnessConstraint(lower=[0, 0], upper=[1, 1], k=2)
        result = fair_interval_cover(
            [[(0.0, 0.5, 0), (0.5, 1.0, 1)], [(0.2, 0.3, 2)]], c
        )
        assert result is None

    def test_reservation_blocks_cover(self):
        # Group 1 reserves one slot (l=1), so only one group-0 pick fits k=2,
        # but covering [0,1] needs both group-0 intervals.
        c = FairnessConstraint(lower=[0, 1], upper=[2, 1], k=2)
        result = fair_interval_cover(
            [[(0.0, 0.5, 0), (0.45, 1.0, 1)], [(0.9, 0.95, 2)]], c
        )
        assert result is None

    def test_reservation_allows_padding_group(self):
        # Same as above with k=3: two group-0 covers + reserved group-1 slot.
        c = FairnessConstraint(lower=[0, 1], upper=[2, 1], k=3)
        result = fair_interval_cover(
            [[(0.0, 0.5, 0), (0.45, 1.0, 1)], [(0.9, 0.95, 2)]], c
        )
        assert result is not None
        assert set(result) >= {0, 1}

    def test_gap_means_no(self):
        c = FairnessConstraint(lower=[0], upper=[3], k=3)
        result = fair_interval_cover(
            [[(0.0, 0.4, 0), (0.6, 1.0, 1)]], c
        )
        assert result is None

    def test_wrong_group_count(self):
        c = FairnessConstraint(lower=[0, 0], upper=[1, 1], k=2)
        with pytest.raises(ValueError):
            fair_interval_cover([[(0.0, 1.0, 0)]], c)

    def test_returned_cover_actually_covers(self):
        c = FairnessConstraint(lower=[1, 1], upper=[2, 2], k=4)
        groups = [
            [(0.0, 0.3, 0), (0.25, 0.7, 1)],
            [(0.6, 0.9, 2), (0.85, 1.0, 3)],
        ]
        result = fair_interval_cover(groups, c)
        assert result is not None
        flat = {p: (lo, hi) for g in groups for lo, hi, p in g}
        assert covers_unit([flat[p] for p in result])


@st.composite
def cover_instances(draw):
    C = draw(st.integers(1, 2))
    groups = []
    for _ in range(C):
        size = draw(st.integers(0, 4))
        group = []
        for p in range(size):
            lo = draw(st.floats(0, 1, width=16))
            width = draw(st.floats(0, 1, width=16))
            group.append((lo, min(1.0, lo + width), len(groups) * 10 + p))
        groups.append(group)
    lower = [draw(st.integers(0, 1)) for _ in range(C)]
    upper = [l + draw(st.integers(0, 2)) for l in lower]
    k = draw(st.integers(max(1, sum(lower)), sum(lower) + 3))
    return groups, FairnessConstraint(lower=lower, upper=upper, k=k)


class TestAgainstBruteForce:
    @given(cover_instances())
    def test_decision_matches_brute_force(self, instance):
        groups, constraint = instance
        result = fair_interval_cover(groups, constraint)
        expected = brute_force_cover(groups, constraint)
        assert (result is not None) == expected
        if result is not None:
            flat = {p: (lo, hi) for g in groups for lo, hi, p in g}
            assert covers_unit([flat[p] for p in result])
            counts = np.zeros(constraint.num_groups, dtype=np.int64)
            for p in result:
                counts[p // 10] += 1
            assert (counts <= constraint.upper).all()
            assert int(np.maximum(counts, constraint.lower).sum()) <= constraint.k
