"""Unit + property tests for repro.geometry.dominance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.dominance import (
    dominates,
    is_skyline_point,
    skyline_indices,
    skyline_mask,
)


def brute_force_skyline(points: np.ndarray) -> np.ndarray:
    """Quadratic reference implementation."""
    n = points.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if (points[j] >= points[i]).all() and (points[j] > points[i]).any():
                mask[i] = False
                break
    return mask


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([2, 2], [1, 1])

    def test_weak_plus_one_strict(self):
        assert dominates([2, 1], [1, 1])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_incomparable(self):
        assert not dominates([2, 0], [0, 2])
        assert not dominates([0, 2], [2, 0])

    def test_strict_all_mode(self):
        assert dominates([2, 2], [1, 1], strict_all=True)
        assert not dominates([2, 1], [1, 1], strict_all=True)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dominates([1, 2], [1, 2, 3])


class TestSkylineMask2D:
    def test_simple(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0], [0.0, 3.0], [3.0, 0.0]])
        mask = skyline_mask(pts)
        assert mask.tolist() == [False, True, True, True]

    def test_duplicates_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert skyline_mask(pts).tolist() == [True, True]

    def test_duplicate_dominated_pair(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert skyline_mask(pts).tolist() == [False, False, True]

    def test_ties_on_x(self):
        pts = np.array([[1.0, 2.0], [1.0, 3.0], [1.0, 3.0]])
        assert skyline_mask(pts).tolist() == [False, True, True]

    def test_ties_on_y_larger_x_wins(self):
        pts = np.array([[1.0, 3.0], [2.0, 3.0]])
        assert skyline_mask(pts).tolist() == [False, True]

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.just(2)),
            elements=st.floats(0, 1, width=16),
        )
    )
    def test_matches_brute_force_2d(self, pts):
        np.testing.assert_array_equal(skyline_mask(pts), brute_force_skyline(pts))


class TestSkylineMaskMD:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 25), st.integers(3, 5)),
            elements=st.floats(0, 1, width=16),
        )
    )
    def test_matches_brute_force_md(self, pts):
        np.testing.assert_array_equal(skyline_mask(pts), brute_force_skyline(pts))

    def test_single_point(self):
        assert skyline_mask(np.array([[0.5, 0.5, 0.5]])).tolist() == [True]

    def test_1d(self):
        pts = np.array([[1.0], [3.0], [3.0], [2.0]])
        assert skyline_mask(pts).tolist() == [False, True, True, False]

    def test_no_skyline_point_dominated(self):
        rng = np.random.default_rng(0)
        pts = rng.random((80, 4))
        idx = skyline_indices(pts)
        sky = pts[idx]
        for i in range(sky.shape[0]):
            others = np.delete(sky, i, axis=0)
            geq = (others >= sky[i]).all(axis=1)
            strict = (others > sky[i]).any(axis=1)
            assert not (geq & strict).any()

    def test_every_dropped_point_is_dominated(self):
        rng = np.random.default_rng(1)
        pts = rng.random((80, 3))
        mask = skyline_mask(pts)
        sky = pts[mask]
        for p in pts[~mask]:
            geq = (sky >= p).all(axis=1)
            strict = (sky > p).any(axis=1)
            assert (geq & strict).any()


class TestIsSkylinePoint:
    def test_consistent_with_mask(self):
        rng = np.random.default_rng(2)
        pts = rng.random((30, 3))
        mask = skyline_mask(pts)
        for i in range(30):
            assert is_skyline_point(pts, i) == mask[i]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            is_skyline_point(np.array([[1.0, 2.0]]), 5)

    def test_singleton(self):
        assert is_skyline_point(np.array([[1.0, 2.0]]), 0)
