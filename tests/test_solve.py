"""Dispatcher + unconstrained-solver tests."""

import pytest

from repro.core.solve import CORE_ALGORITHMS, solve_fairhms
from repro.core.unconstrained import hms_exact_2d, hms_greedy
from repro.fairness.constraints import FairnessConstraint
from repro.hms.exact import mhr_exact_2d


class TestSolveDispatch:
    def test_auto_picks_intcov_for_2d(self, small2d):
        c = FairnessConstraint.proportional(4, small2d.group_sizes, alpha=0.1)
        s = solve_fairhms(small2d, c)
        assert s.algorithm == "IntCov"

    def test_auto_picks_bigreedy_plus_for_md(self, small3d):
        c = FairnessConstraint.proportional(4, small3d.group_sizes, alpha=0.1)
        s = solve_fairhms(small3d, c, seed=0)
        assert s.algorithm == "BiGreedy+"

    def test_explicit_algorithm(self, small3d):
        c = FairnessConstraint.proportional(4, small3d.group_sizes, alpha=0.1)
        s = solve_fairhms(small3d, c, algorithm="BiGreedy", seed=0)
        assert s.algorithm == "BiGreedy"

    def test_unknown_algorithm(self, small3d):
        c = FairnessConstraint.proportional(4, small3d.group_sizes, alpha=0.1)
        with pytest.raises(ValueError, match="unknown algorithm"):
            solve_fairhms(small3d, c, algorithm="Magic")

    def test_registry_contents(self):
        assert set(CORE_ALGORITHMS) == {"IntCov", "BiGreedy", "BiGreedy+"}


class TestUnconstrained2D:
    def test_exact_is_optimal(self, tiny2d):
        import itertools

        s = hms_exact_2d(tiny2d, 3)
        best = max(
            mhr_exact_2d(tiny2d.points[list(combo)], tiny2d.points)
            for combo in itertools.combinations(range(tiny2d.n), 3)
        )
        assert s.mhr_estimate == pytest.approx(best, abs=1e-7)

    def test_size(self, tiny2d):
        assert hms_exact_2d(tiny2d, 4).size == 4

    def test_paper_example(self, lsac_sky):
        s = hms_exact_2d(lsac_sky, 2)
        assert sorted(s.ids.tolist()) == [3, 4]  # a4, a5
        assert s.mhr_estimate == pytest.approx(0.9846, abs=5e-5)


class TestHmsGreedy:
    def test_size_and_no_constraint_violation_concept(self, small3d):
        s = hms_greedy(small3d, 5, seed=0)
        assert s.size == 5
        assert s.algorithm == "HMS-Greedy"

    def test_close_to_2d_optimum(self, small2d):
        exact = hms_exact_2d(small2d, 4).mhr_estimate
        greedy = hms_greedy(small2d, 4, seed=1)
        assert greedy.mhr() >= exact - 0.1

    def test_monotone_in_k(self, small3d):
        small = hms_greedy(small3d, 3, seed=2).mhr()
        large = hms_greedy(small3d, 8, seed=2).mhr()
        assert large >= small - 0.02
