"""Live serving: LiveFairHMSIndex, epochs, candidate cache, invariants.

Property-based/randomized invariants (seeded, derandomized):

* after any random insert/delete sequence, the live index's maintained
  skyline equals the batch per-group skyline of the surviving points;
* warm query results are bit-identical to a cold ``solve_fairhms`` on
  the current dataset (and to a freshly built static index);
* ``mhr_tau`` marginal gains are monotone non-increasing along greedy
  prefixes (submodularity of the truncated objective);
* the incrementally maintained candidate multiset always deduplicates to
  the batch ``candidate_mhr_values`` enumeration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intcov import candidate_mhr_values, intcov
from repro.core.solve import solve_fairhms
from repro.data.synthetic import anticorrelated_dataset
from repro.fairness.constraints import FairnessConstraint
from repro.geometry.deltanet import sample_directions
from repro.geometry.dominance import skyline_indices
from repro.hms.truncated import TruncatedEngine
from repro.serving import FairHMSIndex, LiveFairHMSIndex
from repro.serving.workload import build_mixed_workload, run_mixed_workload


def random_updates(live, rng, steps, *, dim, num_groups, next_key, alive):
    """Apply a random insert/delete sequence; mirrors it in ``alive``."""
    for _ in range(steps):
        if alive and rng.random() < 0.45:
            key = int(rng.choice(sorted(alive)))
            live.delete(key)
            del alive[key]
        else:
            point = rng.random(dim) * 0.9 + 0.05
            group = int(rng.integers(0, num_groups))
            live.insert(next_key, point, group)
            alive[next_key] = (point, group)
            next_key += 1
    return next_key


def expected_skyline_keys(alive, num_groups):
    """Batch per-group skyline of the surviving points, as key sets."""
    expected = set()
    for c in range(num_groups):
        members = [(k, p) for k, (p, g) in alive.items() if g == c]
        if not members:
            continue
        pts = np.asarray([p for _, p in members])
        expected |= {members[i][0] for i in skyline_indices(pts)}
    return expected


class TestLiveSkylineInvariant:
    """Maintained skyline == batch skyline of the survivors, always."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("dim", [2, 3])
    def test_random_sequences(self, seed, dim):
        rng = np.random.default_rng(seed)
        live = LiveFairHMSIndex(dim=dim, num_groups=2, normalize=False)
        alive = {}
        next_key = 0
        for _ in range(6):
            next_key = random_updates(
                live, rng, 30, dim=dim, num_groups=2, next_key=next_key,
                alive=alive,
            )
            assert set(live.skyline_keys()) == expected_skyline_keys(alive, 2)

    def test_skyline_dataset_matches_static_pipeline(self):
        data = anticorrelated_dataset(120, 2, 3, seed=9)
        live = LiveFairHMSIndex(data)
        rng = np.random.default_rng(4)
        for i in range(40):
            live.insert(10_000 + i, rng.random(2), int(rng.integers(0, 3)))
            if i % 2:
                live.delete(int(rng.choice(live.skyline_keys())))
        sky = live.skyline
        rebuilt = live.dataset.skyline(per_group=True)
        np.testing.assert_array_equal(sky.ids, rebuilt.ids)
        np.testing.assert_array_equal(sky.labels, rebuilt.labels)
        np.testing.assert_array_equal(sky.points, rebuilt.points)
        assert (
            sky.meta["population_group_sizes"]
            == rebuilt.meta["population_group_sizes"]
        )


class TestBitIdentity:
    """Warm live answers == cold solves on the current data, bit for bit."""

    @pytest.mark.parametrize("dim,algorithm", [(2, "auto"), (3, "BiGreedy+")])
    def test_interleaved_updates_and_queries(self, dim, algorithm):
        data = anticorrelated_dataset(150, dim, 2, seed=5)
        live = LiveFairHMSIndex(data, default_seed=11)
        rng = np.random.default_rng(6)
        alive = {
            int(k): (p, int(g))
            for k, p, g in zip(data.ids, live.dataset.points, data.labels)
        }
        next_key = 10_000
        for _ in range(5):
            next_key = random_updates(
                live, rng, 12, dim=dim, num_groups=2, next_key=next_key,
                alive=alive,
            )
            for k in (3, 5):
                warm = live.query(k, algorithm=algorithm)
                constraint = live.constraint_for(k)
                kwargs = {} if dim == 2 else {"seed": 11, "epsilon": 0.02}
                cold = solve_fairhms(
                    live.skyline, constraint, algorithm=algorithm, **kwargs
                )
                np.testing.assert_array_equal(warm.indices, cold.indices)
                np.testing.assert_array_equal(warm.ids, cold.ids)
                assert warm.mhr_estimate == cold.mhr_estimate

    def test_matches_fresh_static_index(self):
        data = anticorrelated_dataset(200, 2, 3, seed=7)
        live = LiveFairHMSIndex(data, default_seed=7)
        rng = np.random.default_rng(8)
        for i in range(25):
            live.insert(10_000 + i, rng.random(2), int(rng.integers(0, 3)))
        live.delete(int(live.query(4).ids[0]))
        for k in (4, 6):
            warm = live.query(k)
            cold = FairHMSIndex(
                live.dataset, normalize=False, default_seed=7
            ).query(k)
            np.testing.assert_array_equal(warm.ids, cold.ids)
            assert warm.mhr_estimate == cold.mhr_estimate
            assert warm.stats["tau"] == cold.stats["tau"]


@st.composite
def greedy_instance(draw):
    n = draw(st.integers(6, 24))
    d = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 10_000))
    tau = draw(st.sampled_from([0.6, 0.85, 1.0]))
    return n, d, seed, tau


class TestSubmodularityAlongGreedy:
    """mhr_tau marginal gains never increase along a greedy prefix."""

    @given(greedy_instance())
    @settings(max_examples=25)
    def test_chosen_gains_non_increasing(self, inst):
        n, d, seed, tau = inst
        rng = np.random.default_rng(seed)
        points = rng.random((n, d)) + 0.01
        net = sample_directions(8 * d, d, rng)
        engine = TruncatedEngine(points, net)
        state = engine.new_state(tau)
        chosen_gains = []
        candidates = np.arange(n)
        for _ in range(min(n, 8)):
            gains = engine.gains(state, candidates)
            best = int(np.argmax(gains))
            chosen_gains.append(float(gains[best]))
            engine.add(state, int(candidates[best]))
            candidates = np.delete(candidates, best)
        diffs = np.diff(chosen_gains)
        assert (diffs <= 1e-9).all(), chosen_gains

    @given(greedy_instance())
    @settings(max_examples=25)
    def test_fixed_candidate_gain_non_increasing(self, inst):
        n, d, seed, tau = inst
        rng = np.random.default_rng(seed)
        points = rng.random((n, d)) + 0.01
        net = sample_directions(8 * d, d, rng)
        engine = TruncatedEngine(points, net)
        state = engine.new_state(tau)
        watched = 0
        previous = engine.gain_of(state, watched)
        for idx in range(1, min(n, 9)):
            engine.add(state, idx)
            current = engine.gain_of(state, watched)
            assert current <= previous + 1e-9
            previous = current


class TestCandidateCache:
    """Incremental candidate multiset == batch enumeration, bit for bit."""

    def test_matches_batch_under_random_updates(self):
        rng = np.random.default_rng(10)
        data = anticorrelated_dataset(80, 2, 2, seed=11).normalized()
        live = LiveFairHMSIndex(data)
        alive = {
            int(k): (p, int(g))
            for k, p, g in zip(data.ids, data.points, data.labels)
        }
        next_key = 10_000
        for _ in range(8):
            next_key = random_updates(
                live, rng, 15, dim=2, num_groups=2, next_key=next_key,
                alive=alive,
            )
            live.query(3)  # forces the sync
            cached = live.artifacts.mhr_candidates()
            batch = candidate_mhr_values(live.skyline.points)
            np.testing.assert_array_equal(np.unique(cached), batch)
        cache = live._candidates
        assert cache.rebuilds == 1  # only the initial build is O(n^2)
        assert cache.incremental_inserts > 0
        assert cache.incremental_deletes > 0

    def test_cache_values_stay_sorted(self):
        data = anticorrelated_dataset(60, 2, 2, seed=12).normalized()
        live = LiveFairHMSIndex(data)
        rng = np.random.default_rng(13)
        for i in range(30):
            live.insert(10_000 + i, rng.random(2), int(rng.integers(0, 2)))
            live.query(3)
            values = live._candidates._values
            assert (np.diff(values) >= 0).all()


class TestTauHint:
    def test_hint_verified_in_two_evaluations(self, small2d):
        index = FairHMSIndex(small2d)
        first = index.query(4)
        assert first.stats["decision_evaluations"] > 2
        index.clear_result_cache()  # hints survive; memo does not
        second = index.query(4)
        assert second.stats["decision_evaluations"] == 2
        np.testing.assert_array_equal(first.indices, second.indices)
        assert first.stats["tau"] == second.stats["tau"]

    def test_wrong_hint_falls_back_to_identical_answer(self, small2d):
        sky = small2d.skyline()
        constraint = FairnessConstraint.proportional(
            4, sky.population_group_sizes, alpha=0.1
        ).capped_by_availability(sky.group_sizes)
        plain = intcov(sky, constraint)
        for hint in (0.0, 0.5, 1.0, plain.stats["tau"] + 1e-9):
            hinted = intcov(sky, constraint, tau_hint=hint)
            np.testing.assert_array_equal(hinted.indices, plain.indices)
            assert hinted.stats["tau"] == plain.stats["tau"]


class TestEpochsAndInvalidation:
    def test_dominated_insert_keeps_caches_warm(self, small3d):
        live = LiveFairHMSIndex(small3d)
        live.query(4, algorithm="BiGreedy", seed=5)
        art = live.artifacts
        engine_key = next(iter(art._engines))
        engine = art._engines[engine_key]
        epoch = live.epoch
        live.insert(90_000, np.full(small3d.dim, 1e-4), 0)  # dominated
        live.query(4, algorithm="BiGreedy", seed=5)
        assert live.epoch == epoch + 1
        assert live.artifacts is art
        assert art._engines[engine_key] is engine  # no rebuild
        assert art.dirty_components() == ()

    def test_skyline_change_rebuilds_engines_keeps_nets(self, small3d):
        live = LiveFairHMSIndex(small3d)
        live.query(4, algorithm="BiGreedy", seed=5)
        art = live.artifacts
        engine_key = next(iter(art._engines))
        engine = art._engines[engine_key]
        net = art._nets[engine_key]
        live.insert(90_001, np.full(small3d.dim, 2.0), 1)  # new skyline point
        live.query(4, algorithm="BiGreedy", seed=5)
        assert art._engines[engine_key] is not engine  # rebuilt over new rows
        assert art._nets[engine_key] is net  # nets never data-dependent

    def test_memo_dropped_every_epoch(self, small3d):
        live = LiveFairHMSIndex(small3d)
        first = live.query(4, seed=5)
        assert live.query(4, seed=5) is first  # memo hit within the epoch
        live.insert(90_002, np.full(small3d.dim, 1e-4), 0)  # off-skyline
        second = live.query(4, seed=5)
        assert second is not first  # population counts moved: re-solved

    def test_updates_between_queries_share_one_epoch(self, small3d):
        live = LiveFairHMSIndex(small3d)
        live.query(4)
        epoch = live.epoch
        rng = np.random.default_rng(3)
        for i in range(5):
            live.insert(91_000 + i, rng.random(small3d.dim), 0)
        live.query(4)
        assert live.epoch == epoch + 1

    def test_empty_start_and_total_deletion(self):
        live = LiveFairHMSIndex(dim=2, num_groups=2, normalize=False)
        with pytest.raises(ValueError, match="no tuples alive"):
            live.query(2)
        with pytest.raises(ValueError, match="no tuples alive"):
            live.constraint_for(2)
        with pytest.raises(ValueError, match="no tuples alive"):
            live.dataset
        live.insert(0, [0.9, 0.2], 0)
        live.insert(1, [0.2, 0.9], 1)
        solution = live.query(2)
        assert solution.size == 2
        live.delete(0)
        live.delete(1)
        with pytest.raises(ValueError, match="no tuples alive"):
            live.query(2)
        live.insert(2, [0.5, 0.5], 0)
        live.insert(3, [0.4, 0.6], 1)
        assert live.query(2).size == 2

    def test_frozen_flag(self, small3d):
        assert FairHMSIndex(small3d).frozen is True
        assert LiveFairHMSIndex(small3d).frozen is False
        assert FairHMSIndex(small3d).epoch == 0
        assert LiveFairHMSIndex(small3d).epoch >= 1


class TestKeyReuse:
    """Deleting a key and re-inserting it with a different point must
    invalidate like any other skyline change (regression tests)."""

    def test_reused_key_new_point_2d(self):
        live = LiveFairHMSIndex(dim=2, num_groups=1, normalize=False)
        live.insert(1, [1.0, 0.1], 0)
        live.insert(2, [0.1, 1.0], 0)
        live.insert(3, [0.6, 0.6], 0)
        live.query(2)
        live.delete(2)
        live.insert(2, [0.3, 0.8], 0)  # same key set, different content
        warm = live.query(2)
        cold = solve_fairhms(live.dataset.skyline(), live.constraint_for(2))
        np.testing.assert_array_equal(warm.ids, cold.ids)
        assert warm.mhr_estimate == cold.mhr_estimate
        np.testing.assert_array_equal(
            live.skyline.points[live.skyline.ids.tolist().index(2)],
            [0.3, 0.8],
        )

    def test_reused_keys_random_sequence_2d(self):
        rng = np.random.default_rng(50)

        def anticor_point():
            # Points near the antidiagonal rarely dominate each other, so
            # group skylines stay populated and every query is feasible.
            x = rng.random()
            return np.array([x, 1.0 - x]) + rng.random(2) * 0.05

        live = LiveFairHMSIndex(dim=2, num_groups=2, normalize=False)
        for key in range(12):
            live.insert(key, anticor_point(), key % 2)
        for _ in range(30):
            key = int(rng.integers(0, 12))
            live.delete(key)
            live.insert(key, anticor_point(), key % 2)  # reuse, new point
            warm = live.query(3)
            cached = live.artifacts.mhr_candidates()
            batch = candidate_mhr_values(live.skyline.points)
            np.testing.assert_array_equal(np.unique(cached), batch)
            cold = FairHMSIndex(live.dataset, normalize=False).query(3)
            np.testing.assert_array_equal(warm.ids, cold.ids)
            assert warm.mhr_estimate == cold.mhr_estimate

    def test_reused_key_3d_engine_path(self, small3d):
        live = LiveFairHMSIndex(small3d)
        first = live.query(4, algorithm="BiGreedy", seed=5)
        victim = int(first.ids[0])
        group = live._dyn.group_of(victim)
        live.delete(victim)
        live.insert(victim, np.full(small3d.dim, 0.9), group)
        warm = live.query(4, algorithm="BiGreedy", seed=5)
        cold = FairHMSIndex(live.dataset, normalize=False).query(
            4, algorithm="BiGreedy", seed=5
        )
        np.testing.assert_array_equal(warm.ids, cold.ids)
        assert warm.mhr_estimate == cold.mhr_estimate


class TestBulkInsertAtomicity:
    def test_duplicate_key_leaves_store_untouched(self):
        from repro.extensions.dynamic import DynamicFairHMS

        dyn = DynamicFairHMS(2, 1)
        dyn.insert(3, [0.5, 0.5], 0)
        version = dyn.version
        with pytest.raises(KeyError, match="already present"):
            dyn.bulk_insert([1, 3], [[0.4, 0.4], [0.6, 0.6]], [0, 0])
        assert len(dyn) == 1
        assert 1 not in dyn
        assert dyn.version == version

    def test_duplicate_within_batch_rejected(self):
        from repro.extensions.dynamic import DynamicFairHMS

        dyn = DynamicFairHMS(2, 1)
        with pytest.raises(KeyError, match="already present"):
            dyn.bulk_insert([5, 5], [[0.4, 0.4], [0.6, 0.6]], [0, 0])
        assert len(dyn) == 0


class TestAvailabilityMidStream:
    """A group draining below its floor must fail identically cold and live."""

    def build(self):
        rng = np.random.default_rng(20)
        pts = rng.random((40, 2)) * 0.5 + 0.25
        live = LiveFairHMSIndex(dim=2, num_groups=2, normalize=False)
        for i in range(40):
            live.insert(i, pts[i], i % 2)
        return live

    def test_capped_constraint_tracks_draining_group(self):
        live = self.build()
        base = FairnessConstraint(lower=[2, 2], upper=[4, 4], k=6)
        capped = base.capped_by_availability(live.group_sizes())
        np.testing.assert_array_equal(capped.lower, [2, 2])
        for key in range(1, 36, 2):  # drain group 1 down to 2 tuples
            live.delete(key)
        capped = base.capped_by_availability(live.group_sizes())
        np.testing.assert_array_equal(capped.lower, [2, 2])
        live.delete(37)  # availability 1 < floor 2: the cap must drop
        capped = base.capped_by_availability(live.group_sizes())
        np.testing.assert_array_equal(capped.lower, [2, 1])
        assert not base.is_feasible_for(live.group_sizes())

    def test_infeasible_raises_same_error_cold_and_live(self):
        live = self.build()
        constraint = FairnessConstraint(lower=[2, 2], upper=[4, 4], k=6)
        assert live.query(constraint=constraint).size == 6
        for key in range(1, 38, 2):  # leave group 1 a single tuple
            live.delete(key)
        with pytest.raises(ValueError) as live_err:
            live.query(constraint=constraint)
        with pytest.raises(ValueError) as cold_err:
            solve_fairhms(live.skyline, constraint)
        assert str(live_err.value) == str(cold_err.value)
        assert "infeasible" in str(live_err.value)


class TestStreamingFrontEnd:
    def test_observed_champions_enter_evicted_leave(self):
        live = LiveFairHMSIndex(
            dim=2, num_groups=2, normalize=False,
            stream_buffer_per_group=4, stream_slack=0.3,
        )
        rng = np.random.default_rng(30)
        keys = np.arange(100)
        points = rng.random((100, 2)) * 0.8 + 0.1
        groups = keys % 2
        admitted = live.observe_stream(keys, points, groups)
        assert 0 < admitted <= 100
        assert len(live) <= 8  # bounded by the sieve buffers
        assert set(live._streamed) == set(live._stream.buffered_keys())
        solution = live.query(2)
        assert solution.size == 2
        cold = FairHMSIndex(live.dataset, normalize=False).query(2)
        np.testing.assert_array_equal(solution.ids, cold.ids)

    def test_single_observation_form(self):
        live = LiveFairHMSIndex(dim=2, num_groups=1, normalize=False)
        assert live.observe_stream(7, [0.9, 0.9], 0) == 1
        assert 7 in live
        assert live.query(1).ids.tolist() == [7]


class TestWorkloadDriver:
    def test_build_mixed_workload_shapes(self):
        data = anticorrelated_dataset(200, 2, 2, seed=40)
        initial, ops = build_mixed_workload(
            data, num_ops=50, write_frac=0.3, ks=(3, 4), seed=2
        )
        assert initial.n == 150
        kinds = [op.kind for op in ops]
        assert kinds.count("query") + kinds.count("insert") + kinds.count(
            "delete"
        ) == len(ops)
        inserted = {op.key for op in ops if op.kind == "insert"}
        assert inserted.isdisjoint(set(initial.ids.tolist()))
        deleted = [op.key for op in ops if op.kind == "delete"]
        assert len(deleted) == len(set(deleted))

    def test_initial_load_keeps_every_group(self):
        # A tiny group must not be dropped (and labels remapped) by the
        # initial cut: pool ops carry original group ids.
        rng = np.random.default_rng(44)
        points = rng.random((60, 2)) + 0.05
        labels = np.zeros(60, dtype=np.int64)
        labels[:3] = 2  # tiny group 2; groups 0/1 fill the rest
        labels[3:30] = 1
        from tests.conftest import make_dataset

        data = make_dataset(points, labels)
        initial, ops = build_mixed_workload(
            data, num_ops=40, write_frac=0.5, ks=(3,), initial_frac=0.1, seed=5
        )
        assert initial.num_groups == data.num_groups
        report = run_mixed_workload(
            data, num_ops=40, write_frac=0.5, ks=(3,), initial_frac=0.1, seed=5
        )
        assert report.identical

    def test_run_mixed_workload_tiny_identical(self):
        data = anticorrelated_dataset(120, 2, 2, seed=41)
        report = run_mixed_workload(
            data, num_ops=30, write_frac=0.3, ks=(3, 4), seed=3
        )
        assert report.identical
        assert report.num_ops == 30
        assert report.epochs >= 1

    def test_run_mixed_workload_6d_identical(self):
        data = anticorrelated_dataset(120, 6, 2, seed=42)
        report = run_mixed_workload(
            data, num_ops=20, write_frac=0.3, ks=(3, 4), seed=4
        )
        assert report.identical

    def test_write_frac_zero_is_pure_query_stream(self):
        data = anticorrelated_dataset(150, 2, 2, seed=43)
        _, ops = build_mixed_workload(
            data, num_ops=25, write_frac=0.0, ks=(3, 5), seed=6
        )
        assert len(ops) == 25
        assert all(op.kind == "query" for op in ops)
        # The k sweep cycles deterministically.
        assert [op.k for op in ops] == [(3, 5)[i % 2] for i in range(25)]
        report = run_mixed_workload(
            data, num_ops=25, write_frac=0.0, ks=(3, 5), seed=6
        )
        assert report.identical
        assert report.num_updates == 0
        assert report.num_queries == 25

    def test_write_frac_one_exhausted_pool_keeps_length(self):
        # n=40, initial_frac=0.9: a 4-tuple insert pool and delete floors
        # at max(ks)+2 per group cap total writes far below num_ops, so
        # the driver must degrade the surplus to queries instead of
        # silently emitting a short sequence.
        data = anticorrelated_dataset(40, 2, 2, seed=44)
        _, ops = build_mixed_workload(
            data, num_ops=80, write_frac=1.0, ks=(3,), initial_frac=0.9, seed=7
        )
        assert len(ops) == 80
        kinds = [op.kind for op in ops]
        assert kinds.count("insert") <= 4  # pool size bound
        assert kinds.count("query") > 0  # fallback engaged
        report = run_mixed_workload(
            data, num_ops=80, write_frac=1.0, ks=(3,), initial_frac=0.9, seed=7
        )
        assert report.identical
        assert report.num_ops == 80

    def test_write_frac_one_with_room_is_pure_writes(self):
        data = anticorrelated_dataset(200, 2, 2, seed=45)
        _, ops = build_mixed_workload(
            data, num_ops=15, write_frac=1.0, ks=(3,), seed=8
        )
        assert len(ops) == 15
        assert all(op.kind in ("insert", "delete") for op in ops)

    def test_empty_ks_rejected(self):
        data = anticorrelated_dataset(60, 2, 2, seed=46)
        with pytest.raises(ValueError, match="ks"):
            build_mixed_workload(data, num_ops=10, ks=())
        with pytest.raises(ValueError, match="ks"):
            build_mixed_workload(data, num_ops=10, ks=(0,))
